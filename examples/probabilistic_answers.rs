//! The Section 8 extensions in action: repair-support "voting" and
//! probabilistic most-probable answers over weighted tuples.
//!
//! Two feeds disagree about sensor readings; the operator trusts the newer
//! feed twice as much. ConQuer's consistent answers are the facts holding
//! under *every* conflict resolution; the probabilistic semantics ranks
//! everything else.
//!
//! Run with `cargo run -p conquer --example probabilistic_answers`.

use std::collections::HashMap;

use conquer::repair::probabilistic::{answer_probabilities, WeightFn};
use conquer::{consistent_answers, ConstraintSet, Database, Value};

fn main() {
    let db = Database::new();
    db.run_script(
        "create table reading (sensor text, temp integer, feed integer);
         -- feed 1 (older)
         insert into reading values
           ('s1', 20, 1), ('s2', 35, 1), ('s3', 41, 1);
         -- feed 2 (newer, partially conflicting)
         insert into reading values
           ('s2', 29, 2), ('s3', 41, 2);",
    )
    .expect("setup");
    let sigma = ConstraintSet::new().with_key("reading", ["sensor"]);

    let q = "select r.sensor from reading r where r.temp > 30";
    println!("Which sensors certainly read above 30?");
    let certain = consistent_answers(&db, q, &sigma).expect("cqa");
    for row in &certain.rows {
        println!("  {} (holds in every repair)", row[0]);
    }

    // Probabilistic semantics: weight feed 2 twice as much as feed 1.
    let trust_newer: WeightFn<'_> = &|row| match row[2] {
        Value::Int(2) => 2.0,
        _ => 1.0,
    };
    let mut weights: HashMap<String, WeightFn<'_>> = HashMap::new();
    weights.insert("reading".to_string(), trust_newer);

    println!("\nAll answers ranked by probability (newer feed trusted 2x):");
    let probs = answer_probabilities(&db, q, &sigma, &weights).expect("probabilities");
    for answer in &probs {
        println!(
            "  {:<4} p = {:.2}{}",
            answer.row[0].to_string(),
            answer.probability,
            if answer.probability >= 1.0 - 1e-12 {
                "  <- consistent answer"
            } else {
                ""
            }
        );
    }

    println!(
        "\ns3 is certain (both feeds agree it reads 41); s2 reads above 30 only\n\
         if the older feed is right, which the weights say happens with\n\
         probability 1/3."
    );
}
