//! Interactive inconsistency exploration (Section 1 of the paper): use the
//! *difference* between the original query and its rewriting to locate data
//! worth cleaning, without committing to any cleaning strategy.
//!
//! Run with `cargo run -p conquer --example inconsistency_report`.

use std::collections::BTreeSet;

use conquer::{annotate_database, consistent_answers, possible_answers, ConstraintSet, Database};

fn main() {
    let db = Database::new();
    db.run_script(
        "create table orders (orderkey text, clerk text, custfk text);
         insert into orders values
           ('o1', 'ali', 'c1'), ('o2', 'jo', 'c2'), ('o2', 'ali', 'c3'),
           ('o3', 'ali', 'c4'), ('o3', 'pat', 'c2'), ('o4', 'ali', 'c2'),
           ('o4', 'ali', 'c3'), ('o5', 'ali', 'c2');
         create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .expect("setup");
    let sigma = ConstraintSet::new()
        .with_key("orders", ["orderkey"])
        .with_key("customer", ["custkey"]);

    // 1. Where is the database inconsistent at all? The annotation pass
    //    doubles as a profiler.
    let stats = annotate_database(&db, &sigma).expect("annotate");
    println!("Constraint-violation profile:");
    for s in &stats {
        println!(
            "  {:<9} {} of {} tuples inconsistent across {} keys",
            s.relation, s.inconsistent_tuples, s.total_tuples, s.violated_keys
        );
    }

    // 2. Which query answers are affected? Anything possible but not
    //    consistent depends on how conflicts are resolved.
    let q = "select o.orderkey from customer c, orders o
             where c.acctbal > 1000 and o.custfk = c.custkey";
    let possible: BTreeSet<String> = possible_answers(&db, q)
        .expect("query")
        .rows
        .iter()
        .map(|r| r[0].to_string())
        .collect();
    let consistent: BTreeSet<String> = consistent_answers(&db, q, &sigma)
        .expect("cqa")
        .rows
        .iter()
        .map(|r| r[0].to_string())
        .collect();
    let suspicious: BTreeSet<String> = possible.difference(&consistent).cloned().collect();

    println!("\nQuery: orders placed by customers with balance over 1000");
    println!("  certain answers:          {}", join(&consistent));
    println!("  answers needing cleaning: {}", join(&suspicious));
    println!(
        "\nOrders {} satisfy the query under some conflict resolution but not\n\
         all — their customer or order tuples are the ones to clean first.",
        join(&suspicious)
    );
}

fn join(set: &BTreeSet<String>) -> String {
    set.iter().cloned().collect::<Vec<_>>().join(", ")
}
