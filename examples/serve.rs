//! Start a conquer-serve server in-process, talk to it over loopback, and
//! show the session features: strategies, SET, prepared statements, the
//! plan cache, and catalog-epoch invalidation.
//!
//! ```sh
//! cargo run --example serve
//! ```

use std::sync::Arc;

use conquer_core::ConstraintSet;
use conquer_engine::Database;
use conquer_obs::Json;
use conquer_serve::{serve, Client, ServerConfig, Strategy};

fn main() {
    // The running example from the paper: customer accounts where custkey
    // should be a key but is not (c1 appears twice).
    let db = Arc::new(Database::new());
    db.run_script(
        "create table customer (custkey text, acctbal float);
         insert into customer values
             ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 1200);",
    )
    .expect("seed script");
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);

    let server = serve(db, sigma, ServerConfig::default()).expect("bind loopback");
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr()).expect("connect");
    println!("session {} established", client.session());

    let sql = "select custkey from customer where acctbal > 1000";

    // Plain execution sees both c1 and the others...
    let original = client
        .query_with(sql, Some(Strategy::Original))
        .expect("original query");
    println!("original answers:\n{}", original.rows.to_text());

    // ...the ConQuer rewriting keeps only the *certain* answers.
    client
        .set("strategy", Json::Str("rewritten".to_string()))
        .expect("set strategy");
    let consistent = client.query(sql).expect("rewritten query");
    println!("consistent answers:\n{}", consistent.rows.to_text());

    // Re-running hits the rewrite/plan cache.
    let again = client.query(sql).expect("cached query");
    println!(
        "second run cached={} ({} us)",
        again.cached, again.elapsed_us
    );

    // Prepared statements skip even the cache lookup's rebuild path.
    let stmt = client.prepare(sql, None).expect("prepare");
    let executed = client.execute(stmt).expect("execute");
    println!(
        "prepared statement {stmt}: {} rows",
        executed.rows.rows.len()
    );

    // A catalog change bumps the epoch; the statement transparently
    // replans, so the new row shows up instead of a stale cached answer.
    client
        .script("insert into customer values ('c9', 9000)")
        .expect("script");
    let refreshed = client.execute(stmt).expect("re-execute");
    println!(
        "after insert: {} rows (cached={})",
        refreshed.rows.rows.len(),
        refreshed.cached
    );

    let stats = client.stats().expect("stats");
    if let Some(cache) = stats.get("cache") {
        println!("cache stats: {}", cache.render());
    }

    client.quit().expect("quit");
    server.shutdown();
}
