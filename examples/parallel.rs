//! Morsel-parallel execution tour: the `threads` knob on [`ExecOptions`],
//! serial-vs-parallel timing of an aggregate-heavy consistent rewriting,
//! and the per-operator thread fan-out in EXPLAIN ANALYZE.
//!
//! Run with `cargo run -p conquer --release --example parallel`.
//! `CONQUER_THREADS=N` overrides the default fan-out (the host's available
//! parallelism); `threads = 1` is the unchanged serial executor.

use std::time::Instant;

use conquer::tpch::{build_workload, WorkloadConfig, Q6};
use conquer::{consistent_answers_with, ExecOptions};

fn main() {
    // A TPC-H-style workload with 5% inconsistent tuples.
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.05,
        ..WorkloadConfig::default()
    });
    let default_threads = ExecOptions::default().threads;
    println!("engine default fan-out: {default_threads} thread(s)\n");

    // Warm up once so the engine's scan caches are populated and the
    // timings below compare execution, not first-touch materialization.
    consistent_answers_with(&w.db, Q6.sql, &w.sigma, &ExecOptions::default()).expect("warm-up");

    // The same consistent-answer query, serial and parallel. Results are
    // identical — the parallel executor reproduces serial row order — so
    // only the wall time changes.
    let mut serial_time = None;
    for threads in [1, default_threads.max(2)] {
        let options = ExecOptions::default().with_threads(threads);
        let t0 = Instant::now();
        let rows = consistent_answers_with(&w.db, Q6.sql, &w.sigma, &options).expect("query");
        let dt = t0.elapsed();
        match serial_time {
            None => {
                serial_time = Some(dt);
                println!("threads=1 (serial): {} rows in {dt:?}", rows.len());
            }
            Some(serial) => println!(
                "threads={threads}:          {} rows in {dt:?} (speedup {:.2}x)",
                rows.len(),
                serial.as_secs_f64() / dt.as_secs_f64().max(1e-12)
            ),
        }
    }

    // EXPLAIN ANALYZE marks every operator that fanned out with its
    // `threads=` count; serial operators (small inputs, pipeline breakers
    // below the morsel threshold) carry no marker.
    let sql = "select o.o_custkey, count(*), sum(o.o_totalprice) from orders o \
               group by o.o_custkey order by o.o_custkey";
    let (_, report) =
        w.db.explain_analyze_with(sql, &ExecOptions::default().with_threads(4))
            .expect("analyze");
    println!("\nEXPLAIN ANALYZE at threads=4:\n{report}");
}
