//! Decision-support analytics over an inconsistent warehouse: the paper's
//! TPC-H evaluation in miniature. Generates a small TPC-H database, injects
//! key violations (p = 5 %, n = 2), and contrasts the original answers of
//! Q6 and Q12 with their range-consistent answers.
//!
//! Run with `cargo run -p conquer --release --example tpch_analytics`.

use std::time::Instant;

use conquer::tpch::{build_workload, WorkloadConfig, Q12, Q6};
use conquer::{consistent_answers_annotated, rewrite_sql, RewriteOptions};

fn main() {
    let config = WorkloadConfig {
        scale_factor: 0.002,
        p: 0.05,
        n: 2,
        seed: 42,
        threads: 4,
        annotate: true,
    };
    println!(
        "Generating TPC-H SF {} with p = {:.0}%, n = {} ...",
        config.scale_factor,
        config.p * 100.0,
        config.n
    );
    let workload = build_workload(&config);
    for s in &workload.injection {
        println!(
            "  {:<9} {:>7} tuples, {:>5} inconsistent ({} conflicting keys)",
            s.relation, s.total_tuples, s.inconsistent_tuples, s.conflicting_keys
        );
    }

    for q in [Q6, Q12] {
        println!("\n=== TPC-H {} ===", q.name());
        let t0 = Instant::now();
        let original = workload.db.query(q.sql).expect("original query");
        let t_orig = t0.elapsed();
        println!("Original answer (possible-world semantics):");
        print!("{}", original.to_text());

        let t0 = Instant::now();
        let consistent = consistent_answers_annotated(&workload.db, q.sql, &workload.sigma)
            .expect("consistent answers");
        let t_cons = t0.elapsed();
        println!("Range-consistent answer ([min, max] across repairs):");
        print!("{}", consistent.to_text());

        println!(
            "original: {:?}   rewritten (annotation-aware): {:?}   overhead: {:.2}x",
            t_orig,
            t_cons,
            t_cons.as_secs_f64() / t_orig.as_secs_f64().max(1e-9)
        );
    }

    // Show what the engine actually executes for Q6.
    let rewritten = rewrite_sql(
        Q6.sql,
        &workload.sigma,
        &RewriteOptions {
            annotated: true,
            ..Default::default()
        },
    )
    .expect("rewrite");
    println!("\nThe annotation-aware rewriting of Q6 handed to the engine:\n{rewritten}");
}
