//! Observability tour: EXPLAIN / EXPLAIN ANALYZE on a ConQuer rewriting,
//! plus the per-phase span breakdown of the whole pipeline.
//!
//! Run with `cargo run -p conquer --example explain`.

use conquer::{rewrite_sql, ConstraintSet, Database, RewriteOptions};

fn main() {
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .expect("setup");

    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let q1 = "select custkey from customer where acctbal > 1000";
    let rewritten = rewrite_sql(q1, &sigma, &RewriteOptions::default()).expect("rewrite");

    // EXPLAIN: the optimized physical plan, without running it.
    println!("EXPLAIN:\n{}", db.explain(&rewritten).expect("explain"));

    // EXPLAIN ANALYZE: run the plan and annotate each operator with its
    // measured cardinalities, timings and hash-table statistics.
    let (rows, report) = db.explain_analyze(&rewritten).expect("analyze");
    println!(
        "EXPLAIN ANALYZE ({} consistent answers):\n{report}",
        rows.len()
    );

    // The span layer sees the whole pipeline, not just execution.
    let (_, spans) =
        conquer_obs::capture(|| conquer::consistent_answers(&db, q1, &sigma).expect("query"));
    println!("pipeline phases:");
    for (phase, wall) in conquer_obs::phase_totals(&spans) {
        println!("  {phase:<8} {:>8.1} us", wall.as_secs_f64() * 1e6);
    }
}
