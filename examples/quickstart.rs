//! Quickstart: the paper's running example (Figure 1) from end to end.
//!
//! Run with `cargo run -p conquer --example quickstart`.

use conquer::{
    consistent_answers, possible_answers, rewrite_sql, ConstraintSet, Database, RewriteOptions,
};

fn main() {
    // An inconsistent customer relation: the key `custkey` is violated for
    // c1 and c3, perhaps because the data was integrated from several
    // operational sources.
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .expect("setup");

    // The user postulates the key at query time — the database itself does
    // not (and cannot) enforce it.
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let q1 = "select custkey from customer where acctbal > 1000";

    println!("Query q1:\n  {q1}\n");

    // Running q1 directly returns the *possible* answers — everything that
    // holds in at least one repair — including the dubious c1 and a
    // duplicated c3.
    let possible = possible_answers(&db, q1).expect("query");
    println!("Possible answers (original query):");
    print!("{}", indent(&possible.to_text()));

    // ConQuer rewrites q1 into plain SQL that any engine can run…
    let rewritten = rewrite_sql(
        q1,
        &sigma,
        &RewriteOptions {
            paper_style_negation: true,
            ..Default::default()
        },
    )
    .expect("rewrite");
    println!("\nConQuer's rewriting of q1:\n  {rewritten}\n");

    // …whose answers are exactly the consistent ones: tuples returned in
    // *every* repair of the database.
    let consistent = consistent_answers(&db, q1, &sigma).expect("consistent answers");
    println!("Consistent answers (rewritten query):");
    print!("{}", indent(&consistent.to_text()));

    println!(
        "\nc1 disappears (one of its tuples has balance 100) and c3 appears \
         exactly once (both of its tuples satisfy the query)."
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
