//! Data-integration scenario from the paper's introduction: two operational
//! sources each satisfy the key constraint, but their union does not.
//! ConQuer answers queries over the merged data without cleaning it first,
//! and the repair-support ("voting") extension ranks the uncertain answers.
//!
//! Run with `cargo run -p conquer --example data_integration`.

use conquer::{
    answers_with_support, consistent_answers, possible_answers, ConstraintSet, Database,
};

fn main() {
    let db = Database::new();
    // Source A: the CRM. Source B: the billing system. Same customers,
    // conflicting attributes — classic integration inconsistency.
    db.run_script(
        "create table customer (custkey integer, name text, mktsegment text, acctbal float);
         -- source A
         insert into customer values
           (1, 'Acme Corp',   'BUILDING',  5400.00),
           (2, 'Bolt Ltd',    'MACHINERY', 1200.50),
           (3, 'Crank & Co',  'AUTOMOBILE', 910.00);
         -- source B (same keys, partially different data)
         insert into customer values
           (1, 'Acme Corp',   'BUILDING',  5400.00),
           (2, 'Bolt Limited','MACHINERY',  800.25),
           (3, 'Crank & Co',  'FURNITURE',  910.00);",
    )
    .expect("setup");

    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);

    // Which market segments have a customer with a healthy balance?
    let q = "select c.mktsegment from customer c where c.acctbal > 1000";

    let possible = possible_answers(&db, q).expect("query");
    let consistent = consistent_answers(&db, q, &sigma).expect("cqa");
    println!("Possible segments (some repair):   {}", values(&possible));
    println!("Certain segments  (every repair):  {}", values(&consistent));

    // BUILDING is certain: customer 1 is identical in both sources.
    // MACHINERY is only possible: customer 2's balance is 1200.50 in one
    // source but 800.25 in the other.

    // The voting semantics (Section 8 of the paper) grades the rest.
    println!("\nAnswer support across repairs:");
    for (row, support) in answers_with_support(&db, q, &sigma).expect("support") {
        println!(
            "  {:<12} {:>5.0}% of repairs",
            row[0].to_string(),
            support * 100.0
        );
    }

    // Duplicate tuples that only differ on cosmetic fields are fine as long
    // as the *queried* attributes agree — exactly the paper's point about
    // addresses vs. market segments.
    let names = consistent_answers(
        &db,
        "select c.custkey, c.mktsegment from customer c",
        &sigma,
    )
    .expect("cqa");
    println!("\nCustomers whose market segment is certain despite duplicates:");
    print!("{}", names.to_text());
}

fn values(rows: &conquer::Rows) -> String {
    let mut v: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
    v.sort();
    v.join(", ")
}
