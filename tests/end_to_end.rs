//! End-to-end tests over the TPC-H workload: every benchmark query
//! rewrites, executes, and agrees across the plain, annotated, and
//! engine-ablation configurations.

use conquer::tpch::{all_queries, build_workload, WorkloadConfig};
use conquer::{
    consistent_answers, consistent_answers_annotated, parse_query, rewrite, ExecOptions,
    RewriteOptions,
};

fn small_workload(annotate: bool) -> conquer::tpch::Workload {
    build_workload(&WorkloadConfig {
        scale_factor: 0.001,
        p: 0.10,
        n: 2,
        seed: 1234,
        threads: 2,
        annotate,
    })
}

/// Compare two result sets as multisets, value by value, with floats at
/// 1e-9 relative tolerance: two different plans for the same answer may
/// associate float SUM/AVG differently (morsel-parallel execution makes
/// this routine — DESIGN.md §8), so last-ulp differences are expected.
fn assert_agree(left: &conquer::Rows, right: &conquer::Rows, label: &str) {
    let key = |rows: &conquer::Rows| -> Vec<(Vec<String>, Vec<conquer::Value>)> {
        let mut v: Vec<_> = rows
            .rows
            .iter()
            .map(|r| {
                (
                    r.iter().map(ToString::to_string).collect::<Vec<_>>(),
                    r.clone(),
                )
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };
    let (ls, rs) = (key(left), key(right));
    assert_eq!(ls.len(), rs.len(), "{label}: row counts differ");
    for ((_, a), (_, b)) in ls.iter().zip(&rs) {
        assert_eq!(a.len(), b.len(), "{label}: row widths differ");
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (conquer::Value::Float(x), conquer::Value::Float(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() <= 1e-9 * scale, "{label}: {x} vs {y}");
                }
                _ => assert_eq!(x, y, "{label}: values differ"),
            }
        }
    }
}

#[test]
fn all_queries_run_on_original_database() {
    let w = small_workload(false);
    for q in all_queries() {
        let rows =
            w.db.query(q.sql)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name()));
        // Q1/Q12 always group to a handful of rows; Q3/Q10 are limited.
        assert!(
            rows.len() <= 10_000,
            "{} returned {} rows",
            q.name(),
            rows.len()
        );
    }
}

#[test]
fn all_queries_have_consistent_answers() {
    let w = small_workload(false);
    for q in all_queries() {
        let rows = consistent_answers(&w.db, q.sql, &w.sigma)
            .unwrap_or_else(|e| panic!("{}: {e}", q.name()));
        // Each aggregate expands to a [min, max] pair.
        let parsed = parse_query(q.sql).unwrap();
        let tq = conquer::analyze(&parsed, &w.sigma).unwrap();
        let expected_cols = tq.projection.len() + tq.aggregate_count();
        assert_eq!(
            rows.schema.len(),
            expected_cols,
            "{} output arity",
            q.name()
        );
    }
}

#[test]
fn annotated_and_plain_rewritings_agree_on_every_query() {
    let w = small_workload(true);
    for q in all_queries() {
        let plain = consistent_answers(&w.db, q.sql, &w.sigma)
            .unwrap_or_else(|e| panic!("{} plain: {e}", q.name()));
        let annotated = consistent_answers_annotated(&w.db, q.sql, &w.sigma)
            .unwrap_or_else(|e| panic!("{} annotated: {e}", q.name()));
        assert_agree(&plain, &annotated, &format!("{} disagrees", q.name()));
    }
}

#[test]
fn engine_ablations_do_not_change_answers() {
    let w = small_workload(false);
    let configs = [
        ExecOptions {
            materialize_ctes: false,
            ..ExecOptions::default()
        },
        ExecOptions {
            decorrelate_exists: false,
            ..ExecOptions::default()
        },
    ];
    // The nested-loop fallback is slow; a couple of queries suffice.
    for q in [conquer::tpch::Q6, conquer::tpch::Q12] {
        let rewritten = rewrite(
            &parse_query(q.sql).unwrap(),
            &w.sigma,
            &RewriteOptions::default(),
        )
        .unwrap();
        let reference = w.db.execute_query(&rewritten).unwrap();
        for options in &configs {
            let got = w.db.execute_query_with(&rewritten, options).unwrap();
            assert_agree(
                &reference,
                &got,
                &format!("{} differs under {options:?}", q.name()),
            );
        }
    }
}

#[test]
fn consistent_answers_on_p0_match_original_query_up_to_ranges() {
    // On a fully consistent database the range collapses: min == max and
    // they equal the original aggregate.
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.001,
        p: 0.0,
        n: 2,
        seed: 5,
        threads: 2,
        annotate: false,
    });
    let q = conquer::tpch::Q6;
    let original = w.db.query(q.sql).unwrap();
    let consistent = consistent_answers(&w.db, q.sql, &w.sigma).unwrap();
    assert_eq!(consistent.len(), 1);
    assert_eq!(original.rows[0][0], consistent.rows[0][0], "lower bound");
    assert_eq!(original.rows[0][0], consistent.rows[0][1], "upper bound");
}

#[test]
fn q6_bounds_bracket_the_original_answer() {
    let w = small_workload(false);
    let q = conquer::tpch::Q6;
    let original = w.db.query(q.sql).unwrap();
    let consistent = consistent_answers(&w.db, q.sql, &w.sigma).unwrap();
    let conquer::Value::Float(orig) = original.rows[0][0] else {
        panic!()
    };
    let conquer::Value::Float(lo) = consistent.rows[0][0] else {
        panic!()
    };
    let conquer::Value::Float(hi) = consistent.rows[0][1] else {
        panic!()
    };
    assert!(lo <= hi);
    // The original answer is one possible world, so it lies in the range —
    // up to float rounding: the bounds and the original are sums over the
    // same lineitems in different orders.
    let tol = 1e-9 * orig.abs().max(1.0);
    assert!(
        lo - tol <= orig && orig <= hi + tol,
        "{lo} <= {orig} <= {hi}"
    );
}

#[test]
fn rewritten_sql_round_trips_for_all_queries() {
    let sigma = conquer::tpch::benchmark_constraints();
    for q in all_queries() {
        for opts in [
            RewriteOptions::default(),
            RewriteOptions {
                annotated: true,
                ..Default::default()
            },
            RewriteOptions {
                paper_style_negation: true,
                ..Default::default()
            },
        ] {
            let rewritten = rewrite(&parse_query(q.sql).unwrap(), &sigma, &opts)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name()));
            let text = rewritten.to_string();
            let reparsed = parse_query(&text)
                .unwrap_or_else(|e| panic!("{} SQL does not re-parse: {e}\n{text}", q.name()));
            assert_eq!(reparsed, rewritten, "{} round trip", q.name());
        }
    }
}
