//! Annotation-layer integration tests: the offline pass, its interaction
//! with the injector, and the annotation-aware rewriting on TPC-H data.

use conquer::tpch::{build_workload, inject_table, WorkloadConfig};
use conquer::{
    annotate_database, consistent_answers, consistent_answers_annotated, is_annotated, rewrite_sql,
    ConstraintSet, Database, RewriteOptions,
};

#[test]
fn annotation_counts_agree_with_injector_on_tpch() {
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.001,
        p: 0.20,
        n: 2,
        seed: 3,
        threads: 2,
        annotate: true,
    });
    let annotations = w.annotation.as_ref().unwrap();
    for inj in &w.injection {
        let ann = annotations
            .iter()
            .find(|a| a.relation == inj.relation)
            .unwrap_or_else(|| panic!("no annotation stats for {}", inj.relation));
        assert_eq!(
            inj.inconsistent_tuples, ann.inconsistent_tuples,
            "{} inconsistent tuples",
            inj.relation
        );
        assert_eq!(
            inj.conflicting_keys, ann.violated_keys,
            "{} keys",
            inj.relation
        );
    }
    assert!(is_annotated(&w.db, &w.sigma));
}

#[test]
fn annotation_flags_exact_share_of_tuples() {
    let db = Database::new();
    let mut script = String::from("create table t (k integer, v integer);\ninsert into t values ");
    let vals: Vec<String> = (0..400).map(|i| format!("({i}, {i})")).collect();
    script.push_str(&vals.join(", "));
    db.run_script(&script).unwrap();
    inject_table(&db, "t", &["k".to_string()], 0.25, 5, 9);

    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let stats = annotate_database(&db, &sigma).unwrap();
    assert_eq!(stats[0].inconsistent_tuples, 100); // 25% of 400
    assert_eq!(stats[0].violated_keys, 20); // groups of n = 5

    let flagged = db.query("select count(*) from t where cons = 'n'").unwrap();
    assert_eq!(flagged.rows[0][0], conquer::Value::Int(100));
}

#[test]
fn annotated_rewriting_only_differs_syntactically() {
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.001,
        p: 0.05,
        n: 2,
        seed: 17,
        threads: 2,
        annotate: true,
    });
    for q in conquer::tpch::all_queries() {
        let plain = rewrite_sql(q.sql, &w.sigma, &RewriteOptions::default()).unwrap();
        let annotated = rewrite_sql(
            q.sql,
            &w.sigma,
            &RewriteOptions {
                annotated: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(
            plain,
            annotated,
            "{}: annotation should change the SQL",
            q.name()
        );
        assert!(annotated.contains("conq_conscand"), "{}", q.name());
        assert!(!plain.contains("conq_conscand"), "{}", q.name());
    }
}

#[test]
fn annotations_on_fully_consistent_database_short_circuit_the_filter() {
    // With p = 0 every tuple is 'y', so the conscand counter is always 0
    // and the filter's join branch selects nothing.
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.001,
        p: 0.0,
        n: 2,
        seed: 23,
        threads: 2,
        annotate: true,
    });
    let q = conquer::tpch::Q6;
    let plain = consistent_answers(&w.db, q.sql, &w.sigma).unwrap();
    let fast = consistent_answers_annotated(&w.db, q.sql, &w.sigma).unwrap();
    assert_eq!(plain.rows, fast.rows);
    // On consistent data the range degenerates to the exact answer.
    assert_eq!(plain.rows[0][0], plain.rows[0][1]);
}

#[test]
fn stale_annotations_are_callers_responsibility_but_detectable() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v integer);
         insert into t values (1, 10), (2, 20);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    annotate_database(&db, &sigma).unwrap();
    assert!(is_annotated(&db, &sigma));
    // Re-annotating is rejected rather than silently double-flagging.
    assert!(annotate_database(&db, &sigma).is_err());
}
