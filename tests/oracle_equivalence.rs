//! The rewriting against the repair-enumeration oracle on crafted corner
//! cases: dangling foreign keys, negative aggregates, co-root key-to-key
//! joins, empty candidate sets, MIN/MAX/COUNT bounds, AVG soundness.

use conquer::{
    consistent_answers, consistent_answers_oracle, range_consistent_oracle, ConstraintSet,
    Database, Value,
};

fn sorted(rows: &conquer::Rows) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = rows
        .rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    v.sort();
    v
}

fn assert_matches_oracle(db: &Database, q: &str, sigma: &ConstraintSet) {
    let rewritten = consistent_answers(db, q, sigma).unwrap();
    let oracle = consistent_answers_oracle(db, q, sigma).unwrap();
    assert_eq!(sorted(&rewritten), sorted(&oracle), "query: {q}");
}

#[test]
fn dangling_foreign_keys() {
    let db = Database::new();
    db.run_script(
        "create table o (ok integer, fk integer);
         insert into o values (1, 10), (2, 99), (3, 10), (3, 11);
         create table c (ck integer, good integer);
         insert into c values (10, 1), (11, 0), (11, 1);",
    )
    .unwrap();
    let sigma = ConstraintSet::new()
        .with_key("o", ["ok"])
        .with_key("c", ["ck"]);
    // Order 2 dangles (ck 99 missing) in every repair; order 3 joins c=10
    // (good) in one tuple and c=11 (sometimes bad) in the other.
    assert_matches_oracle(
        &db,
        "select o.ok from o, c where o.fk = c.ck and c.good = 1",
        &sigma,
    );
}

#[test]
fn all_candidates_filtered_leaves_empty_answer() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v integer);
         insert into t values (1, 5), (1, 50);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    assert_matches_oracle(&db, "select t.k from t where t.v > 10", &sigma);
    let rows = consistent_answers(&db, "select t.k from t where t.v > 10", &sigma).unwrap();
    assert!(rows.is_empty());
}

#[test]
fn empty_table_and_no_selection() {
    let db = Database::new();
    db.run_script("create table t (k integer, v integer)")
        .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    assert_matches_oracle(&db, "select t.v from t", &sigma);
}

#[test]
fn projection_of_consistent_nonkey_attributes() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, a integer, b integer);
         insert into t values (1, 7, 100), (1, 7, 200), (2, 8, 300);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    // Key 1 is inconsistent but agrees on `a` — a must be a consistent
    // answer even though b is not.
    assert_matches_oracle(&db, "select t.a from t", &sigma);
    assert_matches_oracle(&db, "select t.b from t", &sigma);
    let a = consistent_answers(&db, "select t.a from t", &sigma).unwrap();
    assert_eq!(sorted(&a), vec![vec!["7"], vec!["8"]]);
}

#[test]
fn key_to_key_co_roots_against_oracle() {
    let db = Database::new();
    db.run_script(
        "create table a (k integer, x integer);
         insert into a values (1, 10), (1, 0), (2, 30);
         create table b (k integer, y integer);
         insert into b values (1, 7), (2, 8), (2, 0);",
    )
    .unwrap();
    let sigma = ConstraintSet::new()
        .with_key("a", ["k"])
        .with_key("b", ["k"]);
    assert_matches_oracle(
        &db,
        "select a.k from a, b where a.k = b.k and a.x > 5 and b.y > 5",
        &sigma,
    );
    assert_matches_oracle(
        &db,
        "select a.x from a, b where a.k = b.k and b.y > 5",
        &sigma,
    );
}

#[test]
fn sum_ranges_with_negative_values_match_oracle() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, g text, v integer);
         insert into t values
           (1, 'a', -5), (1, 'a', 3), (2, 'a', 10), (3, 'a', -2), (3, 'b', 4),
           (4, 'b', 6), (5, 'b', -1), (5, 'b', -7);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let q = "select t.g, sum(t.v) as s from t group by t.g";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    let oracle = range_consistent_oracle(&db, q, &sigma, 1).unwrap();
    assert_eq!(rewritten.len(), oracle.len());
    for (row, ans) in rewritten.rows.iter().zip(&oracle) {
        assert_eq!(row[0], ans.group[0]);
        assert_eq!(
            row[1], ans.ranges[0].0,
            "lower bound of group {}",
            ans.group[0]
        );
        assert_eq!(
            row[2], ans.ranges[0].1,
            "upper bound of group {}",
            ans.group[0]
        );
    }
}

#[test]
fn count_ranges_match_oracle() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, g text, flag integer);
         insert into t values
           (1, 'a', 1), (1, 'a', 0), (2, 'a', 1), (3, 'b', 1), (3, 'b', 1), (4, 'b', 0);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let q = "select t.g, count(*) as n from t where t.flag = 1 group by t.g";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    let oracle = range_consistent_oracle(&db, q, &sigma, 1).unwrap();
    assert_eq!(rewritten.len(), oracle.len());
    for (row, ans) in rewritten.rows.iter().zip(&oracle) {
        assert_eq!(row[0], ans.group[0]);
        assert_eq!(row[1], ans.ranges[0].0);
        assert_eq!(row[2], ans.ranges[0].1);
    }
}

#[test]
fn min_max_ranges_match_oracle() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, g text, v integer);
         insert into t values
           (1, 'a', 5), (1, 'a', 9), (2, 'a', 7), (3, 'a', 1), (3, 'a', 100),
           (4, 'b', 2), (5, 'b', 3), (5, 'b', 8);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    for q in [
        "select t.g, min(t.v) as m from t group by t.g",
        "select t.g, max(t.v) as m from t group by t.g",
    ] {
        let rewritten = consistent_answers(&db, q, &sigma).unwrap();
        let oracle = range_consistent_oracle(&db, q, &sigma, 1).unwrap();
        assert_eq!(rewritten.len(), oracle.len(), "query: {q}");
        for (row, ans) in rewritten.rows.iter().zip(&oracle) {
            assert_eq!(row[0], ans.group[0], "query: {q}");
            assert_eq!(row[1], ans.ranges[0].0, "lower, query: {q}");
            assert_eq!(row[2], ans.ranges[0].1, "upper, query: {q}");
        }
    }
}

#[test]
fn min_with_selection_filtering_matches_oracle() {
    // MIN where some keys are filtered by the selection — exercises the
    // NULL-contribution encoding of the filtered upper bound.
    let db = Database::new();
    db.run_script(
        "create table t (k integer, g text, v integer, w integer);
         insert into t values
           (1, 'a', 5, 1), (2, 'a', 9, 1), (2, 'a', 3, 0), (3, 'a', 2, 1), (3, 'a', 2, 0);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let q = "select t.g, min(t.v) as m from t where t.w = 1 group by t.g";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    let oracle = range_consistent_oracle(&db, q, &sigma, 1).unwrap();
    assert_eq!(rewritten.len(), oracle.len());
    for (row, ans) in rewritten.rows.iter().zip(&oracle) {
        assert_eq!(row[1], ans.ranges[0].0);
        assert_eq!(row[2], ans.ranges[0].1);
    }
}

#[test]
fn global_sum_matches_oracle_when_groups_never_empty() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v integer);
         insert into t values (1, 10), (1, 20), (2, 5), (3, -4), (3, 6);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let q = "select sum(t.v) as s from t";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    let oracle = range_consistent_oracle(&db, q, &sigma, 0).unwrap();
    assert_eq!(rewritten.rows[0][0], oracle[0].ranges[0].0);
    assert_eq!(rewritten.rows[0][1], oracle[0].ranges[0].1);
}

#[test]
fn avg_bounds_are_sound_containments_of_the_oracle() {
    // AVG is a documented extension with sound (not necessarily tight)
    // bounds for non-negative data: the oracle range must lie inside ours.
    let db = Database::new();
    db.run_script(
        "create table t (k integer, g text, v integer, w integer);
         insert into t values
           (1, 'a', 10, 1), (2, 'a', 20, 1), (2, 'a', 100, 0), (3, 'a', 60, 1);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let q = "select t.g, avg(t.v) as m from t where t.w = 1 group by t.g";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    let oracle = range_consistent_oracle(&db, q, &sigma, 1).unwrap();
    assert_eq!(rewritten.len(), 1);
    assert_eq!(oracle.len(), 1);
    let Value::Float(lo) = rewritten.rows[0][1] else {
        panic!()
    };
    let Value::Float(hi) = rewritten.rows[0][2] else {
        panic!()
    };
    let (olo, ohi) = &oracle[0].ranges[0];
    let olo = olo.to_string().parse::<f64>().unwrap();
    let ohi = ohi.to_string().parse::<f64>().unwrap();
    assert!(
        lo <= olo + 1e-9,
        "lower bound {lo} must not exceed oracle {olo}"
    );
    assert!(hi >= ohi - 1e-9, "upper bound {hi} must cover oracle {ohi}");
}

#[test]
fn three_way_chain_with_aggregation_matches_oracle() {
    let db = Database::new();
    db.run_script(
        "create table l (lk integer, ofk integer, qty integer);
         insert into l values (1, 10, 3), (1, 10, 7), (2, 11, 5), (3, 12, 9);
         create table o (ok integer, pri text);
         insert into o values (10, 'HI'), (11, 'HI'), (11, 'LO'), (12, 'LO');",
    )
    .unwrap();
    let sigma = ConstraintSet::new()
        .with_key("l", ["lk"])
        .with_key("o", ["ok"]);
    let q = "select o.pri, sum(l.qty) as total from l, o where l.ofk = o.ok group by o.pri";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    let oracle = range_consistent_oracle(&db, q, &sigma, 1).unwrap();
    // Consistent groups must coincide.
    let rewritten_groups: Vec<String> = rewritten.rows.iter().map(|r| r[0].to_string()).collect();
    let oracle_groups: Vec<String> = oracle.iter().map(|a| a.group[0].to_string()).collect();
    assert_eq!(rewritten_groups, oracle_groups);
    for (row, ans) in rewritten.rows.iter().zip(&oracle) {
        assert_eq!(row[1], ans.ranges[0].0, "group {}", ans.group[0]);
        assert_eq!(row[2], ans.ranges[0].1, "group {}", ans.group[0]);
    }
}
