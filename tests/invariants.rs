//! Cross-cutting semantic invariants, property-checked on random
//! inconsistent databases:
//!
//! * consistent answers ⊆ possible answers (Section 2's two semantics);
//! * on a key-consistent database the rewriting returns exactly the
//!   original query's bag of answers;
//! * repair support is 1.0 exactly for the consistent answers;
//! * aggregate ranges are well-formed (min ≤ max) and their groups are a
//!   subset of the original query's groups.

use std::collections::HashSet;

use proptest::prelude::*;

use conquer::engine::DataType;
use conquer::{
    answers_with_support, consistent_answers, ConstraintSet, Database, Table, Value,
};

fn build(rows: &[(i64, i64, i64)]) -> Database {
    let db = Database::new();
    let mut t = Table::new(
        "r",
        vec![("k", DataType::Integer), ("a", DataType::Integer), ("b", DataType::Integer)],
    );
    t.extend_unchecked(
        rows.iter().map(|(k, a, b)| vec![Value::Int(*k), Value::Int(*a), Value::Int(*b)]),
    );
    db.register(t);
    db
}

fn sigma() -> ConstraintSet {
    ConstraintSet::new().with_key("r", ["k"])
}

fn row_set(rows: &conquer::Rows) -> HashSet<Vec<String>> {
    rows.rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect()
}

fn row_bag(rows: &conquer::Rows) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = rows
        .rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn consistent_answers_are_possible_answers(
        rows in prop::collection::vec((0..4i64, 0..4i64, 0..4i64), 0..10),
        threshold in 0..4i64,
    ) {
        let db = build(&rows);
        let q = format!("select r.a from r where r.b >= {threshold}");
        let consistent = consistent_answers(&db, &q, &sigma()).unwrap();
        let possible = db.query(&q).unwrap();
        let c = row_set(&consistent);
        let p = row_set(&possible);
        prop_assert!(c.is_subset(&p), "consistent {c:?} not within possible {p:?}");
    }

    #[test]
    fn consistent_database_is_a_fixpoint(
        // Distinct keys -> no violations.
        values in prop::collection::vec((0..4i64, 0..4i64), 0..8),
        threshold in 0..4i64,
    ) {
        let rows: Vec<(i64, i64, i64)> = values
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| (i as i64, a, b))
            .collect();
        let db = build(&rows);
        let q = format!("select r.k, r.a from r where r.b > {threshold}");
        let consistent = consistent_answers(&db, &q, &sigma()).unwrap();
        let original = db.query(&q).unwrap();
        prop_assert_eq!(row_bag(&consistent), row_bag(&original));
    }

    #[test]
    fn support_is_one_exactly_for_consistent_answers(
        rows in prop::collection::vec((0..3i64, 0..3i64, 0..3i64), 1..8),
    ) {
        let db = build(&rows);
        let q = "select r.a from r where r.b > 0";
        let consistent = row_set(&consistent_answers(&db, q, &sigma()).unwrap());
        let support = answers_with_support(&db, q, &sigma()).unwrap();
        for (row, s) in support {
            let key: Vec<String> = row.iter().map(ToString::to_string).collect();
            if s >= 1.0 - 1e-12 {
                prop_assert!(consistent.contains(&key), "support-1 answer {key:?} missing");
            } else {
                prop_assert!(!consistent.contains(&key), "uncertain answer {key:?} claimed consistent");
            }
        }
    }

    #[test]
    fn aggregate_ranges_are_well_formed(
        rows in prop::collection::vec((0..4i64, 0..3i64, -4..5i64), 1..10),
    ) {
        let db = build(&rows);
        let q = "select r.a, sum(r.b) as s from r group by r.a";
        let ranges = consistent_answers(&db, q, &sigma()).unwrap();
        let original = db.query(q).unwrap();
        let original_groups: HashSet<String> =
            original.rows.iter().map(|r| r[0].to_string()).collect();
        for row in &ranges.rows {
            // min <= max.
            let lo = &row[1];
            let hi = &row[2];
            prop_assert!(
                lo.total_cmp(hi) != std::cmp::Ordering::Greater,
                "range [{lo}, {hi}] inverted"
            );
            // Every consistent group exists in the original result.
            prop_assert!(original_groups.contains(&row[0].to_string()));
        }
    }

    #[test]
    fn annotation_stats_count_the_duplicated_keys(
        rows in prop::collection::vec((0..4i64, 0..4i64, 0..4i64), 0..12),
    ) {
        let db = build(&rows);
        let stats = conquer::annotate_database(&db, &sigma()).unwrap();
        let mut counts = std::collections::HashMap::new();
        for (k, _, _) in &rows {
            *counts.entry(*k).or_insert(0usize) += 1;
        }
        let expected_violated = counts.values().filter(|c| **c > 1).count();
        let expected_inconsistent: usize =
            counts.values().filter(|c| **c > 1).sum();
        prop_assert_eq!(stats[0].violated_keys, expected_violated);
        prop_assert_eq!(stats[0].inconsistent_tuples, expected_inconsistent);
    }
}
