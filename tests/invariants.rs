//! Cross-cutting semantic invariants, checked on random inconsistent
//! databases (deterministic seeds via `conquer::tpch::rng`):
//!
//! * consistent answers ⊆ possible answers (Section 2's two semantics);
//! * on a key-consistent database the rewriting returns exactly the
//!   original query's bag of answers;
//! * repair support is 1.0 exactly for the consistent answers;
//! * aggregate ranges are well-formed (min ≤ max) and their groups are a
//!   subset of the original query's groups.

use std::collections::HashSet;

use conquer::engine::DataType;
use conquer::tpch::rng::StdRng;
use conquer::{answers_with_support, consistent_answers, ConstraintSet, Database, Table, Value};

const CASES: u64 = 150;

fn build(rows: &[(i64, i64, i64)]) -> Database {
    let db = Database::new();
    let mut t = Table::new(
        "r",
        vec![
            ("k", DataType::Integer),
            ("a", DataType::Integer),
            ("b", DataType::Integer),
        ],
    );
    t.extend_unchecked(
        rows.iter()
            .map(|(k, a, b)| vec![Value::Int(*k), Value::Int(*a), Value::Int(*b)]),
    );
    db.register(t).unwrap();
    db
}

fn rand_rows(rng: &mut StdRng, max_n: usize, min_n: usize, hi: i64) -> Vec<(i64, i64, i64)> {
    let n = rng.gen_range(min_n..max_n);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..hi),
                rng.gen_range(0..hi),
                rng.gen_range(0..hi),
            )
        })
        .collect()
}

fn sigma() -> ConstraintSet {
    ConstraintSet::new().with_key("r", ["k"])
}

fn row_set(rows: &conquer::Rows) -> HashSet<Vec<String>> {
    rows.rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect()
}

fn row_bag(rows: &conquer::Rows) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = rows
        .rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    v.sort();
    v
}

#[test]
fn consistent_answers_are_possible_answers() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0055_0000 + case);
        let rows = rand_rows(&mut rng, 10, 0, 4);
        let threshold = rng.gen_range(0..4i64);
        let db = build(&rows);
        let q = format!("select r.a from r where r.b >= {threshold}");
        let consistent = consistent_answers(&db, &q, &sigma()).unwrap();
        let possible = db.query(&q).unwrap();
        let c = row_set(&consistent);
        let p = row_set(&possible);
        assert!(
            c.is_subset(&p),
            "consistent {c:?} not within possible {p:?} (case {case})"
        );
    }
}

#[test]
fn consistent_database_is_a_fixpoint() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF1F0_0000 + case);
        // Distinct keys -> no violations.
        let n = rng.gen_range(0..8usize);
        let rows: Vec<(i64, i64, i64)> = (0..n)
            .map(|i| (i as i64, rng.gen_range(0..4i64), rng.gen_range(0..4i64)))
            .collect();
        let threshold = rng.gen_range(0..4i64);
        let db = build(&rows);
        let q = format!("select r.k, r.a from r where r.b > {threshold}");
        let consistent = consistent_answers(&db, &q, &sigma()).unwrap();
        let original = db.query(&q).unwrap();
        assert_eq!(row_bag(&consistent), row_bag(&original), "case {case}");
    }
}

#[test]
fn support_is_one_exactly_for_consistent_answers() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + case);
        let rows = rand_rows(&mut rng, 8, 1, 3);
        let db = build(&rows);
        let q = "select r.a from r where r.b > 0";
        let consistent = row_set(&consistent_answers(&db, q, &sigma()).unwrap());
        let support = answers_with_support(&db, q, &sigma()).unwrap();
        for (row, s) in support {
            let key: Vec<String> = row.iter().map(ToString::to_string).collect();
            if s >= 1.0 - 1e-12 {
                assert!(
                    consistent.contains(&key),
                    "support-1 answer {key:?} missing (case {case})"
                );
            } else {
                assert!(
                    !consistent.contains(&key),
                    "uncertain answer {key:?} claimed consistent (case {case})"
                );
            }
        }
    }
}

#[test]
fn aggregate_ranges_are_well_formed() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA66E_0000 + case);
        let n = rng.gen_range(1..10usize);
        let rows: Vec<(i64, i64, i64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..4i64),
                    rng.gen_range(0..3i64),
                    rng.gen_range(-4..5i64),
                )
            })
            .collect();
        let db = build(&rows);
        let q = "select r.a, sum(r.b) as s from r group by r.a";
        let ranges = consistent_answers(&db, q, &sigma()).unwrap();
        let original = db.query(q).unwrap();
        let original_groups: HashSet<String> =
            original.rows.iter().map(|r| r[0].to_string()).collect();
        for row in &ranges.rows {
            // min <= max.
            let lo = &row[1];
            let hi = &row[2];
            assert!(
                lo.total_cmp(hi) != std::cmp::Ordering::Greater,
                "range [{lo}, {hi}] inverted (case {case})"
            );
            // Every consistent group exists in the original result.
            assert!(original_groups.contains(&row[0].to_string()), "case {case}");
        }
    }
}

#[test]
fn annotation_stats_count_the_duplicated_keys() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD0B1_0000 + case);
        let rows = rand_rows(&mut rng, 12, 0, 4);
        let db = build(&rows);
        let stats = conquer::annotate_database(&db, &sigma()).unwrap();
        let mut counts = std::collections::HashMap::new();
        for (k, _, _) in &rows {
            *counts.entry(*k).or_insert(0usize) += 1;
        }
        let expected_violated = counts.values().filter(|c| **c > 1).count();
        let expected_inconsistent: usize = counts.values().filter(|c| **c > 1).sum();
        assert_eq!(stats[0].violated_keys, expected_violated, "case {case}");
        assert_eq!(
            stats[0].inconsistent_tuples, expected_inconsistent,
            "case {case}"
        );
    }
}
