//! Serial-vs-parallel differential over the full benchmark and rewriting
//! surface: every TPC-H workload query under every execution strategy
//! (original, consistent rewriting, annotation-aware rewriting), plus the
//! rewriting-shaped queries from the core tests, must produce the
//! **bit-identical** answer at `threads ∈ {1, 2, 8}` — identical ordered
//! rows where the query fixes an order, and identical rows in the
//! executor's deterministic morsel order everywhere else. Floats included:
//! SUM/AVG accumulate in an exact superaccumulator (`conquer_engine::fsum`),
//! so the result is a function of the input multiset and merge order
//! cannot perturb even the last ulp.
//!
//! Also covered: governed runs at every thread count trip the same limits
//! (first trip wins, no panics, no deadlocks) and leave the database
//! usable, and cross-thread cancellation stops a parallel query.

use conquer::tpch::{all_queries, build_workload, WorkloadConfig};
use conquer::{
    consistent_answers_annotated_with, consistent_answers_with, CancellationToken, EngineError,
    ExecOptions, ResourceLimits, RewriteError, Rows, Value,
};

const THREADS: [usize; 3] = [1, 2, 8];

fn opts(threads: usize) -> ExecOptions {
    ExecOptions::default().with_threads(threads)
}

/// Compare two result sets exactly — floats bit-for-bit (`to_bits`, so
/// that a NaN equals a bit-identical NaN and `0.0` differs from `-0.0`).
fn assert_rows_match(serial: &Rows, parallel: &Rows, context: &str) {
    assert_eq!(
        serial.rows.len(),
        parallel.rows.len(),
        "row count diverged: {context}"
    );
    for (a, b) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(a.len(), b.len(), "row width diverged: {context}");
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (Value::Float(x), Value::Float(y)) => {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "float diverged ({x:?} vs {y:?}): {context}"
                    );
                }
                _ => assert_eq!(x, y, "value diverged: {context}"),
            }
        }
    }
}

#[test]
fn tpch_queries_match_across_thread_counts_under_all_strategies() {
    // sf 0.02 keeps the suite fast while leaving lineitem/orders large
    // enough to cross the executor's parallel threshold.
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: true,
        ..WorkloadConfig::default()
    });
    for q in all_queries() {
        let serial_orig = w.db.query_with(q.sql, &opts(1)).unwrap();
        let serial_rew = consistent_answers_with(&w.db, q.sql, &w.sigma, &opts(1)).unwrap();
        let serial_ann =
            consistent_answers_annotated_with(&w.db, q.sql, &w.sigma, &opts(1)).unwrap();
        for threads in [2, 8] {
            let ctx = |s: &str| format!("{} [{s}] threads={threads}", q.name());
            let orig = w.db.query_with(q.sql, &opts(threads)).unwrap();
            assert_rows_match(&serial_orig, &orig, &ctx("original"));
            let rew = consistent_answers_with(&w.db, q.sql, &w.sigma, &opts(threads)).unwrap();
            assert_rows_match(&serial_rew, &rew, &ctx("rewritten"));
            let ann =
                consistent_answers_annotated_with(&w.db, q.sql, &w.sigma, &opts(threads)).unwrap();
            assert_rows_match(&serial_ann, &ann, &ctx("annotated"));
        }
    }
}

#[test]
fn rewriting_shaped_queries_match_across_thread_counts() {
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: false,
        ..WorkloadConfig::default()
    });
    // Shapes from the rewriting-structure tests: joins into key/non-key
    // columns, aggregation over joins, DISTINCT, ordered aggregation.
    // These go through both the plain engine and the consistent rewriting.
    let rewritable = [
        "select o.o_orderkey from orders o, customer c where o.o_custkey = c.c_custkey",
        "select c.c_mktsegment, sum(o.o_totalprice) as revenue from customer c, orders o \
         where o.o_custkey = c.c_custkey group by c.c_mktsegment",
        "select distinct o.o_custkey from orders o",
        "select o.o_custkey, count(*) from orders o group by o.o_custkey order by o.o_custkey",
    ];
    // EXISTS / NOT EXISTS are outside the rewriting's input fragment
    // (Section 6.1 expects unnested input) but exercise the executor's
    // semi/anti hash joins, so they run through the plain engine.
    let engine_only = [
        "select c.c_custkey from customer c where exists \
         (select o.o_orderkey from orders o where o.o_custkey = c.c_custkey)",
        "select c.c_custkey from customer c where not exists \
         (select o.o_orderkey from orders o where o.o_custkey = c.c_custkey)",
    ];
    for sql in rewritable.iter().chain(&engine_only) {
        let serial_orig = w.db.query_with(sql, &opts(1)).unwrap();
        for threads in [2, 8] {
            let orig = w.db.query_with(sql, &opts(threads)).unwrap();
            assert_rows_match(
                &serial_orig,
                &orig,
                &format!("original threads={threads}: {sql}"),
            );
        }
    }
    for sql in rewritable {
        let serial_rew = consistent_answers_with(&w.db, sql, &w.sigma, &opts(1)).unwrap();
        for threads in [2, 8] {
            let rew = consistent_answers_with(&w.db, sql, &w.sigma, &opts(threads)).unwrap();
            assert_rows_match(
                &serial_rew,
                &rew,
                &format!("rewritten threads={threads}: {sql}"),
            );
        }
    }
}

#[test]
fn resource_trips_are_thread_count_invariant() {
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: false,
        ..WorkloadConfig::default()
    });
    let sql = "select l.l_orderkey, count(*) from lineitem l, orders o \
               where l.l_orderkey = o.o_orderkey group by l.l_orderkey";
    for threads in THREADS {
        let options = ExecOptions::default()
            .with_limits(ResourceLimits::unlimited().with_max_rows(200))
            .with_threads(threads);
        let err = consistent_answers_with(&w.db, sql, &w.sigma, &options).unwrap_err();
        assert!(
            matches!(err, RewriteError::Engine(EngineError::RowLimitExceeded(_))),
            "threads={threads}: expected row-limit trip, got {err:?}"
        );
    }
    // First trip wins, nothing wedges: the workload answers immediately
    // afterwards at full fan-out.
    let rows = w.db.query_with(sql, &opts(8)).unwrap();
    assert!(!rows.rows.is_empty());
}

#[test]
fn cross_thread_cancellation_stops_a_parallel_query() {
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: false,
        ..WorkloadConfig::default()
    });
    let token = CancellationToken::new();
    let options = ExecOptions {
        cancellation: Some(token.clone()),
        ..ExecOptions::default()
    }
    .with_threads(8);
    let sql = "select l.l_orderkey, count(*) from lineitem l, orders o \
               where l.l_orderkey = o.o_orderkey group by l.l_orderkey";
    let result = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            // Keep re-running the query until the canceller (below) is
            // seen; each run crosses many cooperative check points.
            loop {
                match w.db.query_with(sql, &options) {
                    Ok(_) => continue,
                    Err(e) => return e,
                }
            }
        });
        token.cancel();
        handle.join().expect("query thread must not panic")
    });
    assert!(
        matches!(result, EngineError::Cancelled(_)),
        "expected cancellation, got {result:?}"
    );
}
