//! Randomized tests: on *random* inconsistent databases and a family of
//! random tree queries, the rewriting must agree exactly with brute-force
//! repair enumeration. This is the strongest correctness evidence in the
//! repository: Theorems 1 and 2 checked on hundreds of instances.
//!
//! Instances are drawn from the workspace's deterministic RNG
//! (`conquer::tpch::rng`) with fixed seeds, so every run checks the same
//! cases and a failure names the seed that produced it.

use conquer::engine::DataType;
use conquer::tpch::rng::StdRng;
use conquer::{
    consistent_answers, consistent_answers_oracle, range_consistent_oracle, ConstraintSet,
    Database, Table, Value,
};

const CASES: u64 = 200;

/// A small random table r(k, a, b): keys in 0..4 so that duplicate keys
/// (inconsistency) arise often, attribute values in 0..4.
fn table_r(rng: &mut StdRng) -> Vec<(i64, i64, i64)> {
    let n = rng.gen_range(0..10usize);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..4i64),
                rng.gen_range(0..4i64),
                rng.gen_range(0..4i64),
            )
        })
        .collect()
}

/// A second table s(k, c) to join against.
fn table_s(rng: &mut StdRng) -> Vec<(i64, i64)> {
    let n = rng.gen_range(0..8usize);
    (0..n)
        .map(|_| (rng.gen_range(0..4i64), rng.gen_range(0..4i64)))
        .collect()
}

fn build_db(r: &[(i64, i64, i64)], s: Option<&[(i64, i64)]>) -> Database {
    let db = Database::new();
    let mut tr = Table::new(
        "r",
        vec![
            ("k", DataType::Integer),
            ("a", DataType::Integer),
            ("b", DataType::Integer),
        ],
    );
    tr.extend_unchecked(
        r.iter()
            .map(|(k, a, b)| vec![Value::Int(*k), Value::Int(*a), Value::Int(*b)]),
    );
    db.register(tr).unwrap();
    if let Some(s) = s {
        let mut ts = Table::new(
            "s",
            vec![("k", DataType::Integer), ("c", DataType::Integer)],
        );
        ts.extend_unchecked(s.iter().map(|(k, c)| vec![Value::Int(*k), Value::Int(*c)]));
        db.register(ts).unwrap();
    }
    db
}

fn sigma_r() -> ConstraintSet {
    ConstraintSet::new().with_key("r", ["k"])
}

fn sigma_rs() -> ConstraintSet {
    ConstraintSet::new()
        .with_key("r", ["k"])
        .with_key("s", ["k"])
}

fn sorted(rows: &conquer::Rows) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = rows
        .rows
        .iter()
        .map(|row| row.iter().map(ToString::to_string).collect())
        .collect();
    v.sort();
    v
}

fn check_join_query(db: &Database, q: &str, sigma: &ConstraintSet, case: u64) {
    let rewritten = consistent_answers(db, q, sigma)
        .unwrap_or_else(|e| panic!("rewrite failed for {q} (case {case}): {e}"));
    let oracle = consistent_answers_oracle(db, q, sigma)
        .unwrap_or_else(|e| panic!("oracle failed for {q} (case {case}): {e}"));
    assert_eq!(
        sorted(&rewritten),
        sorted(&oracle),
        "query: {q} (case {case})"
    );
}

/// Theorem 1 on a single relation: key projection, non-key projection,
/// and mixed selections.
#[test]
fn single_relation_join_queries_match_oracle() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x51A6_0000 + case);
        let rows = table_r(&mut rng);
        let threshold = rng.gen_range(0..4i64);
        let db = build_db(&rows, None);
        let sigma = sigma_r();
        for q in [
            format!("select r.k from r where r.a > {threshold}"),
            format!("select r.a from r where r.b >= {threshold}"),
            format!("select r.k, r.b from r where r.a <= {threshold}"),
            "select r.a, r.b from r".to_string(),
        ] {
            check_join_query(&db, &q, &sigma, case);
        }
    }
}

/// Theorem 1 across a non-key-to-key join r.b -> s.k.
#[test]
fn two_relation_join_queries_match_oracle() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2E1A_0000 + case);
        let r_rows = table_r(&mut rng);
        let s_rows = table_s(&mut rng);
        let threshold = rng.gen_range(0..4i64);
        let db = build_db(&r_rows, Some(&s_rows));
        let sigma = sigma_rs();
        for q in [
            format!("select r.k from r, s where r.b = s.k and s.c > {threshold}"),
            format!("select r.a from r, s where r.b = s.k and s.c <= {threshold}"),
            "select s.c from r, s where r.b = s.k".to_string(),
        ] {
            check_join_query(&db, &q, &sigma, case);
        }
    }
}

/// Theorem 1 across a key-to-key join r.k = s.k.
#[test]
fn key_to_key_join_queries_match_oracle() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4E14_0000 + case);
        let r_rows = table_r(&mut rng);
        let s_rows = table_s(&mut rng);
        let threshold = rng.gen_range(0..4i64);
        let db = build_db(&r_rows, Some(&s_rows));
        let sigma = sigma_rs();
        for q in [
            format!("select r.k from r, s where r.k = s.k and r.a > {threshold}"),
            format!("select r.a from r, s where r.k = s.k and s.c > {threshold}"),
        ] {
            check_join_query(&db, &q, &sigma, case);
        }
    }
}

/// Theorem 2: SUM/COUNT/MIN/MAX ranges on grouped single-relation
/// queries match the oracle exactly (values may be negative for SUM).
#[test]
fn aggregate_ranges_match_oracle() {
    const AGGS: [&str; 4] = ["sum", "count", "min", "max"];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA66A_0000 + case);
        let n = rng.gen_range(1..10usize);
        let rows: Vec<(i64, i64, i64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..4i64),
                    rng.gen_range(0..3i64),
                    rng.gen_range(-3..4i64),
                )
            })
            .collect();
        let threshold = rng.gen_range(-3..4i64);
        let agg = AGGS[rng.gen_range(0..AGGS.len())];

        let db = Database::new();
        let mut t = Table::new(
            "r",
            vec![
                ("k", DataType::Integer),
                ("g", DataType::Integer),
                ("v", DataType::Integer),
            ],
        );
        t.extend_unchecked(
            rows.iter()
                .map(|(k, g, v)| vec![Value::Int(*k), Value::Int(*g), Value::Int(*v)]),
        );
        db.register(t).unwrap();
        let sigma = sigma_r();

        let agg_expr = if agg == "count" {
            "count(*)".to_string()
        } else {
            format!("{agg}(r.v)")
        };
        let q = format!("select r.g, {agg_expr} as x from r where r.v >= {threshold} group by r.g");
        let rewritten = consistent_answers(&db, &q, &sigma)
            .unwrap_or_else(|e| panic!("rewrite failed for {q}: {e}"));
        let oracle = range_consistent_oracle(&db, &q, &sigma, 1)
            .unwrap_or_else(|e| panic!("oracle failed for {q}: {e}"));

        let mut rewritten_view: Vec<(String, String, String)> = rewritten
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].to_string(), r[2].to_string()))
            .collect();
        let mut oracle_view: Vec<(String, String, String)> = oracle
            .iter()
            .map(|a| {
                (
                    a.group[0].to_string(),
                    a.ranges[0].0.to_string(),
                    a.ranges[0].1.to_string(),
                )
            })
            .collect();
        // Group order is first-seen for the rewriting and sorted for the
        // oracle; compare as sets of rows.
        rewritten_view.sort();
        oracle_view.sort();
        assert_eq!(rewritten_view, oracle_view, "query: {q} (case {case})");
    }
}

/// Theorem 2 across a join: grouped SUM over r joined to s.
#[test]
fn joined_aggregate_ranges_match_oracle() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x701A_0000 + case);
        let nr = rng.gen_range(1..8usize);
        let r_rows: Vec<(i64, i64, i64)> = (0..nr)
            .map(|_| {
                (
                    rng.gen_range(0..3i64),
                    rng.gen_range(0..3i64),
                    rng.gen_range(0..4i64),
                )
            })
            .collect();
        let ns = rng.gen_range(1..6usize);
        let s_rows: Vec<(i64, i64)> = (0..ns)
            .map(|_| (rng.gen_range(0..3i64), rng.gen_range(0..3i64)))
            .collect();

        let db = Database::new();
        let mut tr = Table::new(
            "r",
            vec![
                ("k", DataType::Integer),
                ("fk", DataType::Integer),
                ("v", DataType::Integer),
            ],
        );
        tr.extend_unchecked(
            r_rows
                .iter()
                .map(|(k, f, v)| vec![Value::Int(*k), Value::Int(*f), Value::Int(*v)]),
        );
        db.register(tr).unwrap();
        let mut ts = Table::new(
            "s",
            vec![("k", DataType::Integer), ("g", DataType::Integer)],
        );
        ts.extend_unchecked(
            s_rows
                .iter()
                .map(|(k, g)| vec![Value::Int(*k), Value::Int(*g)]),
        );
        db.register(ts).unwrap();
        let sigma = sigma_rs();

        let q = "select s.g, sum(r.v) as x from r, s where r.fk = s.k group by s.g";
        let rewritten = consistent_answers(&db, q, &sigma)
            .unwrap_or_else(|e| panic!("rewrite failed (case {case}): {e}"));
        let oracle = range_consistent_oracle(&db, q, &sigma, 1)
            .unwrap_or_else(|e| panic!("oracle failed (case {case}): {e}"));

        let mut rewritten_view: Vec<(String, String, String)> = rewritten
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].to_string(), r[2].to_string()))
            .collect();
        let mut oracle_view: Vec<(String, String, String)> = oracle
            .iter()
            .map(|a| {
                (
                    a.group[0].to_string(),
                    a.ranges[0].0.to_string(),
                    a.ranges[0].1.to_string(),
                )
            })
            .collect();
        rewritten_view.sort();
        oracle_view.sort();
        assert_eq!(rewritten_view, oracle_view, "case {case}");
    }
}

/// The annotated rewriting always agrees with the plain one.
#[test]
fn annotated_rewriting_agrees_with_plain() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA110_0000 + case);
        let rows = table_r(&mut rng);
        let threshold = rng.gen_range(0..4i64);
        let db = build_db(&rows, None);
        let sigma = sigma_r();
        let q = format!("select r.k, r.a from r where r.b > {threshold}");
        let plain = consistent_answers(&db, &q, &sigma).unwrap();
        conquer::annotate_database(&db, &sigma).unwrap();
        let annotated = conquer::consistent_answers_annotated(&db, &q, &sigma).unwrap();
        assert_eq!(sorted(&plain), sorted(&annotated), "case {case}");
    }
}

/// The SQL printer round-trips every rewriting this family produces.
#[test]
fn rewriting_sql_round_trips() {
    const AGGS: [&str; 3] = ["sum", "min", "max"];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5019_0000 + case);
        let threshold = rng.gen_range(0..4i64);
        let agg = AGGS[rng.gen_range(0..AGGS.len())];
        let sigma = sigma_rs();
        for q in [
            format!("select r.k from r, s where r.b = s.k and s.c > {threshold}"),
            format!("select r.a, {agg}(r.b) as x from r where r.k >= {threshold} group by r.a"),
        ] {
            let parsed = conquer::parse_query(&q).unwrap();
            let rewritten =
                conquer::rewrite(&parsed, &sigma, &conquer::RewriteOptions::default()).unwrap();
            let text = rewritten.to_string();
            let reparsed =
                conquer::parse_query(&text).unwrap_or_else(|e| panic!("bad SQL: {e}\n{text}"));
            assert_eq!(reparsed, rewritten, "case {case}");
        }
    }
}
