//! Property-based tests: on *random* inconsistent databases and a family of
//! random tree queries, the rewriting must agree exactly with brute-force
//! repair enumeration. This is the strongest correctness evidence in the
//! repository: Theorems 1 and 2 checked on thousands of instances.

use proptest::prelude::*;

use conquer::{
    consistent_answers, consistent_answers_oracle, range_consistent_oracle, ConstraintSet,
    Database, Table, Value,
};
use conquer::engine::DataType;

/// A small random table r(k, a, b): keys in 0..4 so that duplicate keys
/// (inconsistency) arise often, attribute values in 0..4.
fn table_r() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((0..4i64, 0..4i64, 0..4i64), 0..10)
}

/// A second table s(k, c) to join against.
fn table_s() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..4i64, 0..4i64), 0..8)
}

fn build_db(r: &[(i64, i64, i64)], s: Option<&[(i64, i64)]>) -> Database {
    let db = Database::new();
    let mut tr = Table::new(
        "r",
        vec![("k", DataType::Integer), ("a", DataType::Integer), ("b", DataType::Integer)],
    );
    tr.extend_unchecked(
        r.iter().map(|(k, a, b)| vec![Value::Int(*k), Value::Int(*a), Value::Int(*b)]),
    );
    db.register(tr);
    if let Some(s) = s {
        let mut ts =
            Table::new("s", vec![("k", DataType::Integer), ("c", DataType::Integer)]);
        ts.extend_unchecked(s.iter().map(|(k, c)| vec![Value::Int(*k), Value::Int(*c)]));
        db.register(ts);
    }
    db
}

fn sigma_r() -> ConstraintSet {
    ConstraintSet::new().with_key("r", ["k"])
}

fn sigma_rs() -> ConstraintSet {
    ConstraintSet::new().with_key("r", ["k"]).with_key("s", ["k"])
}

fn sorted(rows: &conquer::Rows) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = rows
        .rows
        .iter()
        .map(|row| row.iter().map(ToString::to_string).collect())
        .collect();
    v.sort();
    v
}

fn check_join_query(db: &Database, q: &str, sigma: &ConstraintSet) {
    let rewritten = consistent_answers(db, q, sigma)
        .unwrap_or_else(|e| panic!("rewrite failed for {q}: {e}"));
    let oracle = consistent_answers_oracle(db, q, sigma)
        .unwrap_or_else(|e| panic!("oracle failed for {q}: {e}"));
    assert_eq!(sorted(&rewritten), sorted(&oracle), "query: {q}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 1 on a single relation: key projection, non-key projection,
    /// and mixed selections.
    #[test]
    fn single_relation_join_queries_match_oracle(
        rows in table_r(),
        threshold in 0..4i64,
    ) {
        let db = build_db(&rows, None);
        let sigma = sigma_r();
        for q in [
            format!("select r.k from r where r.a > {threshold}"),
            format!("select r.a from r where r.b >= {threshold}"),
            format!("select r.k, r.b from r where r.a <= {threshold}"),
            "select r.a, r.b from r".to_string(),
        ] {
            check_join_query(&db, &q, &sigma);
        }
    }

    /// Theorem 1 across a non-key-to-key join r.b -> s.k.
    #[test]
    fn two_relation_join_queries_match_oracle(
        r_rows in table_r(),
        s_rows in table_s(),
        threshold in 0..4i64,
    ) {
        let db = build_db(&r_rows, Some(&s_rows));
        let sigma = sigma_rs();
        for q in [
            format!("select r.k from r, s where r.b = s.k and s.c > {threshold}"),
            format!("select r.a from r, s where r.b = s.k and s.c <= {threshold}"),
            "select s.c from r, s where r.b = s.k".to_string(),
        ] {
            check_join_query(&db, &q, &sigma);
        }
    }

    /// Theorem 1 across a key-to-key join r.k = s.k.
    #[test]
    fn key_to_key_join_queries_match_oracle(
        r_rows in table_r(),
        s_rows in table_s(),
        threshold in 0..4i64,
    ) {
        let db = build_db(&r_rows, Some(&s_rows));
        let sigma = sigma_rs();
        for q in [
            format!("select r.k from r, s where r.k = s.k and r.a > {threshold}"),
            format!("select r.a from r, s where r.k = s.k and s.c > {threshold}"),
        ] {
            check_join_query(&db, &q, &sigma);
        }
    }

    /// Theorem 2: SUM/COUNT/MIN/MAX ranges on grouped single-relation
    /// queries match the oracle exactly (values may be negative for SUM).
    #[test]
    fn aggregate_ranges_match_oracle(
        rows in prop::collection::vec((0..4i64, 0..3i64, -3..4i64), 1..10),
        threshold in -3..4i64,
        agg in prop::sample::select(vec!["sum", "count", "min", "max"]),
    ) {
        let db = Database::new();
        let mut t = Table::new(
            "r",
            vec![("k", DataType::Integer), ("g", DataType::Integer), ("v", DataType::Integer)],
        );
        t.extend_unchecked(
            rows.iter().map(|(k, g, v)| vec![Value::Int(*k), Value::Int(*g), Value::Int(*v)]),
        );
        db.register(t);
        let sigma = sigma_r();

        let agg_expr = if agg == "count" { "count(*)".to_string() } else { format!("{agg}(r.v)") };
        let q = format!(
            "select r.g, {agg_expr} as x from r where r.v >= {threshold} group by r.g"
        );
        let rewritten = consistent_answers(&db, &q, &sigma)
            .unwrap_or_else(|e| panic!("rewrite failed for {q}: {e}"));
        let oracle = range_consistent_oracle(&db, &q, &sigma, 1)
            .unwrap_or_else(|e| panic!("oracle failed for {q}: {e}"));

        let rewritten_view: Vec<(String, String, String)> = rewritten
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].to_string(), r[2].to_string()))
            .collect();
        let oracle_view: Vec<(String, String, String)> = oracle
            .iter()
            .map(|a| {
                (
                    a.group[0].to_string(),
                    a.ranges[0].0.to_string(),
                    a.ranges[0].1.to_string(),
                )
            })
            .collect();
        // Group order is first-seen for the rewriting and sorted for the
        // oracle; compare as sets of rows.
        let mut rewritten_view = rewritten_view;
        let mut oracle_view = oracle_view;
        rewritten_view.sort();
        oracle_view.sort();
        prop_assert_eq!(rewritten_view, oracle_view, "query: {}", q);
    }

    /// Theorem 2 across a join: grouped SUM over r joined to s.
    #[test]
    fn joined_aggregate_ranges_match_oracle(
        r_rows in prop::collection::vec((0..3i64, 0..3i64, 0..4i64), 1..8),
        s_rows in prop::collection::vec((0..3i64, 0..3i64), 1..6),
    ) {
        let db = Database::new();
        let mut tr = Table::new(
            "r",
            vec![("k", DataType::Integer), ("fk", DataType::Integer), ("v", DataType::Integer)],
        );
        tr.extend_unchecked(
            r_rows.iter().map(|(k, f, v)| vec![Value::Int(*k), Value::Int(*f), Value::Int(*v)]),
        );
        db.register(tr);
        let mut ts = Table::new("s", vec![("k", DataType::Integer), ("g", DataType::Integer)]);
        ts.extend_unchecked(s_rows.iter().map(|(k, g)| vec![Value::Int(*k), Value::Int(*g)]));
        db.register(ts);
        let sigma = sigma_rs();

        let q = "select s.g, sum(r.v) as x from r, s where r.fk = s.k group by s.g";
        let rewritten = consistent_answers(&db, q, &sigma)
            .unwrap_or_else(|e| panic!("rewrite failed: {e}"));
        let oracle = range_consistent_oracle(&db, q, &sigma, 1)
            .unwrap_or_else(|e| panic!("oracle failed: {e}"));

        let rewritten_view: Vec<(String, String, String)> = rewritten
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].to_string(), r[2].to_string()))
            .collect();
        let oracle_view: Vec<(String, String, String)> = oracle
            .iter()
            .map(|a| {
                (
                    a.group[0].to_string(),
                    a.ranges[0].0.to_string(),
                    a.ranges[0].1.to_string(),
                )
            })
            .collect();
        let mut rewritten_view = rewritten_view;
        let mut oracle_view = oracle_view;
        rewritten_view.sort();
        oracle_view.sort();
        prop_assert_eq!(rewritten_view, oracle_view);
    }

    /// The annotated rewriting always agrees with the plain one.
    #[test]
    fn annotated_rewriting_agrees_with_plain(
        rows in table_r(),
        threshold in 0..4i64,
    ) {
        let db = build_db(&rows, None);
        let sigma = sigma_r();
        let q = format!("select r.k, r.a from r where r.b > {threshold}");
        let plain = consistent_answers(&db, &q, &sigma).unwrap();
        conquer::annotate_database(&db, &sigma).unwrap();
        let annotated =
            conquer::consistent_answers_annotated(&db, &q, &sigma).unwrap();
        prop_assert_eq!(sorted(&plain), sorted(&annotated));
    }

    /// The SQL printer round-trips every rewriting this family produces.
    #[test]
    fn rewriting_sql_round_trips(
        threshold in 0..4i64,
        agg in prop::sample::select(vec!["sum", "min", "max"]),
    ) {
        let sigma = sigma_rs();
        for q in [
            format!("select r.k from r, s where r.b = s.k and s.c > {threshold}"),
            format!("select r.a, {agg}(r.b) as x from r where r.k >= {threshold} group by r.a"),
        ] {
            let parsed = conquer::parse_query(&q).unwrap();
            let rewritten =
                conquer::rewrite(&parsed, &sigma, &conquer::RewriteOptions::default()).unwrap();
            let text = rewritten.to_string();
            let reparsed = conquer::parse_query(&text)
                .unwrap_or_else(|e| panic!("bad SQL: {e}\n{text}"));
            prop_assert_eq!(reparsed, rewritten);
        }
    }
}
