//! Batch-vs-row differential over the full benchmark and rewriting
//! surface: every TPC-H workload query under every execution strategy
//! (original, consistent rewriting, annotation-aware rewriting), plus an
//! operator-by-operator set of engine shapes, must produce the
//! **bit-identical** answer with the vectorized columnar kernels on and
//! off, at `threads ∈ {1, 2, 8}` — identical ordered rows where the query
//! fixes an order, and identical rows in the executor's deterministic
//! morsel order everywhere else. Floats compare by `to_bits`: SUM/AVG
//! accumulate in an exact superaccumulator (`conquer_engine::fsum`) on
//! both paths, so kernel batching must not perturb even the last ulp.
//!
//! The row path (`ExecOptions::with_columnar(false)`) is the oracle: it
//! is the original row-at-a-time reference executor, kept alive exactly
//! so this suite can hold the kernels to it. Also covered: value-level
//! errors (the columnar aggregate replays on the row path so the reported
//! error is the row-major one) and governor trips are mode-invariant.

use conquer::tpch::{all_queries, build_workload, WorkloadConfig};
use conquer::{
    consistent_answers_annotated_with, consistent_answers_with, EngineError, ExecOptions,
    ResourceLimits, Rows, Value,
};
use conquer_engine::Database;

const THREADS: [usize; 3] = [1, 2, 8];

fn row_opts(threads: usize) -> ExecOptions {
    ExecOptions::default()
        .with_threads(threads)
        .with_columnar(false)
}

fn col_opts(threads: usize) -> ExecOptions {
    ExecOptions::default()
        .with_threads(threads)
        .with_columnar(true)
}

/// Compare two result sets exactly — floats bit-for-bit (`to_bits`, so
/// that a NaN equals a bit-identical NaN and `0.0` differs from `-0.0`).
fn assert_rows_match(row: &Rows, col: &Rows, context: &str) {
    assert_eq!(
        row.rows.len(),
        col.rows.len(),
        "row count diverged: {context}"
    );
    for (a, b) in row.rows.iter().zip(&col.rows) {
        assert_eq!(a.len(), b.len(), "row width diverged: {context}");
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (Value::Float(x), Value::Float(y)) => {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "float diverged ({x:?} vs {y:?}): {context}"
                    );
                }
                _ => assert_eq!(x, y, "value diverged: {context}"),
            }
        }
    }
}

#[test]
fn tpch_queries_match_row_vs_columnar_under_all_strategies() {
    // sf 0.02 keeps the suite fast while leaving lineitem/orders large
    // enough to cross the executor's parallel threshold, so the morsel
    // kernels (parallel selection, partial-aggregate merge) are exercised.
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: true,
        ..WorkloadConfig::default()
    });
    for q in all_queries() {
        // Oracle: the row-at-a-time reference path, serial.
        let row_orig = w.db.query_with(q.sql, &row_opts(1)).unwrap();
        let row_rew = consistent_answers_with(&w.db, q.sql, &w.sigma, &row_opts(1)).unwrap();
        let row_ann =
            consistent_answers_annotated_with(&w.db, q.sql, &w.sigma, &row_opts(1)).unwrap();
        for threads in THREADS {
            let ctx = |s: &str| format!("{} [{s}] threads={threads}", q.name());
            let orig = w.db.query_with(q.sql, &col_opts(threads)).unwrap();
            assert_rows_match(&row_orig, &orig, &ctx("original"));
            let rew = consistent_answers_with(&w.db, q.sql, &w.sigma, &col_opts(threads)).unwrap();
            assert_rows_match(&row_rew, &rew, &ctx("rewritten"));
            let ann = consistent_answers_annotated_with(&w.db, q.sql, &w.sigma, &col_opts(threads))
                .unwrap();
            assert_rows_match(&row_ann, &ann, &ctx("annotated"));
        }
    }
}

#[test]
fn engine_op_shapes_match_row_vs_columnar() {
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: false,
        ..WorkloadConfig::default()
    });
    // One shape per executor operator/kernel: selection-bitmap filters
    // (conjunction, disjunction, negation, NULL semantics, text equality
    // over the dictionary), fused column projection vs computed
    // projection, typed global aggregates with and without DISTINCT,
    // grouped aggregation, hash joins into key and non-key columns, the
    // semi/anti gather kernel, nested-loop residuals, UNION ALL, CTE
    // materialization, ORDER BY with LIMIT, and correlated subqueries
    // (which inherit the enclosing query's mode).
    let shapes = [
        "select o_orderkey from orders o where o_totalprice > 1000 and o_shippriority = 0",
        "select o_orderkey from orders o where o_totalprice > 100000 or o_orderkey < 50",
        "select o_orderkey from orders o where not (o_totalprice > 1000)",
        "select c_custkey from customer c where c_mktsegment = 'BUILDING'",
        "select o_orderkey, o_custkey, o_totalprice from orders o where o_orderkey > 0",
        "select o_orderkey + o_custkey, o_totalprice * 2.0 from orders o",
        "select count(*), sum(o_totalprice), avg(o_totalprice), min(o_orderdate), \
         max(o_orderdate) from orders o",
        "select count(distinct o_custkey), sum(distinct o_shippriority) from orders o",
        "select o_custkey, count(*), sum(o_totalprice) from orders o group by o_custkey",
        "select c.c_mktsegment, avg(o.o_totalprice) from customer c, orders o \
         where o.o_custkey = c.c_custkey group by c.c_mktsegment",
        "select o.o_orderkey from orders o, customer c where o.o_custkey = c.c_custkey",
        "select o.o_orderkey from orders o left join customer c \
         on o.o_custkey = c.c_custkey and c.c_acctbal > 0",
        "select c.c_custkey from customer c where exists \
         (select o.o_orderkey from orders o where o.o_custkey = c.c_custkey)",
        "select c.c_custkey from customer c where not exists \
         (select o.o_orderkey from orders o where o.o_custkey = c.c_custkey)",
        "select a.o_orderkey from orders a join orders b on a.o_orderkey > b.o_orderkey \
         where a.o_orderkey < 20",
        "select distinct o_custkey from orders o",
        "select o_orderkey from orders o union all select c_custkey from customer c",
        "with big as (select o_custkey, o_totalprice from orders o where o_totalprice > 500) \
         select o_custkey, sum(o_totalprice) from big group by o_custkey",
        "select o_orderkey, o_totalprice from orders o order by o_totalprice desc, o_orderkey \
         limit 25",
        "select c.c_custkey from customer c where c.c_acctbal > \
         (select avg(c2.c_acctbal) from customer c2)",
    ];
    for sql in shapes {
        let oracle = w.db.query_with(sql, &row_opts(1)).unwrap();
        for threads in THREADS {
            let got = w.db.query_with(sql, &col_opts(threads)).unwrap();
            assert_rows_match(&oracle, &got, &format!("threads={threads}: {sql}"));
        }
    }
}

#[test]
fn null_heavy_kernels_match_row_vs_columnar() {
    // Validity-bitmap edge cases: NULLs in filter columns (3VL), in
    // aggregate arguments (skipped, COUNT(*) vs COUNT(col)), in join keys
    // (never match), and in group keys (NULL is its own group).
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v float, s text);
         insert into t values (1, 1.5, 'a'), (null, 2.5, 'b'), (2, null, null),
                              (1, -0.0, 'a'), (null, null, 'c'), (3, 0.0, 'b');
         create table u (k integer);
         insert into u values (1), (null), (3), (4);",
    )
    .unwrap();
    let shapes = [
        "select k, v from t where k > 1",
        "select k from t where v > 0 or s = 'a'",
        "select count(*), count(k), count(v), sum(v), avg(v), min(v), max(v) from t",
        "select k, count(*), sum(v) from t group by k",
        "select s, count(distinct k) from t group by s",
        "select t.k, u.k from t join u on t.k = u.k",
        "select t.k from t where exists (select u.k from u where u.k = t.k)",
        "select t.k from t where not exists (select u.k from u where u.k = t.k)",
        "select k, v from t order by v, k",
    ];
    for sql in shapes {
        let oracle = db.query_with(sql, &row_opts(1)).unwrap();
        for threads in THREADS {
            let got = db.query_with(sql, &col_opts(threads)).unwrap();
            assert_rows_match(&oracle, &got, &format!("threads={threads}: {sql}"));
        }
    }
}

#[test]
fn value_errors_match_row_vs_columnar() {
    // The columnar aggregate visits values column-major; on a value-level
    // error it must replay on the row path so the *reported* error is the
    // one the row-major scan hits first.
    let db = Database::new();
    db.run_script(
        "create table t (a integer, b text);
         insert into t values (1, 'x'), (2, 'y'), (3, 'z');",
    )
    .unwrap();
    let cases = [
        "select sum(b) from t",
        "select a + b from t",
        "select a, sum(b) from t group by a",
        "select a from t where a + b > 0",
    ];
    for sql in cases {
        for threads in THREADS {
            let row_err = db.query_with(sql, &row_opts(threads)).unwrap_err();
            let col_err = db.query_with(sql, &col_opts(threads)).unwrap_err();
            assert_eq!(
                row_err.to_string(),
                col_err.to_string(),
                "error diverged at threads={threads}: {sql}"
            );
        }
    }
}

#[test]
fn resource_trips_are_mode_invariant() {
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: false,
        ..WorkloadConfig::default()
    });
    let sql = "select l.l_orderkey, count(*) from lineitem l, orders o \
               where l.l_orderkey = o.o_orderkey group by l.l_orderkey";
    for columnar in [false, true] {
        for threads in THREADS {
            let options = ExecOptions::default()
                .with_limits(ResourceLimits::unlimited().with_max_rows(200))
                .with_threads(threads)
                .with_columnar(columnar);
            let err = w.db.query_with(sql, &options).unwrap_err();
            assert!(
                matches!(err, EngineError::RowLimitExceeded(_)),
                "columnar={columnar} threads={threads}: expected row-limit trip, got {err:?}"
            );
        }
    }
    // First trip wins, nothing wedges: the workload answers immediately
    // afterwards on the kernel path at full fan-out.
    let rows = w.db.query_with(sql, &col_opts(8)).unwrap();
    assert!(!rows.rows.is_empty());
}
