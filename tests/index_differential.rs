//! Indexes-on vs indexes-off differential over the full benchmark and
//! rewriting surface: every TPC-H workload query under every execution
//! strategy (original, consistent rewriting, annotation-aware rewriting)
//! must produce the **bit-identical** answer multiset with secondary
//! indexes enabled (`ExecOptions::default()`) and disabled
//! (`.with_indexes(false)`), at `threads ∈ {1, 2, 8}`. The index-blind
//! plans are exactly the pre-index plans, so this suite holds the whole
//! access-path layer — index scans, index-backed hash-join builds, and
//! the SeqScan fallback — to the original executor.
//!
//! Rows compare as canonically sorted multisets: an index-backed join
//! keeps its declared build side (the runtime inner-swap is skipped), so
//! unordered results may stream back in a different — still deterministic
//! — order than the index-blind plan produces. Queries with ORDER BY are
//! additionally compared in their delivered order. Floats compare by
//! `to_bits`, so index gathers must not perturb even the last ulp.

use std::cmp::Ordering;

use conquer::tpch::{all_queries, build_workload, WorkloadConfig};
use conquer::{
    consistent_answers_annotated_with, consistent_answers_with, rewrite_sql, ConstraintSet,
    EngineError, ExecOptions, ResourceLimits, RewriteOptions, Rows, Value,
};
use conquer_engine::Database;

const THREADS: [usize; 3] = [1, 2, 8];

fn indexed_opts(threads: usize) -> ExecOptions {
    ExecOptions::default().with_threads(threads)
}

fn blind_opts(threads: usize) -> ExecOptions {
    ExecOptions::default()
        .with_threads(threads)
        .with_indexes(false)
}

/// Bitwise total order on values (floats by `to_bits` via `total_cmp`),
/// extended lexicographically to rows: the canonical multiset order.
fn canon(rows: &mut Rows) {
    rows.rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(Ordering::Equal)
    });
}

/// Compare two result sets exactly — floats bit-for-bit (`to_bits`, so a
/// NaN equals a bit-identical NaN and `0.0` differs from `-0.0`).
fn assert_rows_match(blind: &Rows, indexed: &Rows, context: &str) {
    assert_eq!(
        blind.rows.len(),
        indexed.rows.len(),
        "row count diverged: {context}"
    );
    for (a, b) in blind.rows.iter().zip(&indexed.rows) {
        assert_eq!(a.len(), b.len(), "row width diverged: {context}");
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (Value::Float(x), Value::Float(y)) => {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "float diverged ({x:?} vs {y:?}): {context}"
                    );
                }
                _ => assert_eq!(x, y, "value diverged: {context}"),
            }
        }
    }
}

fn assert_canon_match(blind: Rows, indexed: Rows, context: &str) {
    let (mut blind, mut indexed) = (blind, indexed);
    canon(&mut blind);
    canon(&mut indexed);
    assert_rows_match(&blind, &indexed, context);
}

#[test]
fn tpch_queries_match_indexed_vs_blind_under_all_strategies() {
    // `build_workload` declares an index on every relation's key columns;
    // the lazy builds fire on the first indexed planning pass below. The
    // ORDER BY queries among the six are also compared in delivered order
    // (an index must never perturb a *sorted* result).
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: true,
        ..WorkloadConfig::default()
    });
    for q in all_queries() {
        // Oracle: the index-blind pre-index plans, serial.
        let blind_orig = w.db.query_with(q.sql, &blind_opts(1)).unwrap();
        let blind_rew = consistent_answers_with(&w.db, q.sql, &w.sigma, &blind_opts(1)).unwrap();
        let blind_ann =
            consistent_answers_annotated_with(&w.db, q.sql, &w.sigma, &blind_opts(1)).unwrap();
        let ordered = q.sql.to_ascii_lowercase().contains("order by");
        for threads in THREADS {
            let ctx = |s: &str| format!("{} [{s}] threads={threads}", q.name());
            let orig = w.db.query_with(q.sql, &indexed_opts(threads)).unwrap();
            let rew =
                consistent_answers_with(&w.db, q.sql, &w.sigma, &indexed_opts(threads)).unwrap();
            let ann =
                consistent_answers_annotated_with(&w.db, q.sql, &w.sigma, &indexed_opts(threads))
                    .unwrap();
            if ordered {
                assert_rows_match(&blind_orig, &orig, &ctx("original/ordered"));
                assert_rows_match(&blind_rew, &rew, &ctx("rewritten/ordered"));
                assert_rows_match(&blind_ann, &ann, &ctx("annotated/ordered"));
            }
            assert_canon_match(blind_orig.clone(), orig, &ctx("original"));
            assert_canon_match(blind_rew.clone(), rew, &ctx("rewritten"));
            assert_canon_match(blind_ann.clone(), ann, &ctx("annotated"));
        }
    }
}

#[test]
fn point_range_and_null_key_fixtures_match_indexed_vs_blind() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v float, s text);
         insert into t values
           (1, 10.5, 'a'), (2, 20.5, 'b'), (2, 21.5, 'c'), (3, -0.0, 'd'),
           (4, 0.0, 'e'), (5, 50.5, 'f'), (5, 51.5, 'g'), (6, 60.5, 'h');
         insert into t (v, s) values (7.5, 'n1'), (8.5, 'n2');
         create table u (k integer, w integer);
         insert into u values (1, 100), (2, 200), (5, 500), (9, 900);
         insert into u (w) values (999);",
    )
    .unwrap();
    db.create_index("t", &["k"]).unwrap();
    db.create_index("u", &["k"]).unwrap();
    let shapes = [
        // Point lookups, hit and miss, plus a NULL literal (empty).
        "select s from t where k = 5",
        "select s from t where k = 42",
        "select s from t where k = null",
        // Ranges: open, closed, half-open, empty, and with residuals.
        "select s from t where k > 2",
        "select s from t where k >= 2 and k <= 5",
        "select s from t where k > 2 and k < 3",
        "select s from t where k > 100",
        "select s from t where k > 1 and v > 20.0",
        // NULL keys: never matched by eq, range, or join probes.
        "select s from t where k > 0 or s = 'n1'",
        "select a.s, b.s from t a, t b where a.k = b.k and a.v < b.v",
        "select t.s, u.w from t, u where t.k = u.k",
        "select t.s from t where exists (select u.k from u where u.k = t.k)",
        "select t.s from t where not exists (select u.k from u where u.k = t.k)",
        // Aggregates over index-scanned inputs (float sums bit-compare).
        "select k, sum(v), count(*) from t where k >= 2 group by k",
    ];
    for sql in shapes {
        let blind = db.query_with(sql, &blind_opts(1)).unwrap();
        for threads in THREADS {
            let indexed = db.query_with(sql, &indexed_opts(threads)).unwrap();
            assert_canon_match(blind.clone(), indexed, &format!("threads={threads}: {sql}"));
        }
    }
}

#[test]
fn rewriting_self_join_plans_an_index_under_use_stats() {
    // The acceptance shape: ConQuer's Candidates/Filter rewriting
    // self-joins each relation on its key columns, and the planner must
    // probe the auto-declared key index for it.
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500),
           ('c4', 900), ('c5', 1200), ('c5', 1300), ('c6', 400), ('c7', 3100);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    conquer::core::declare_key_indexes(&db, &sigma);
    let rewritten = rewrite_sql(
        "select custkey from customer where acctbal > 1000",
        &sigma,
        &RewriteOptions::default(),
    )
    .unwrap();
    // With CTE materialization on (the default), the key self-join runs
    // inside the materialization pass and the top-level plan only scans
    // the materialized batches; inline the CTEs so EXPLAIN shows the
    // base-table joins and their access paths.
    let mut inline = indexed_opts(1);
    inline.materialize_ctes = false;
    let plan = db.explain_with(&rewritten, &inline).unwrap();
    assert!(
        plan.contains("access=index(custkey"),
        "rewriting self-join must probe the key index:\n{plan}"
    );
    for opts in [indexed_opts(1), inline] {
        let indexed = db.query_with(&rewritten, &opts).unwrap();
        let blind = db.query_with(&rewritten, &blind_opts(1)).unwrap();
        assert_canon_match(blind, indexed, "rewriting self-join");
    }
}

#[test]
fn governor_trips_are_index_invariant() {
    // A row-budget trip far below either plan's row volume must fire in
    // both modes — an index access path changes which operators account
    // rows, never whether a blown budget is noticed.
    let w = build_workload(&WorkloadConfig {
        scale_factor: 0.02,
        annotate: false,
        ..WorkloadConfig::default()
    });
    let sql = "select l.l_orderkey, count(*) from lineitem l, orders o \
               where l.l_orderkey = o.o_orderkey group by l.l_orderkey";
    for indexes in [false, true] {
        for threads in THREADS {
            let options = ExecOptions::default()
                .with_limits(ResourceLimits::unlimited().with_max_rows(200))
                .with_threads(threads)
                .with_indexes(indexes);
            let err = w.db.query_with(sql, &options).unwrap_err();
            assert!(
                matches!(err, EngineError::RowLimitExceeded(_)),
                "indexes={indexes} threads={threads}: expected row-limit trip, got {err:?}"
            );
        }
    }
    // First trip wins, nothing wedges: the workload answers immediately
    // afterwards with indexes on at full fan-out.
    let rows = w.db.query_with(sql, &indexed_opts(8)).unwrap();
    assert!(!rows.rows.is_empty());
}

#[test]
fn drop_and_insert_invalidation_matches_blind_plans() {
    // DDL/DML churn around a built index: every mutation must invalidate
    // or extend the postings so the very next indexed query matches the
    // index-blind oracle exactly.
    let db = Database::new();
    db.run_script(
        "create table t (k integer, s text);
         insert into t values (1, 'a'), (2, 'b'), (2, 'c'), (3, 'd');",
    )
    .unwrap();
    db.create_index("t", &["k"]).unwrap();
    let check = |label: &str| {
        for sql in [
            "select s from t where k = 2",
            "select s from t where k > 1",
            "select a.s, b.s from t a, t b where a.k = b.k",
        ] {
            let blind = db.query_with(sql, &blind_opts(1)).unwrap();
            let indexed = db.query_with(sql, &indexed_opts(2)).unwrap();
            assert_canon_match(blind, indexed, &format!("{label}: {sql}"));
        }
    };
    check("initial build");
    db.run_script("insert into t values (2, 'e'), (9, 'f')")
        .unwrap();
    check("after insert");
    db.drop_table("t").unwrap();
    assert!(db.index_status().is_empty(), "drop removes the declaration");
    db.run_script(
        "create table t (k integer, s text);
         insert into t values (2, 'x'), (4, 'y');",
    )
    .unwrap();
    // The old declaration died with the table; re-declare and re-check.
    db.create_index("t", &["k"]).unwrap();
    check("after drop and recreate");
}
