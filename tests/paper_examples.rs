//! Cross-crate checks of the paper's worked examples through the `conquer`
//! facade, cross-validated against the repair-enumeration oracle.

use conquer::{
    consistent_answers, consistent_answers_oracle, possible_answers, possible_answers_oracle,
    range_consistent_oracle, ConstraintSet, Database, Value,
};

fn figure2_db() -> Database {
    let db = Database::new();
    db.run_script(
        "create table orders (orderkey text, clerk text, custfk text);
         insert into orders values
           ('o1', 'ali', 'c1'), ('o2', 'jo', 'c2'), ('o2', 'ali', 'c3'),
           ('o3', 'ali', 'c4'), ('o3', 'pat', 'c2'), ('o4', 'ali', 'c2'),
           ('o4', 'ali', 'c3'), ('o5', 'ali', 'c2');
         create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .unwrap();
    db
}

fn figure2_sigma() -> ConstraintSet {
    ConstraintSet::new()
        .with_key("orders", ["orderkey"])
        .with_key("customer", ["custkey"])
}

fn sorted(rows: &conquer::Rows) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = rows
        .rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    v.sort();
    v
}

#[test]
fn rewriting_matches_oracle_on_figure2_q2() {
    let db = figure2_db();
    let sigma = figure2_sigma();
    let q = "select o.orderkey from customer c, orders o
             where c.acctbal > 1000 and o.custfk = c.custkey";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    let oracle = consistent_answers_oracle(&db, q, &sigma).unwrap();
    assert_eq!(sorted(&rewritten), sorted(&oracle));
    assert_eq!(sorted(&oracle), vec![vec!["o2"], vec!["o4"], vec!["o5"]]);
}

#[test]
fn rewriting_matches_oracle_on_figure2_q3_with_multiplicities() {
    let db = figure2_db();
    let sigma = figure2_sigma();
    let q = "select o.clerk from customer c, orders o
             where c.acctbal > 1000 and o.custfk = c.custkey";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    let oracle = consistent_answers_oracle(&db, q, &sigma).unwrap();
    assert_eq!(sorted(&rewritten), sorted(&oracle));
    assert_eq!(sorted(&oracle), vec![vec!["ali"], vec!["ali"]]);
}

#[test]
fn possible_answers_equal_original_query_for_monotone_queries() {
    // Section 2: for key constraints and monotone queries, the original
    // query on the inconsistent database returns the possible answers.
    let db = figure2_db();
    let sigma = figure2_sigma();
    let q = "select distinct o.orderkey from customer c, orders o
             where c.acctbal > 1000 and o.custfk = c.custkey";
    let original = possible_answers(&db, q).unwrap();
    let oracle = possible_answers_oracle(&db, q, &sigma).unwrap();
    assert_eq!(sorted(&original), sorted(&oracle));
}

#[test]
fn range_consistent_answers_match_oracle_on_figure7() {
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, nationkey text, mktsegment text, acctbal float);
         insert into customer values
           ('c1', 'n1', 'building', 1000),
           ('c1', 'n1', 'building', 2000),
           ('c2', 'n1', 'building', 500),
           ('c2', 'n1', 'banking', 600),
           ('c3', 'n2', 'banking', 100);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let q = "select c.nationkey, sum(c.acctbal) as bal from customer c
             where c.mktsegment = 'building' group by c.nationkey";
    let rewritten = consistent_answers(&db, q, &sigma).unwrap();
    assert_eq!(rewritten.len(), 1);
    assert_eq!(rewritten.rows[0][1], Value::Float(1000.0));
    assert_eq!(rewritten.rows[0][2], Value::Float(2500.0));

    // The oracle, run on the *q_G-satisfying* semantics: a repair where the
    // group is absent means the group is not a consistent answer; for
    // present groups the SUM is over the rows that satisfy the selection.
    let oracle = range_consistent_oracle(&db, q, &sigma, 1).unwrap();
    assert_eq!(oracle.len(), 1);
    assert_eq!(oracle[0].group, vec![Value::str("n1")]);
    assert_eq!(
        oracle[0].ranges,
        vec![(Value::Float(1000.0), Value::Float(2500.0))]
    );
}

#[test]
fn figure1_repair_count_matches_example2() {
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let e = conquer::RepairEnumerator::new(&db, &sigma, 100).unwrap();
    assert_eq!(e.repair_count(), 4);
}
