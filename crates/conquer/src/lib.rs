//! # ConQuer: Efficient Management of Inconsistent Databases
//!
//! A complete, from-scratch Rust reproduction of the SIGMOD 2005 paper by
//! Fuxman, Fazli and Miller. This facade crate re-exports the whole stack:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`sql`] | `conquer-sql` | SQL lexer, parser, AST, printer |
//! | [`engine`] | `conquer-engine` | in-memory relational engine (the DB2 stand-in) |
//! | [`core`](mod@core) | `conquer-core` | the paper's rewritings: `RewriteJoin`, `RewriteAgg`, annotations |
//! | [`repair`] | `conquer-repair` | brute-force repair enumeration (oracle & baseline) |
//! | [`tpch`] | `conquer-tpch` | TPC-H generator, inconsistency injector, benchmark queries |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ```
//! use conquer::{consistent_answers, ConstraintSet, Database};
//!
//! let db = Database::new();
//! db.run_script(
//!     "create table customer (custkey text, acctbal float);
//!      insert into customer values ('c1', 2000), ('c1', 100), ('c2', 2500);",
//! ).unwrap();
//! let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
//! let rows = consistent_answers(
//!     &db, "select custkey from customer where acctbal > 1000", &sigma,
//! ).unwrap();
//! assert_eq!(rows.len(), 1); // only c2 is certain
//! ```

pub use conquer_core as core;
pub use conquer_engine as engine;
pub use conquer_repair as repair;
pub use conquer_sql as sql;
pub use conquer_tpch as tpch;

pub use conquer_core::{
    analyze, annotate_database, consistent_answers, consistent_answers_annotated,
    consistent_answers_annotated_with, consistent_answers_with, is_annotated, possible_answers,
    prepare_rewrite, rewrite, rewrite_sql, rewrite_tree, AnnotationStats, ConstraintSet,
    KeyConstraint, PreparedRewrite, RewriteError, RewriteOptions, TreeQuery,
};
pub use conquer_engine::{
    CancellationToken, Checkpointer, Database, DurabilityOptions, EngineError, ExecOptions,
    LimitTrip, ResourceLimits, Rows, StoreStatus, SyncPolicy, Table, Value,
};
pub use conquer_repair::{
    answers_with_support, consistent_answers_oracle, possible_answers_oracle,
    range_consistent_oracle, RangeAnswer, RepairEnumerator,
};
pub use conquer_sql::{parse_query, parse_statements};
