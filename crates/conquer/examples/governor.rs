//! Resource limits and cancellation in action: a cross join big enough to
//! blow every budget, each trip surfacing as a structured error naming the
//! operator — with the database fully usable afterwards.
//!
//! ```sh
//! cargo run -p conquer --example governor
//! ```

use std::time::Duration;

use conquer::{CancellationToken, Database, EngineError, ExecOptions, ResourceLimits};

fn main() {
    let db = Database::new();
    let vals: Vec<String> = (0..1500).map(|i| format!("({i})")).collect();
    db.run_script(&format!(
        "create table a (x integer); create table b (y integer);
         insert into a values {v}; insert into b values {v};",
        v = vals.join(", ")
    ))
    .expect("fixture");

    // 1500 x 1500 = 2.25M intermediate rows.
    let big = "select count(*) from a, b where a.x + b.y > 0";

    let show = |label: &str, result: Result<conquer::Rows, EngineError>| match result {
        Ok(rows) => println!("{label:>12}: ok ({} rows)", rows.len()),
        Err(EngineError::Timeout(trip)) => println!("{label:>12}: timeout {trip}"),
        Err(EngineError::MemoryExceeded(trip)) => println!("{label:>12}: memory {trip}"),
        Err(EngineError::RowLimitExceeded(trip)) => println!("{label:>12}: rows {trip}"),
        Err(EngineError::Cancelled(trip)) => println!("{label:>12}: cancelled {trip}"),
        Err(e) => println!("{label:>12}: error {e}"),
    };

    let timeout = ExecOptions::default()
        .with_limits(ResourceLimits::unlimited().with_timeout(Duration::from_millis(5)));
    show("timeout", db.query_with(big, &timeout));

    let rows =
        ExecOptions::default().with_limits(ResourceLimits::unlimited().with_max_rows(100_000));
    show("row limit", db.query_with(big, &rows));

    let mem = ExecOptions::default()
        .with_limits(ResourceLimits::unlimited().with_max_memory_bytes(1 << 20));
    show(
        "mem limit",
        db.query_with("select a.x, b.y from a, b", &mem),
    );

    let token = CancellationToken::new();
    let cancelled = ExecOptions::default().with_cancellation(token.clone());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        token.cancel();
    });
    show("cancel", db.query_with(big, &cancelled));
    canceller.join().expect("canceller");

    // The database is untouched after every trip.
    show(
        "afterwards",
        db.query_with("select count(*) from a", &ExecOptions::default()),
    );
}
