//! Shared infrastructure for the benchmark harness and the standalone
//! benches: workload construction, the three execution strategies of the
//! paper's evaluation, and timing helpers.
//!
//! The paper's hardware (a 2.8 GHz Pentium 4 running DB2 on 1 GB–2 GB
//! databases) is replaced by this repository's in-memory engine at reduced
//! scale factors with identical *ratios* between configurations, so that
//! the comparisons of Section 6 — original vs rewritten vs
//! annotation-aware, sweeps over `p`, `n`, and database size — retain their
//! shape. See EXPERIMENTS.md for the paper-vs-measured record.

use std::time::{Duration, Instant};

use conquer::tpch::{build_workload, BenchmarkQuery, Workload, WorkloadConfig};
use conquer::{
    consistent_answers, consistent_answers_annotated, consistent_answers_annotated_with,
    consistent_answers_with, parse_query, rewrite, ConstraintSet, Database, EngineError,
    ExecOptions, RewriteError, RewriteOptions, Rows,
};

/// The scale factor that stands in for the paper's 1 GB database. The
/// paper's 100 MB / 500 MB / 1 GB / 2 GB series keeps the same ×0.1 / ×0.5
/// / ×1 / ×2 ratios against this value.
pub const BASE_SF: f64 = 0.05;

/// How each query is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The original (non-rewritten) query: possible-answer semantics.
    Original,
    /// ConQuer's rewriting on the unannotated database.
    Rewritten,
    /// The annotation-aware rewriting of Section 5.
    Annotated,
}

impl Strategy {
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Original => "original",
            Strategy::Rewritten => "rewritten",
            Strategy::Annotated => "annotated",
        }
    }
}

/// Build the standard workload for one benchmark configuration.
pub fn workload(scale_factor: f64, p: f64, n: usize) -> Workload {
    build_workload(&WorkloadConfig {
        scale_factor,
        p,
        n,
        seed: 0xC09E_5EED,
        threads: num_threads(),
        annotate: true,
    })
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// Execute one query under one strategy, returning the result rows.
pub fn run_query(w: &Workload, q: &BenchmarkQuery, strategy: Strategy) -> Rows {
    match strategy {
        Strategy::Original => w.db.query(q.sql).expect("original query"),
        Strategy::Rewritten => consistent_answers(&w.db, q.sql, &w.sigma).expect("rewritten query"),
        Strategy::Annotated => {
            consistent_answers_annotated(&w.db, q.sql, &w.sigma).expect("annotated query")
        }
    }
}

/// Execute one query under one strategy with explicit engine options,
/// surfacing failures (including resource-limit trips) instead of
/// panicking.
pub fn try_run_query(
    w: &Workload,
    q: &BenchmarkQuery,
    strategy: Strategy,
    options: &ExecOptions,
) -> Result<Rows, RewriteError> {
    match strategy {
        Strategy::Original => w.db.query_with(q.sql, options).map_err(RewriteError::from),
        Strategy::Rewritten => consistent_answers_with(&w.db, q.sql, &w.sigma, options),
        Strategy::Annotated => consistent_answers_annotated_with(&w.db, q.sql, &w.sigma, options),
    }
}

/// Classify a query outcome for bench reports: `ok`, `timeout`,
/// `mem_exceeded`, `row_limit`, `cancelled`, or `error`.
pub fn run_status<T>(result: &Result<T, RewriteError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(RewriteError::Engine(e)) => match e {
            EngineError::Timeout(_) => "timeout",
            EngineError::MemoryExceeded(_) => "mem_exceeded",
            EngineError::RowLimitExceeded(_) => "row_limit",
            EngineError::Cancelled(_) => "cancelled",
            _ => "error",
        },
        Err(_) => "error",
    }
}

/// Median-of-`runs` wall-clock time for one query/strategy pair.
pub fn time_query(w: &Workload, q: &BenchmarkQuery, strategy: Strategy, runs: usize) -> Duration {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let rows = run_query(w, q, strategy);
        let dt = t0.elapsed();
        std::hint::black_box(rows.len());
        samples.push(dt);
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// [`time_query`] under explicit engine options. Returns the error of the
/// first failing run (the caller records the status and moves on).
pub fn time_query_with(
    w: &Workload,
    q: &BenchmarkQuery,
    strategy: Strategy,
    runs: usize,
    options: &ExecOptions,
) -> Result<Duration, RewriteError> {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let rows = try_run_query(w, q, strategy, options)?;
        let dt = t0.elapsed();
        std::hint::black_box(rows.len());
        samples.push(dt);
    }
    samples.sort();
    Ok(samples[samples.len() / 2])
}

/// Warm up once, run `samples` times, print and return the median wall
/// time — the workspace's stand-in for an external bench harness (the
/// `benches/` binaries are plain `fn main()`s over this).
pub fn bench_case<T>(group: &str, id: &str, samples: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f()); // warm-up
    let mut times = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{group}/{id}: median {} ms ({} samples)",
        ms(median),
        times.len()
    );
    median
}

/// One run of a query/strategy pair with pipeline spans captured:
/// `{"rows": N, "phases_us": {"parse": ..., "rewrite": ..., "execute": ...}}`.
pub fn phase_breakdown(w: &Workload, q: &BenchmarkQuery, strategy: Strategy) -> conquer_obs::Json {
    use conquer_obs::Json;
    let (rows, spans) = conquer_obs::capture(|| run_query(w, q, strategy));
    let phases: Vec<(String, Json)> = conquer_obs::phase_totals(&spans)
        .into_iter()
        .map(|(name, wall)| (name.to_string(), Json::UInt(wall.as_micros() as u64)))
        .collect();
    Json::obj([
        ("rows", Json::UInt(rows.len() as u64)),
        ("phases_us", Json::Obj(phases)),
    ])
}

/// The per-operator stats tree (`EXPLAIN ANALYZE` as JSON) for the plan a
/// strategy actually executes, under the given engine options (so a
/// parallel run's tree carries the per-operator `threads` fan-out).
pub fn operator_breakdown(
    w: &Workload,
    q: &BenchmarkQuery,
    strategy: Strategy,
    options: &ExecOptions,
) -> conquer_obs::Json {
    let query = match strategy {
        Strategy::Original => parse_query(q.sql).expect("benchmark query parses"),
        Strategy::Rewritten => rewritten_query(q, &w.sigma, false),
        Strategy::Annotated => rewritten_query(q, &w.sigma, true),
    };
    let (_, plan, stats) =
        w.db.execute_query_traced(&query, options)
            .expect("benchmark query executes");
    conquer::engine::stats_json(&plan, &stats)
}

/// Overhead of a rewriting relative to the original query, as the paper
/// computes it: `(t_r - t_o) / t_o`.
pub fn overhead(original: Duration, rewritten: Duration) -> f64 {
    (rewritten.as_secs_f64() - original.as_secs_f64()) / original.as_secs_f64().max(1e-12)
}

/// Parallel speedup: `t_serial / t_parallel`. Values below 1.0 mean the
/// parallel run was slower (expected on single-core hosts, where extra
/// threads only add coordination cost).
pub fn speedup(serial: Duration, parallel: Duration) -> f64 {
    serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12)
}

/// Pre-rewrite a benchmark query (for benches that want to time execution
/// without the rewriting step; rewriting itself is microseconds).
pub fn rewritten_query(
    q: &BenchmarkQuery,
    sigma: &ConstraintSet,
    annotated: bool,
) -> conquer::sql::Query {
    let parsed = parse_query(q.sql).expect("benchmark query parses");
    rewrite(
        &parsed,
        sigma,
        &RewriteOptions {
            annotated,
            ..Default::default()
        },
    )
    .expect("benchmark query rewrites")
}

/// Total tuples across the benchmark relations of a database.
pub fn total_tuples(db: &Database) -> usize {
    ["customer", "orders", "lineitem", "nation"]
        .iter()
        .map(|t| db.table(t).map(|t| t.len()).unwrap_or(0))
        .sum()
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Quantile over a **sorted** latency sample, with linear interpolation
/// between the two ranks a fractional index falls between (the "type 7"
/// estimator used by numpy and R). Rounding the fractional rank instead
/// would bias small samples badly — the p50 of two samples would be their
/// max. Returns 0 for an empty sample.
pub fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = q.clamp(0.0, 1.0) * (sorted_us.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted_us[lo];
    }
    let frac = rank - lo as f64;
    let interpolated = sorted_us[lo] as f64 + (sorted_us[hi] - sorted_us[lo]) as f64 * frac;
    interpolated.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_run_on_a_tiny_workload() {
        let w = workload(0.001, 0.05, 2);
        let q = conquer::tpch::Q6;
        let orig = run_query(&w, &q, Strategy::Original);
        let rew = run_query(&w, &q, Strategy::Rewritten);
        let ann = run_query(&w, &q, Strategy::Annotated);
        assert_eq!(orig.len(), 1);
        assert_eq!(rew.rows, ann.rows);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        assert_eq!(percentile(&[], 0.5), 0);
        // One sample: every quantile is that sample.
        assert_eq!(percentile(&[7], 0.0), 7);
        assert_eq!(percentile(&[7], 0.5), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        // Two samples: the median is their midpoint, not the max (the old
        // nearest-rank rounding returned 300 here).
        assert_eq!(percentile(&[100, 300], 0.5), 200);
        assert_eq!(percentile(&[100, 300], 0.25), 150);
        assert_eq!(percentile(&[100, 300], 1.0), 300);
        // Ten samples: exact ranks hit sample values, fractional ranks
        // interpolate.
        let sample: Vec<u64> = (1..=10).map(|i| i * 10).collect();
        assert_eq!(percentile(&sample, 0.0), 10);
        assert_eq!(percentile(&sample, 1.0), 100);
        assert_eq!(percentile(&sample, 0.5), 55); // rank 4.5 → (50+60)/2
        assert_eq!(percentile(&sample, 0.75), 78); // rank 6.75 → 70 + 0.75*10
        let big: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&big, 0.5), 51); // rank 49.5 → 50.5, rounds up
    }

    #[test]
    fn overhead_formula() {
        let o = Duration::from_millis(100);
        let r = Duration::from_millis(150);
        assert!((overhead(o, r) - 0.5).abs() < 1e-9);
    }
}
