//! The figure-regeneration harness: reprints every table and figure of the
//! paper's evaluation (Section 6) as text/markdown series, and writes a
//! machine-readable `BENCH_<fig>.json` report for each figure it runs.
//!
//! ```sh
//! cargo run -p conquer-bench --release --bin harness -- all
//! cargo run -p conquer-bench --release --bin harness -- fig12 --sf 0.02
//! cargo run -p conquer-bench --release --bin harness -- fig11 --json out.json --quiet
//! ```
//!
//! Subcommands: `fig10`, `fig11`, `fig12`, `fig13`, `fig14`, `baseline`,
//! `serve`, `plancost`, `opbench`, `idxbench`, `trace`, `recover`, `all`
//! (`all` runs the six figures; the rest are explicit-only). `idxbench`
//! measures what secondary indexes buy: point-lookup and key-self-join
//! throughput with the access-path planner index-aware vs index-blind
//! (`with_indexes(false)`, the pre-index plans), at `--sf` and 4×`--sf`
//! (the defaults land on SF 0.05 and 0.2), reporting lookups/sec,
//! join rows/sec, and the indexed/seqscan speedup per scale
//! (`BENCH_idxbench.json`). `opbench` is the per-operator throughput
//! microbenchmark: one query per executor kernel (filter, hash build,
//! hash probe, semi join, global and grouped aggregation), each timed
//! with the vectorized columnar kernels on and off, reporting rows/sec
//! over the driving table and the batch/row speedup
//! (`BENCH_opbench.json`). `recover` benchmarks the durable-storage crash-recovery
//! path: it loads the TPC-H workload into a WAL-backed database on a temp
//! dir, times a cold restart that replays the full WAL, checkpoints, and
//! times a second restart that loads from segments — writing WAL size and
//! both replay times to `BENCH_recover.json`. `trace "<sql>"`
//! runs one query against the standard workload with tracing on, prints
//! the captured span tree (morsel workers included), records it in the
//! process flight recorder, and writes `BENCH_trace.json` in the Chrome
//! trace-viewer format — load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>. `--strategy` picks the answering strategy
//! (default `rewritten`). `plancost` reports the planner's
//! estimated rewritten/original cost ratio per figure query and, with
//! `--cost-threshold-file <path>` (lines of `<query> <max_ratio>`), exits
//! nonzero when a ratio regresses past its checked-in threshold — the CI
//! plan-quality smoke.
//! The optional `--sf <factor>` overrides the base scale factor
//! standing in for the paper's 1 GB database (default 0.05), and
//! `--runs <n>` the median-of-n timing (default 3). `--json <path>`
//! redirects the report of a single-figure run (with `all`, each figure
//! keeps its default `BENCH_<fig>.json`); `--quiet` suppresses the
//! markdown tables. `--timeout-ms <N>` and `--mem-limit <bytes>` run every
//! query under those engine resource limits; a tripped query is recorded in
//! the report (`status: timeout|mem_exceeded|...`) instead of aborting the
//! sweep, and the harness exits nonzero after writing all reports.
//!
//! Reports carry, per query and strategy: the median wall time, a
//! `status` (`ok`, `timeout`, `mem_exceeded`, `row_limit`, `cancelled`,
//! `error`), the pipeline phase breakdown
//! (parse/analyze/rewrite/plan/optimize/execute, from `conquer-obs`
//! spans), the per-operator `EXPLAIN ANALYZE` tree, and a snapshot of the
//! global metrics registry.
//!
//! `--threads <N>` sets the engine's morsel-parallel fan-out for every
//! timed query (default: what the engine itself would pick —
//! `CONQUER_THREADS` or the host's available parallelism). When N > 1 each
//! query is additionally timed at `threads = 1`, and the report carries
//! `serial_us` and `speedup` (= serial / parallel) per strategy cell, so a
//! report documents what parallelism actually bought on the host that
//! produced it.
//!
//! `serve` drives a `conquer-serve` server with a closed-loop load
//! generator: `--concurrency <N>` worker connections (default 16) each run
//! every benchmark query under every available strategy `--rounds <R>`
//! times (default 3), timing each round trip client-side. With
//! `--serve-port <P>` it targets an already-running server on loopback;
//! without it, it spins up an in-process server over the standard
//! annotated workload. `--connections <N,M,...>` sweeps a trajectory of
//! total-open-connection counts: each point holds that many connections
//! open — `min(concurrency, point)` of them driving the closed loop, the
//! rest idle — so the report shows how the serving core behaves as
//! connection count grows past the worker pool. The report
//! (`BENCH_serve.json`) carries, per trajectory point, per-strategy
//! p50/p95/p99/mean latency, aggregate throughput, busy-retry counts, and
//! the post-warmup rewrite/plan-cache hit rate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use conquer::tpch::{all_queries, BenchmarkQuery, Workload, Q12, Q4, Q6};
use conquer::{analyze, parse_query, ExecOptions, ResourceLimits};
use conquer_bench::{
    ms, operator_breakdown, overhead, phase_breakdown, run_status, speedup, time_query_with,
    workload, Strategy, BASE_SF,
};
use conquer_obs::Json;

/// Set when any query fails or trips a limit; the harness still completes
/// the sweep and writes every report before exiting nonzero.
static FAILED: AtomicBool = AtomicBool::new(false);

const COMMANDS: [&str; 13] = [
    "fig10", "fig11", "fig12", "fig13", "fig14", "baseline", "serve", "plancost", "opbench",
    "idxbench", "trace", "recover", "all",
];

struct Args {
    command: String,
    sf: f64,
    runs: usize,
    json: Option<String>,
    quiet: bool,
    timeout_ms: Option<u64>,
    mem_limit: Option<u64>,
    threads: usize,
    /// `serve` mode: target an already-running server on this loopback port
    /// instead of starting one in-process.
    serve_port: Option<u16>,
    /// `serve` mode: number of closed-loop worker connections.
    concurrency: usize,
    /// `serve` mode: total-open-connection points for the trajectory sweep
    /// (comma list). Each point holds this many connections open —
    /// `min(concurrency, point)` of them driving the closed loop, the rest
    /// idle — so the report shows latency/throughput as a function of
    /// connection count. Empty means a single point at `concurrency`.
    connections: Vec<usize>,
    /// `serve` mode: rounds over the full query × strategy grid per worker.
    rounds: usize,
    /// `plancost` mode: path to a checked-in threshold file (`<query>
    /// <max_ratio>` lines); a rewritten/original cost ratio above its
    /// threshold fails the run.
    cost_threshold_file: Option<String>,
    /// `trace` mode: the SQL to trace (the positional after the command).
    sql: Option<String>,
    /// `trace` mode: which answering strategy to run the SQL under.
    strategy: Strategy,
}

impl Args {
    /// Engine options for every timed query, carrying any `--timeout-ms` /
    /// `--mem-limit` resource limits and the `--threads` fan-out.
    fn options(&self) -> ExecOptions {
        self.options_at(self.threads)
    }

    /// [`Args::options`] with an explicit thread count (the serial
    /// reference runs use `options_at(1)`).
    fn options_at(&self, threads: usize) -> ExecOptions {
        let mut limits = ResourceLimits::unlimited();
        if let Some(t) = self.timeout_ms {
            limits = limits.with_timeout(Duration::from_millis(t));
        }
        if let Some(bytes) = self.mem_limit {
            limits = limits.with_max_memory_bytes(bytes);
        }
        ExecOptions::default()
            .with_limits(limits)
            .with_threads(threads)
    }
}

/// Print unless `--quiet`.
macro_rules! say {
    ($args:expr, $($t:tt)*) => { if !$args.quiet { println!($($t)*); } };
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        sf: BASE_SF,
        runs: 3,
        json: None,
        quiet: false,
        timeout_ms: None,
        mem_limit: None,
        threads: ExecOptions::default().threads,
        serve_port: None,
        concurrency: 16,
        connections: Vec::new(),
        rounds: 3,
        cost_threshold_file: None,
        sql: None,
        strategy: Strategy::Rewritten,
    };
    let mut command_seen = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sf" => {
                args.sf = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--sf requires a number"));
            }
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs requires an integer"));
            }
            "--json" => {
                args.json = Some(it.next().unwrap_or_else(|| die("--json requires a path")));
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--timeout-ms requires an integer")),
                );
            }
            "--mem-limit" => {
                args.mem_limit = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--mem-limit requires a byte count")),
                );
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| die("--threads requires a positive integer"));
            }
            "--serve-port" => {
                args.serve_port = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--serve-port requires a port number")),
                );
            }
            "--concurrency" => {
                args.concurrency = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| die("--concurrency requires a positive integer"));
            }
            "--connections" => {
                let spec = it
                    .next()
                    .unwrap_or_else(|| die("--connections requires a comma list of counts"));
                args.connections = spec
                    .split(',')
                    .filter(|part| !part.is_empty())
                    .map(|part| {
                        part.parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .unwrap_or_else(|| die("--connections entries must be positive"))
                    })
                    .collect();
                if args.connections.is_empty() {
                    die("--connections requires a comma list of counts");
                }
            }
            "--rounds" => {
                args.rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| die("--rounds requires a positive integer"));
            }
            "--cost-threshold-file" => {
                args.cost_threshold_file = Some(
                    it.next()
                        .unwrap_or_else(|| die("--cost-threshold-file requires a path")),
                );
            }
            "--strategy" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--strategy requires original|rewritten|annotated"));
                args.strategy = match v.as_str() {
                    "original" => Strategy::Original,
                    "rewritten" => Strategy::Rewritten,
                    "annotated" => Strategy::Annotated,
                    _ => die("--strategy requires original|rewritten|annotated"),
                };
            }
            "--quiet" => args.quiet = true,
            tok if !tok.starts_with('-') => {
                if !command_seen {
                    if !COMMANDS.contains(&tok) {
                        die(&format!("unknown command {tok}"));
                    }
                    args.command = tok.to_string();
                    command_seen = true;
                } else if args.command == "trace" && args.sql.is_none() {
                    args.sql = Some(tok.to_string());
                } else {
                    die(&format!("unexpected argument {tok}"));
                }
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("harness: {msg}");
    eprintln!(
        "usage: harness [fig10|fig11|fig12|fig13|fig14|baseline|serve|plancost|opbench|idxbench|recover|all] \
         [--sf F] [--runs N] [--json PATH] [--quiet] \
         [--timeout-ms N] [--mem-limit BYTES] [--threads N] \
         [--serve-port P] [--concurrency N] [--connections N,M,...] [--rounds R] \
         [--cost-threshold-file PATH]\n       \
         harness trace \"<sql>\" [--strategy original|rewritten|annotated] \
         [--sf F] [--threads N] [--json PATH]"
    );
    std::process::exit(2)
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let commands: Vec<&str> = if args.command == "all" {
        vec!["fig10", "fig11", "fig12", "fig13", "fig14", "baseline"]
    } else {
        vec![args.command.as_str()]
    };
    for cmd in commands {
        let mut report = match cmd {
            "fig10" => fig10(&args),
            "fig11" => fig11(&args),
            "fig12" => fig12(&args),
            "fig13" => fig13(&args),
            "fig14" => fig14(&args),
            "baseline" => baseline(&args),
            "serve" => serve_cmd(&args),
            "plancost" => plancost(&args),
            "opbench" => opbench(&args),
            "idxbench" => idxbench(&args),
            "trace" => trace_cmd(&args),
            "recover" => recover_cmd(&args),
            _ => unreachable!("command validated in parse_args"),
        };
        report.push("metrics", conquer_obs::registry().snapshot_json());
        // --json redirects a single figure; `all` keeps the per-fig names.
        let path = match &args.json {
            Some(p) if args.command != "all" => p.clone(),
            _ => format!("BENCH_{cmd}.json"),
        };
        std::fs::write(&path, report.render_pretty())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    eprintln!("\n(total harness time: {:.1}s)", t0.elapsed().as_secs_f64());
    if FAILED.load(Ordering::Relaxed) {
        eprintln!("harness: some queries failed or tripped resource limits (see reports)");
        std::process::exit(1);
    }
}

/// The timing record for one (query, strategy) cell: status, median wall
/// time, result cardinality, phase totals, and the measured operator tree.
///
/// A query that errors or trips a resource limit yields a `status` /
/// `error` entry (and flags the harness for a nonzero exit) instead of
/// aborting the sweep; its reported time is zero and the per-phase /
/// per-operator breakdowns are skipped.
fn strategy_entry(
    w: &Workload,
    q: &BenchmarkQuery,
    strategy: Strategy,
    args: &Args,
) -> (Duration, Json) {
    let result = time_query_with(w, q, strategy, args.runs, &args.options());
    let status = run_status(&result);
    match result {
        Ok(median) => {
            let mut entry = phase_breakdown(w, q, strategy);
            entry.push("status", Json::from(status));
            entry.push("median_us", Json::UInt(median.as_micros() as u64));
            // With a parallel fan-out, also time the serial path so the
            // report records what the threads bought on this host.
            if args.threads > 1 {
                if let Ok(serial) = time_query_with(w, q, strategy, args.runs, &args.options_at(1))
                {
                    entry.push("serial_us", Json::UInt(serial.as_micros() as u64));
                    entry.push("speedup", Json::Float(speedup(serial, median)));
                }
            }
            entry.push(
                "operators",
                operator_breakdown(w, q, strategy, &args.options()),
            );
            (median, entry)
        }
        Err(e) => {
            FAILED.store(true, Ordering::Relaxed);
            eprintln!("harness: {} [{}] {status}: {e}", q.name(), strategy.label());
            let entry = Json::obj([
                ("status", Json::from(status)),
                ("error", Json::from(e.to_string())),
            ]);
            (Duration::ZERO, entry)
        }
    }
}

fn report_header(figure: &str, args: &Args) -> Json {
    Json::obj([
        ("figure", Json::from(figure)),
        ("sf", Json::Float(args.sf)),
        ("runs", Json::UInt(args.runs as u64)),
        ("threads", Json::UInt(args.threads as u64)),
    ])
}

/// Figure 10: characteristics of the benchmark queries.
fn fig10(args: &Args) -> Json {
    say!(args, "## Figure 10 — queries used in the experiments\n");
    say!(
        args,
        "| Query | Relations | Selectivity | ProjAttrs | AggrAttrs |"
    );
    say!(
        args,
        "|-------|-----------|-------------|-----------|-----------|"
    );
    let sigma = conquer::tpch::benchmark_constraints();
    let mut queries = Vec::new();
    for q in all_queries() {
        let tq = analyze(&parse_query(q.sql).unwrap(), &sigma).unwrap();
        say!(
            args,
            "| {} | {} | {} | {} | {} |",
            q.name(),
            tq.relations.len(),
            q.selectivity,
            tq.projection.len(),
            tq.aggregate_count(),
        );
        queries.push(Json::obj([
            ("query", Json::from(q.name())),
            ("relations", Json::UInt(tq.relations.len() as u64)),
            ("selectivity", Json::from(q.selectivity.to_string())),
            ("proj_attrs", Json::UInt(tq.projection.len() as u64)),
            ("aggr_attrs", Json::UInt(tq.aggregate_count() as u64)),
        ]));
    }
    say!(args, "");
    let mut report = report_header("fig10", args);
    report.push("queries", Json::Arr(queries));
    report
}

/// Figure 11: running times of all queries, original vs rewritten vs
/// annotation-aware, at the base size with p = 5%, n = 2.
fn fig11(args: &Args) -> Json {
    say!(
        args,
        "## Figure 11 — all queries, SF {} (stand-in for 1 GB), p = 5%, n = 2\n",
        args.sf
    );
    let w = workload(args.sf, 0.05, 2);
    say!(
        args,
        "| Query | original (ms) | rewritten (ms) | annotated (ms) | overhead rewritten | overhead annotated |"
    );
    say!(args, "|-------|--------------:|---------------:|---------------:|-------------------:|-------------------:|");
    let mut queries = Vec::new();
    for q in all_queries() {
        let (t_orig, e_orig) = strategy_entry(&w, &q, Strategy::Original, args);
        let (t_rew, e_rew) = strategy_entry(&w, &q, Strategy::Rewritten, args);
        let (t_ann, e_ann) = strategy_entry(&w, &q, Strategy::Annotated, args);
        say!(
            args,
            "| {} | {} | {} | {} | {:.2}x | {:.2}x |",
            q.name(),
            ms(t_orig),
            ms(t_rew),
            ms(t_ann),
            overhead(t_orig, t_rew),
            overhead(t_orig, t_ann),
        );
        queries.push(Json::obj([
            ("query", Json::from(q.name())),
            ("original", e_orig),
            ("rewritten", e_rew),
            ("annotated", e_ann),
            ("overhead_rewritten", Json::Float(overhead(t_orig, t_rew))),
            ("overhead_annotated", Json::Float(overhead(t_orig, t_ann))),
        ]));
    }
    say!(args, "");
    let mut report = report_header("fig11", args);
    report.push("p", Json::Float(0.05));
    report.push("n", Json::UInt(2));
    report.push("queries", Json::Arr(queries));
    report
}

/// Figure 12: Q6 while varying the inconsistency percentage p (n = 2).
fn fig12(args: &Args) -> Json {
    say!(args, "## Figure 12 — Q6 vs p (n = 2, SF {})\n", args.sf);
    say!(
        args,
        "| p (%) | original (ms) | rewritten (ms) | annotated (ms) | annotated overhead |"
    );
    say!(
        args,
        "|------:|--------------:|---------------:|---------------:|-------------------:|"
    );
    let mut series = Vec::new();
    for p in [0.0, 0.01, 0.05, 0.10, 0.20, 0.50] {
        let w = workload(args.sf, p, 2);
        let (t_orig, e_orig) = strategy_entry(&w, &Q6, Strategy::Original, args);
        let (t_rew, e_rew) = strategy_entry(&w, &Q6, Strategy::Rewritten, args);
        let (t_ann, e_ann) = strategy_entry(&w, &Q6, Strategy::Annotated, args);
        say!(
            args,
            "| {:>4.0} | {} | {} | {} | {:.2}x |",
            p * 100.0,
            ms(t_orig),
            ms(t_rew),
            ms(t_ann),
            overhead(t_orig, t_ann),
        );
        series.push(Json::obj([
            ("p", Json::Float(p)),
            ("original", e_orig),
            ("rewritten", e_rew),
            ("annotated", e_ann),
            ("overhead_annotated", Json::Float(overhead(t_orig, t_ann))),
        ]));
    }
    say!(args, "");
    let mut report = report_header("fig12", args);
    report.push("query", Json::from("Q6"));
    report.push("n", Json::UInt(2));
    report.push("series", Json::Arr(series));
    report
}

/// Figure 13: Q6 while varying n, the tuples per violated key (p = 10%).
fn fig13(args: &Args) -> Json {
    say!(args, "## Figure 13 — Q6 vs n (p = 10%, SF {})\n", args.sf);
    say!(
        args,
        "| n | original (ms) | rewritten (ms) | annotated (ms) |"
    );
    say!(
        args,
        "|--:|--------------:|---------------:|---------------:|"
    );
    let mut series = Vec::new();
    for n in [2usize, 5, 10, 25, 50] {
        let w = workload(args.sf, 0.10, n);
        let (t_orig, e_orig) = strategy_entry(&w, &Q6, Strategy::Original, args);
        let (t_rew, e_rew) = strategy_entry(&w, &Q6, Strategy::Rewritten, args);
        let (t_ann, e_ann) = strategy_entry(&w, &Q6, Strategy::Annotated, args);
        say!(
            args,
            "| {n} | {} | {} | {} |",
            ms(t_orig),
            ms(t_rew),
            ms(t_ann)
        );
        series.push(Json::obj([
            ("n", Json::UInt(n as u64)),
            ("original", e_orig),
            ("rewritten", e_rew),
            ("annotated", e_ann),
        ]));
    }
    say!(args, "");
    let mut report = report_header("fig13", args);
    report.push("query", Json::from("Q6"));
    report.push("p", Json::Float(0.10));
    report.push("series", Json::Arr(series));
    report
}

/// Figure 14: scalability across database sizes with a constant number of
/// inconsistent tuples (the paper's 100 MB..2 GB at p = 50/10/5/2.5 %).
fn fig14(args: &Args) -> Json {
    say!(
        args,
        "## Figure 14 — scalability, constant inconsistent tuples (n = 2)\n"
    );
    say!(args, "annotation-aware rewritings of Q4, Q6, Q12\n");
    say!(
        args,
        "| size (×1 GB stand-in) | p (%) | tuples | Q4 (ms) | Q6 (ms) | Q12 (ms) |"
    );
    say!(
        args,
        "|----------------------:|------:|-------:|--------:|--------:|---------:|"
    );
    let mut series = Vec::new();
    // Same ratios as the paper: 0.1x, 0.5x, 1x, 2x of the base size with
    // p chosen to hold p * size constant.
    for (ratio, p) in [(0.1, 0.50), (0.5, 0.10), (1.0, 0.05), (2.0, 0.025)] {
        let sf = args.sf * ratio;
        let w = workload(sf, p, 2);
        let tuples = conquer_bench::total_tuples(&w.db);
        let (t4, e4) = strategy_entry(&w, &Q4, Strategy::Annotated, args);
        let (t6, e6) = strategy_entry(&w, &Q6, Strategy::Annotated, args);
        let (t12, e12) = strategy_entry(&w, &Q12, Strategy::Annotated, args);
        say!(
            args,
            "| {ratio} | {:.1} | {tuples} | {} | {} | {} |",
            p * 100.0,
            ms(t4),
            ms(t6),
            ms(t12),
        );
        series.push(Json::obj([
            ("ratio", Json::Float(ratio)),
            ("p", Json::Float(p)),
            ("tuples", Json::UInt(tuples as u64)),
            ("Q4", e4),
            ("Q6", e6),
            ("Q12", e12),
        ]));
    }
    say!(args, "");
    let mut report = report_header("fig14", args);
    report.push("series", Json::Arr(series));
    report
}

/// Related-work scale contrast (Section 7): repair enumeration — the
/// approach rewriting replaces — explodes even at toy sizes, while the
/// rewriting runs on millions of tuples.
fn baseline(args: &Args) -> Json {
    use conquer::{consistent_answers_oracle, ConstraintSet, Database};
    say!(
        args,
        "## Baseline — repair enumeration vs rewriting (Section 7 contrast)\n"
    );
    say!(
        args,
        "| conflicting keys | repairs | oracle (ms) | rewriting (ms) |"
    );
    say!(
        args,
        "|-----------------:|--------:|------------:|---------------:|"
    );
    let mut series = Vec::new();
    for keys in [4usize, 8, 12, 16] {
        let db = Database::new();
        let mut script =
            String::from("create table t (k integer, v integer);\ninsert into t values ");
        let mut vals = Vec::new();
        for k in 0..200 {
            vals.push(format!("({k}, {})", k % 7));
            if k < keys as i64 {
                vals.push(format!("({k}, {})", (k + 1) % 7));
            }
        }
        script.push_str(&vals.join(", "));
        db.run_script(&script).unwrap();
        let sigma = ConstraintSet::new().with_key("t", ["k"]);
        let q = "select t.k from t where t.v > 2";

        let t0 = Instant::now();
        let oracle = consistent_answers_oracle(&db, q, &sigma).unwrap();
        let t_oracle = t0.elapsed();
        let t0 = Instant::now();
        let rewritten = conquer::consistent_answers(&db, q, &sigma).unwrap();
        let t_rew = t0.elapsed();
        assert_eq!(oracle.len(), rewritten.len());
        say!(
            args,
            "| {keys} | {} | {} | {} |",
            1u128 << keys,
            ms(t_oracle),
            ms(t_rew),
        );
        series.push(Json::obj([
            ("conflicting_keys", Json::UInt(keys as u64)),
            ("repairs", Json::UInt(1u64 << keys)),
            ("oracle_us", Json::UInt(t_oracle.as_micros() as u64)),
            ("rewrite_us", Json::UInt(t_rew.as_micros() as u64)),
        ]));
    }
    say!(
        args,
        "\n(each conflicting key doubles the repair count; the rewriting is flat)"
    );
    let mut report = report_header("baseline", args);
    report.push("series", Json::Arr(series));
    report
}

/// `plancost` — plan-quality sweep: for every figure query, plan the
/// original and the ConQuer rewriting against the standard workload and
/// report the estimated plan-cost ratio (rewritten / original) under the
/// cost model the planner itself optimizes with. The ratio is the planner's
/// own view of the rewriting overhead the paper bounds at roughly 2×
/// measured wall time; a plan-quality regression (lost pushdown, bad build
/// side, worse join order) moves this ratio even when a fast machine hides
/// it from timings. With `--cost-threshold-file`, any query whose ratio
/// exceeds its checked-in threshold fails the run (the CI plan-quality
/// smoke job).
fn plancost(args: &Args) -> Json {
    use conquer_bench::rewritten_query;

    say!(
        args,
        "## Plan cost — rewritten vs original, estimated (SF {}, p = 5%, n = 2)\n",
        args.sf
    );
    let thresholds = args.cost_threshold_file.as_deref().map(load_thresholds);
    let w = workload(args.sf, 0.05, 2);
    // Plan with CTEs inlined: a materialized CTE is built at plan time and
    // appears in the final plan only as a scan of its result, which would
    // hide the rewriting's real work from the cost model. Inlining keeps
    // every join and filter of the rewriting inside one costed tree.
    let mut options = args.options();
    options.materialize_ctes = false;
    let est = conquer::engine::Estimator::from_db(&w.db);
    say!(
        args,
        "| Query | original cost | rewritten cost | ratio | threshold | status |"
    );
    say!(
        args,
        "|-------|--------------:|---------------:|------:|----------:|--------|"
    );
    let mut queries = Vec::new();
    for q in all_queries() {
        let threshold = thresholds.as_ref().and_then(|t| t.get(&q.name()).copied());
        let costs = parse_query(q.sql)
            .map_err(|e| e.to_string())
            .and_then(|original| {
                let plan_o = w.db.plan(&original, &options).map_err(|e| e.to_string())?;
                let rewritten = rewritten_query(&q, &w.sigma, false);
                let plan_r = w.db.plan(&rewritten, &options).map_err(|e| e.to_string())?;
                Ok((est.cost(&plan_o), est.cost(&plan_r)))
            });
        let mut entry = Json::obj([("query", Json::from(q.name()))]);
        match costs {
            Ok((cost_o, cost_r)) => {
                let ratio = cost_r / cost_o.max(1.0);
                let status = match threshold {
                    Some(t) if ratio > t => "cost_regression",
                    _ => "ok",
                };
                if status != "ok" {
                    FAILED.store(true, Ordering::Relaxed);
                    eprintln!(
                        "harness: {} plan-cost ratio {ratio:.2} exceeds threshold {:.2}",
                        q.name(),
                        threshold.unwrap_or(f64::INFINITY),
                    );
                }
                say!(
                    args,
                    "| {} | {cost_o:.0} | {cost_r:.0} | {ratio:.2}x | {} | {status} |",
                    q.name(),
                    threshold.map_or("-".to_string(), |t| format!("{t:.2}x")),
                );
                entry.push("status", Json::from(status));
                entry.push("cost_original", Json::Float(cost_o));
                entry.push("cost_rewritten", Json::Float(cost_r));
                entry.push("ratio", Json::Float(ratio));
                if let Some(t) = threshold {
                    entry.push("threshold", Json::Float(t));
                }
            }
            Err(e) => {
                FAILED.store(true, Ordering::Relaxed);
                eprintln!("harness: {} plancost error: {e}", q.name());
                say!(args, "| {} | - | - | - | - | error |", q.name());
                entry.push("status", Json::from("error"));
                entry.push("error", Json::from(e));
            }
        }
        queries.push(entry);
    }
    say!(args, "");
    let mut report = report_header("plancost", args);
    report.push("p", Json::Float(0.05));
    report.push("n", Json::UInt(2));
    if let Some(path) = &args.cost_threshold_file {
        report.push("threshold_file", Json::from(path.clone()));
    }
    report.push("queries", Json::Arr(queries));
    report
}

/// Parse a threshold file: `<query> <max_ratio>` per line, `#` comments
/// and blank lines ignored.
fn load_thresholds(path: &str) -> std::collections::HashMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read threshold file {path}: {e}")));
    let mut out = std::collections::HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next().and_then(|v| v.parse().ok())) {
            (Some(name), Some(ratio)) => {
                out.insert(name.to_string(), ratio);
            }
            _ => die(&format!(
                "{path}:{}: expected `<query> <max_ratio>`, got `{line}`",
                lineno + 1
            )),
        }
    }
    out
}

/// `opbench` — per-operator throughput microbenchmark. Each cell isolates
/// one executor kernel with a query shaped so that operator dominates,
/// and times it with the columnar kernels off (`row`, the row-at-a-time
/// reference path) and on (`batch`). Rows/sec is over the driving table —
/// the input the operator consumes — so the two modes are compared on the
/// same denominator. Outer joins pin the build side (the engine only
/// swaps inner joins): `tiny LEFT JOIN big` isolates the build of `big`,
/// `big LEFT JOIN tiny` the probe over `big`.
fn opbench(args: &Args) -> Json {
    struct OpSpec {
        op: &'static str,
        driving: &'static str,
        sql: &'static str,
    }
    const OPS: &[OpSpec] = &[
        OpSpec {
            op: "filter",
            driving: "lineitem",
            sql: "select l_orderkey from lineitem l \
                  where l_quantity > 25 and l_discount > 0.02",
        },
        OpSpec {
            op: "filter.text",
            driving: "orders",
            sql: "select o_orderkey from orders o where o_orderstatus = 'F'",
        },
        OpSpec {
            op: "hash_build",
            driving: "lineitem",
            sql: "select o.o_orderkey from orders o \
                  left join lineitem l on o.o_orderkey = l.l_orderkey",
        },
        OpSpec {
            op: "hash_probe",
            driving: "lineitem",
            sql: "select l.l_orderkey from lineitem l \
                  left join orders o on l.l_orderkey = o.o_orderkey",
        },
        OpSpec {
            op: "semi_join",
            driving: "orders",
            sql: "select o.o_orderkey from orders o where exists \
                  (select l.l_orderkey from lineitem l where l.l_orderkey = o.o_orderkey)",
        },
        OpSpec {
            op: "aggregate.global",
            driving: "lineitem",
            sql: "select count(*), sum(l_extendedprice), avg(l_discount), \
                  min(l_quantity), max(l_quantity) from lineitem l",
        },
        OpSpec {
            op: "aggregate.group",
            driving: "lineitem",
            sql: "select l_orderkey, count(*), sum(l_quantity) from lineitem l \
                  group by l_orderkey",
        },
    ];

    say!(
        args,
        "## Per-operator throughput — row vs batch (SF {}, threads {}, median of {})\n",
        args.sf,
        args.threads,
        args.runs
    );
    let w = workload(args.sf, 0.05, 2);
    say!(
        args,
        "| Operator | rows | row | batch | row rows/s | batch rows/s | speedup |"
    );
    say!(
        args,
        "|----------|-----:|----:|------:|-----------:|-------------:|--------:|"
    );

    let time_mode = |sql: &str, columnar: bool| -> Result<Duration, String> {
        let options = args.options().with_columnar(columnar);
        // Warm-up run: populates the scan cache and plan-level caches so
        // the timed runs measure execution, not first-touch setup.
        w.db.query_with(sql, &options).map_err(|e| e.to_string())?;
        let mut times = Vec::with_capacity(args.runs);
        for _ in 0..args.runs {
            let t0 = Instant::now();
            w.db.query_with(sql, &options).map_err(|e| e.to_string())?;
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        Ok(times[times.len() / 2])
    };

    let mut ops = Vec::new();
    for spec in OPS {
        let rows = w.db.table(spec.driving).map_or(0, |t| t.len());
        let mut entry = Json::obj([
            ("op", Json::from(spec.op)),
            ("driving_table", Json::from(spec.driving)),
            ("driving_rows", Json::UInt(rows as u64)),
            (
                "sql",
                Json::from(spec.sql.split_whitespace().collect::<Vec<_>>().join(" ")),
            ),
        ]);
        match (time_mode(spec.sql, false), time_mode(spec.sql, true)) {
            (Ok(t_row), Ok(t_batch)) => {
                let rps = |t: Duration| rows as f64 / t.as_secs_f64().max(1e-9);
                say!(
                    args,
                    "| {} | {rows} | {} | {} | {:.0} | {:.0} | {:.2}x |",
                    spec.op,
                    ms(t_row),
                    ms(t_batch),
                    rps(t_row),
                    rps(t_batch),
                    speedup(t_row, t_batch),
                );
                entry.push("status", Json::from("ok"));
                entry.push("row_us", Json::UInt(t_row.as_micros() as u64));
                entry.push("batch_us", Json::UInt(t_batch.as_micros() as u64));
                entry.push("row_rows_per_sec", Json::Float(rps(t_row)));
                entry.push("batch_rows_per_sec", Json::Float(rps(t_batch)));
                entry.push("speedup", Json::Float(speedup(t_row, t_batch)));
            }
            (row_r, batch_r) => {
                let e = row_r.err().or(batch_r.err()).unwrap_or_default();
                FAILED.store(true, Ordering::Relaxed);
                eprintln!("harness: opbench {} error: {e}", spec.op);
                say!(args, "| {} | {rows} | - | - | - | - | error |", spec.op);
                entry.push("status", Json::from("error"));
                entry.push("error", Json::from(e));
            }
        }
        ops.push(entry);
    }
    say!(args, "");
    let mut report = report_header("opbench", args);
    report.push("operators", Json::Arr(ops));
    report
}

/// `idxbench` — what secondary indexes buy. Two access-path-sensitive
/// shapes over the standard workload's `orders` table (whose conflict
/// group key `o_orderkey` gets an auto-declared index): a batch of keyed
/// point lookups and the key self-join the ConQuer rewriting is built
/// from. Each is timed with the planner index-aware (default options)
/// and index-blind (`with_indexes(false)`, exactly the pre-index plans),
/// at `--sf` and 4×`--sf` — the defaults land on SF 0.05 and 0.2, the
/// scales the index acceptance criteria are stated at. Point lookups are
/// timed in batches of 64 because a single indexed probe is microseconds
/// — too close to clock resolution to compare honestly.
fn idxbench(args: &Args) -> Json {
    const LOOKUPS_PER_RUN: usize = 64;
    const JOIN_SQL: &str = "select a.o_orderkey from orders a, orders b \
                            where a.o_orderkey = b.o_orderkey \
                            and a.o_totalprice < b.o_totalprice";

    say!(
        args,
        "## Index access paths — indexed vs seqscan (threads {}, median of {})\n",
        args.threads,
        args.runs
    );
    let indexed = args.options();
    let blind = args.options().with_indexes(false);
    let mut scales = Vec::new();
    for sf in [args.sf, args.sf * 4.0] {
        let w = workload(sf, 0.05, 2);
        let orders_rows = w.db.table("orders").map_or(0, |t| t.len());
        // Sample keys evenly across the whole key range so the lookup
        // batch touches many chunks, not one hot spot.
        let keys: Vec<i64> = match w.db.query_with("select o_orderkey from orders o", &blind) {
            Ok(rows) => {
                let all: Vec<i64> = rows
                    .rows
                    .iter()
                    .filter_map(|r| r[0].to_string().parse().ok())
                    .collect();
                (0..LOOKUPS_PER_RUN)
                    .filter_map(|i| all.get(i * all.len() / LOOKUPS_PER_RUN).copied())
                    .collect()
            }
            Err(e) => die(&format!("idxbench: cannot enumerate orders keys: {e}")),
        };
        let lookup_sqls: Vec<String> = keys
            .iter()
            .map(|k| format!("select o_totalprice from orders o where o_orderkey = {k}"))
            .collect();

        let time_batch = |sqls: &[String], options: &ExecOptions| -> Result<Duration, String> {
            // Warm-up pass: scan cache, plan caches, and the lazy index
            // build all land here, so the timed runs measure probes.
            for sql in sqls {
                w.db.query_with(sql, options).map_err(|e| e.to_string())?;
            }
            let mut times = Vec::with_capacity(args.runs);
            for _ in 0..args.runs {
                let t0 = Instant::now();
                for sql in sqls {
                    w.db.query_with(sql, options).map_err(|e| e.to_string())?;
                }
                times.push(t0.elapsed());
            }
            times.sort_unstable();
            Ok(times[times.len() / 2])
        };
        let uses_index = |sql: &str| {
            w.db.explain_with(sql, &indexed)
                .map(|plan| plan.contains("access=index"))
                .unwrap_or(false)
        };

        say!(args, "### SF {sf} ({orders_rows} orders rows)\n");
        say!(
            args,
            "| Op | seqscan | indexed | seqscan unit/s | indexed unit/s | speedup | indexed plan |"
        );
        say!(
            args,
            "|----|--------:|--------:|---------------:|---------------:|--------:|--------------|"
        );
        let mut ops = Vec::new();
        let join_sqls = [JOIN_SQL.to_string()];
        let cells: [(&str, &[String], usize); 2] = [
            ("point_lookup", &lookup_sqls, keys.len()),
            ("key_self_join", &join_sqls, orders_rows),
        ];
        for (op, sqls, units) in cells {
            let mut entry = Json::obj([
                ("op", Json::from(op)),
                ("units_per_run", Json::UInt(units as u64)),
            ]);
            let planned = sqls.first().is_some_and(|sql| uses_index(sql));
            match (time_batch(sqls, &blind), time_batch(sqls, &indexed)) {
                (Ok(t_seq), Ok(t_idx)) => {
                    let ups = |t: Duration| units as f64 / t.as_secs_f64().max(1e-9);
                    say!(
                        args,
                        "| {op} | {} | {} | {:.0} | {:.0} | {:.2}x | {} |",
                        ms(t_seq),
                        ms(t_idx),
                        ups(t_seq),
                        ups(t_idx),
                        speedup(t_seq, t_idx),
                        if planned { "access=index" } else { "seqscan" },
                    );
                    entry.push("status", Json::from("ok"));
                    entry.push("seqscan_us", Json::UInt(t_seq.as_micros() as u64));
                    entry.push("indexed_us", Json::UInt(t_idx.as_micros() as u64));
                    entry.push("seqscan_units_per_sec", Json::Float(ups(t_seq)));
                    entry.push("indexed_units_per_sec", Json::Float(ups(t_idx)));
                    entry.push("speedup", Json::Float(speedup(t_seq, t_idx)));
                    entry.push("indexed_plan_uses_index", Json::Bool(planned));
                }
                (seq_r, idx_r) => {
                    let e = seq_r.err().or(idx_r.err()).unwrap_or_default();
                    FAILED.store(true, Ordering::Relaxed);
                    eprintln!("harness: idxbench {op} error: {e}");
                    say!(args, "| {op} | - | - | - | - | - | error |");
                    entry.push("status", Json::from("error"));
                    entry.push("error", Json::from(e));
                }
            }
            ops.push(entry);
        }
        say!(args, "");
        scales.push(Json::obj([
            ("sf", Json::Float(sf)),
            ("orders_rows", Json::UInt(orders_rows as u64)),
            ("lookups_per_run", Json::UInt(LOOKUPS_PER_RUN as u64)),
            ("ops", Json::Arr(ops)),
        ]));
    }
    let mut report = report_header("idxbench", args);
    report.push("scales", Json::Arr(scales));
    report
}

/// `trace` — run one SQL statement against the standard workload with
/// tracing on and export the span tree (all threads) as a Chrome
/// trace-viewer document.
///
/// The report written by `main` (`BENCH_trace.json`, or `--json`) IS the
/// Chrome document: `traceEvents` carries one complete (`ph: "X"`) event
/// per span, `ts`/`dur` in microseconds since the process trace epoch,
/// `tid` the span's process-unique thread tag — so morsel workers land on
/// their own rows in the viewer. The query is also recorded in the
/// process-wide flight recorder (session 0), same as a served query.
fn trace_cmd(args: &Args) -> Json {
    use conquer_obs::{flight_recorder, QueryTrace, TraceContext};

    let sql = args
        .sql
        .clone()
        .unwrap_or_else(|| die("trace requires a SQL string: harness trace \"<sql>\""));
    let w = workload(args.sf, 0.05, 2);
    let ctx = TraceContext::new();
    let options = args.options().with_trace(ctx.clone());
    let start_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let started = Instant::now();
    let result = {
        // Install for the whole pipeline so parse/rewrite spans (which run
        // before the engine sees `options.trace`) are captured too.
        let _guard = ctx.install();
        match args.strategy {
            Strategy::Original => {
                w.db.query_with(&sql, &options)
                    .map_err(conquer::RewriteError::from)
            }
            Strategy::Rewritten => {
                conquer::consistent_answers_with(&w.db, &sql, &w.sigma, &options)
            }
            Strategy::Annotated => {
                conquer::consistent_answers_annotated_with(&w.db, &sql, &w.sigma, &options)
            }
        }
    };
    let elapsed_us = started.elapsed().as_micros() as u64;
    let spans = ctx.take_records();
    let status = run_status(&result);
    if result.is_err() {
        FAILED.store(true, Ordering::Relaxed);
    }
    let (rows_out, error) = match &result {
        Ok(rows) => (rows.rows.len() as u64, None),
        Err(e) => {
            eprintln!("harness: trace [{}] {status}: {e}", args.strategy.label());
            (0, Some(e.to_string()))
        }
    };
    let worker_spans = spans.iter().filter(|s| s.name == "worker").count() as u64;

    say!(
        args,
        "## trace — [{}] {status}, {elapsed_us} µs, {rows_out} rows, {} spans \
         ({worker_spans} workers)\n",
        args.strategy.label(),
        spans.len(),
    );
    say!(args, "    {sql}\n");
    for s in &spans {
        say!(
            args,
            "{:indent$}{} {} µs (thread {})",
            "",
            s.name,
            s.wall.as_micros(),
            s.thread,
            indent = 2 * s.depth,
        );
    }
    say!(args, "");

    flight_recorder().record(QueryTrace {
        query_id: ctx.id().value(),
        session: 0,
        sql_hash: conquer_obs::sql_hash(&sql),
        sql: conquer_obs::sql_snippet(&sql),
        strategy: args.strategy.label(),
        status,
        error: error.clone(),
        cached: false,
        elapsed_us,
        rows_out,
        rows_in: 0,
        est_rows: None,
        threads: options.threads,
        worker_spans,
        start_unix_ms,
        trip: None,
        spans: spans.clone(),
    });

    let events = spans.iter().map(|s| {
        Json::obj([
            ("name", Json::from(s.name)),
            ("cat", Json::from("span")),
            ("ph", Json::from("X")),
            ("ts", Json::UInt(s.start.as_micros() as u64)),
            ("dur", Json::UInt(s.wall.as_micros() as u64)),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(s.thread)),
            ("args", s.to_json()),
        ])
    });
    let mut other = Json::obj([
        ("sql", Json::from(sql)),
        ("strategy", Json::from(args.strategy.label())),
        ("status", Json::from(status)),
        ("query_id", Json::UInt(ctx.id().value())),
        ("elapsed_us", Json::UInt(elapsed_us)),
        ("rows_out", Json::UInt(rows_out)),
        ("worker_spans", Json::UInt(worker_spans)),
        ("start_unix_ms", Json::UInt(start_unix_ms)),
        ("epoch_unix_ms", Json::UInt(conquer_obs::epoch_unix_ms())),
    ]);
    if let Some(e) = error {
        other.push("error", Json::from(e));
    }
    Json::obj([
        ("traceEvents", Json::arr(events)),
        ("displayTimeUnit", Json::from("ms")),
        ("otherData", other),
    ])
}

fn wire_strategy(s: Strategy) -> conquer_serve::Strategy {
    match s {
        Strategy::Original => conquer_serve::Strategy::Original,
        Strategy::Rewritten => conquer_serve::Strategy::Rewritten,
        Strategy::Annotated => conquer_serve::Strategy::Annotated,
    }
}

/// Read `stats.cache.{hits,misses}` from a server stats snapshot.
fn cache_counters(stats: &Json) -> (f64, f64) {
    let read = |name: &str| {
        stats
            .get("cache")
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    (read("hits"), read("misses"))
}

/// `serve` — closed-loop load generation against a `conquer-serve` server.
///
/// Each of `--concurrency` worker connections runs the full benchmark
/// query × strategy grid `--rounds` times, timing every round trip
/// client-side; `busy` rejections are retried (and counted), anything else
/// is an error. A single warmup pass populates the server's rewrite/plan
/// cache and discovers which strategies the target actually supports (an
/// external unannotated server rejects `annotated`), so the closed loop
/// only measures what the server can answer.
fn serve_cmd(args: &Args) -> Json {
    use conquer_serve::{serve, Client, ServerConfig};

    // Trajectory points: total open connections per sweep step. Each point
    // keeps that many connections open — `min(concurrency, point)` driving
    // the closed loop, the rest idle — so the report captures how latency
    // and throughput move with connection count, not just one operating
    // point.
    let points: Vec<usize> = if args.connections.is_empty() {
        vec![args.concurrency]
    } else {
        args.connections.clone()
    };
    let max_point = points.iter().copied().max().unwrap_or(args.concurrency);

    // Target: an external server via --serve-port, or an in-process one
    // over the standard annotated workload.
    let (addr, server) = match args.serve_port {
        Some(port) => {
            let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
            (addr, None)
        }
        None => {
            let w = workload(args.sf, 0.05, 2);
            let handle = serve(
                std::sync::Arc::new(w.db),
                w.sigma,
                ServerConfig {
                    max_sessions: max_point.max(args.concurrency) + 8,
                    max_concurrent: args.concurrency,
                    ..ServerConfig::default()
                },
            )
            .unwrap_or_else(|e| die(&format!("cannot start in-process server: {e}")));
            (handle.addr(), Some(handle))
        }
    };
    say!(
        args,
        "## serve — closed loop, {} active workers × {} rounds against {addr}, \
         connection axis {points:?}\n",
        args.concurrency,
        args.rounds
    );

    const STRATEGIES: [Strategy; 3] =
        [Strategy::Original, Strategy::Rewritten, Strategy::Annotated];
    let queries = all_queries();
    let mut warm =
        Client::connect(addr).unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));

    // Warmup: populate the cache, drop unsupported (query, strategy) pairs.
    let mut pairs: Vec<(&BenchmarkQuery, Strategy)> = Vec::new();
    let mut skipped = Vec::new();
    for &strategy in &STRATEGIES {
        for q in &queries {
            match warm.query_with(q.sql, Some(wire_strategy(strategy))) {
                Ok(_) => pairs.push((q, strategy)),
                Err(e) => {
                    say!(args, "(skipping {} [{}]: {e})", q.name(), strategy.label());
                    skipped.push(Json::obj([
                        ("query", Json::from(q.name())),
                        ("strategy", Json::from(strategy.label())),
                        ("error", Json::from(e.to_string())),
                    ]));
                }
            }
        }
    }
    if pairs.is_empty() {
        die("the server answered no benchmark query under any strategy");
    }
    // One sweep step per connection point: open the idle connections, run
    // the closed loop, report, tear the idle connections back down.
    let mut trajectory = Vec::new();
    for &point in &points {
        let active = point.min(args.concurrency);
        let idle_count = point - active;
        say!(
            args,
            "### {point} connections ({active} active, {idle_count} idle)\n"
        );
        // The idle connections cost the server registration + readiness
        // sweeping — exactly the pressure this axis is meant to measure.
        let mut idle = Vec::new();
        for i in 0..idle_count {
            match Client::connect(addr) {
                Ok(c) => idle.push(c),
                Err(e) => die(&format!("idle connection {i} of {idle_count}: {e}")),
            }
        }
        let (hits0, misses0) = cache_counters(&warm.stats().unwrap_or(Json::Null));
        let t_loop = Instant::now();
        let worker_results = serve_point(addr, &pairs, args.rounds, active);
        let wall = t_loop.elapsed();
        for client in idle {
            let _ = client.quit();
        }

        let mut busy_total = 0u64;
        let mut all_samples: Vec<(Strategy, u64)> = Vec::new();
        for (samples, busy, errors) in worker_results {
            busy_total += busy;
            all_samples.extend(samples);
            for e in errors {
                FAILED.store(true, Ordering::Relaxed);
                eprintln!("harness: serve worker error: {e}");
            }
        }

        // Per-point cache delta: everything after warmup should be a hit.
        let (hits1, misses1) = cache_counters(&warm.stats().unwrap_or(Json::Null));
        let (dh, dm) = (hits1 - hits0, misses1 - misses0);
        let hit_rate = if dh + dm > 0.0 { dh / (dh + dm) } else { 0.0 };

        say!(
            args,
            "| Strategy | queries | p50 (ms) | p95 (ms) | p99 (ms) | mean (ms) |"
        );
        say!(
            args,
            "|----------|--------:|---------:|---------:|---------:|----------:|"
        );
        let mut strategy_reports = Vec::new();
        for &strategy in &STRATEGIES {
            let mut lat: Vec<u64> = all_samples
                .iter()
                .filter(|(s, _)| *s == strategy)
                .map(|&(_, us)| us)
                .collect();
            if lat.is_empty() {
                continue;
            }
            lat.sort_unstable();
            let (p50, p95, p99) = (
                conquer_bench::percentile(&lat, 0.50),
                conquer_bench::percentile(&lat, 0.95),
                conquer_bench::percentile(&lat, 0.99),
            );
            let mean = lat.iter().sum::<u64>() / lat.len() as u64;
            say!(
                args,
                "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |",
                strategy.label(),
                lat.len(),
                p50 as f64 / 1e3,
                p95 as f64 / 1e3,
                p99 as f64 / 1e3,
                mean as f64 / 1e3,
            );
            strategy_reports.push(Json::obj([
                ("strategy", Json::from(strategy.label())),
                ("count", Json::UInt(lat.len() as u64)),
                ("p50_us", Json::UInt(p50)),
                ("p95_us", Json::UInt(p95)),
                ("p99_us", Json::UInt(p99)),
                ("mean_us", Json::UInt(mean)),
            ]));
        }
        let throughput = all_samples.len() as f64 / wall.as_secs_f64().max(1e-9);
        say!(
            args,
            "\nthroughput: {throughput:.0} queries/s, busy retries: {busy_total}, \
             post-warmup cache hit rate: {:.1}%\n",
            hit_rate * 100.0
        );

        trajectory.push(Json::obj([
            ("connections", Json::UInt(point as u64)),
            ("active", Json::UInt(active as u64)),
            ("idle", Json::UInt(idle_count as u64)),
            ("strategies", Json::Arr(strategy_reports)),
            (
                "totals",
                Json::obj([
                    ("queries", Json::UInt(all_samples.len() as u64)),
                    ("busy_retries", Json::UInt(busy_total)),
                    ("wall_ms", Json::Float(wall.as_secs_f64() * 1e3)),
                    ("throughput_qps", Json::Float(throughput)),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("post_warmup_hit_rate", Json::Float(hit_rate)),
                    ("hits", Json::Float(dh)),
                    ("misses", Json::Float(dm)),
                ]),
            ),
        ]));
    }

    let _ = warm.quit();
    if let Some(handle) = server {
        handle.shutdown();
    }

    let mut report = report_header("serve", args);
    report.push("addr", Json::from(addr.to_string()));
    report.push("in_process", Json::Bool(args.serve_port.is_none()));
    report.push("concurrency", Json::UInt(args.concurrency as u64));
    report.push("rounds", Json::UInt(args.rounds as u64));
    report.push(
        "connections",
        Json::Arr(points.iter().map(|&n| Json::UInt(n as u64)).collect()),
    );
    report.push("trajectory", Json::Arr(trajectory));
    if !skipped.is_empty() {
        report.push("skipped", Json::Arr(skipped));
    }
    report
}

/// What one closed-loop worker brings home: `(strategy, latency_us)`
/// samples, busy-retry count, and any hard errors.
type WorkerResult = (Vec<(Strategy, u64)>, u64, Vec<String>);

/// One trajectory point of the `serve` closed loop: `active` workers, each
/// owning one connection, walking the query × strategy grid `rounds` times
/// with staggered starts so the workers don't march in lockstep.
fn serve_point(
    addr: std::net::SocketAddr,
    pairs: &[(&BenchmarkQuery, Strategy)],
    rounds: usize,
    active: usize,
) -> Vec<WorkerResult> {
    use conquer_serve::Client;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for wid in 0..active {
            handles.push(scope.spawn(move || {
                let mut samples: Vec<(Strategy, u64)> = Vec::new();
                let mut busy = 0u64;
                let mut errors: Vec<String> = Vec::new();
                // The session cap can also greet with busy; retry briefly.
                let mut client = None;
                for _ in 0..1000 {
                    match Client::connect(addr) {
                        Ok(c) => {
                            client = Some(c);
                            break;
                        }
                        Err(e) if e.is_busy() => {
                            busy += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => {
                            errors.push(format!("worker {wid} connect: {e}"));
                            return (samples, busy, errors);
                        }
                    }
                }
                let Some(mut client) = client else {
                    errors.push(format!("worker {wid}: session cap never freed"));
                    return (samples, busy, errors);
                };
                // One engine thread per query: with N concurrent
                // sessions the parallelism is across connections.
                if let Err(e) = client.set("threads", Json::UInt(1)) {
                    errors.push(format!("worker {wid} set threads: {e}"));
                }
                for _ in 0..rounds {
                    for i in 0..pairs.len() {
                        let (q, strategy) = pairs[(i + wid) % pairs.len()];
                        let mut attempts = 0u32;
                        loop {
                            let t0 = Instant::now();
                            match client.query_with(q.sql, Some(wire_strategy(strategy))) {
                                Ok(outcome) => {
                                    std::hint::black_box(outcome.rows.rows.len());
                                    samples.push((strategy, t0.elapsed().as_micros() as u64));
                                    break;
                                }
                                Err(e) if e.is_busy() && attempts < 1000 => {
                                    busy += 1;
                                    attempts += 1;
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                Err(e) => {
                                    errors.push(format!(
                                        "{} [{}]: {e}",
                                        q.name(),
                                        strategy.label()
                                    ));
                                    break;
                                }
                            }
                        }
                    }
                }
                let _ = client.quit();
                (samples, busy, errors)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("serve worker"))
            .collect()
    })
}

/// `recover` — crash-recovery benchmark for the durable storage layer.
///
/// Loads the standard TPC-H workload into a WAL-backed database under a
/// temp dir, then times the two recovery paths a restart can take:
///
/// 1. **WAL replay**: reopen with the load still sitting in the WAL — the
///    worst case (every record decoded, validated, applied, re-statted).
/// 2. **Segment load**: checkpoint, reopen again — the steady-state boot
///    (snapshots with verbatim stats, empty WAL).
///
/// The report carries row/table counts, the WAL size the load produced,
/// and both replay times, so EXPERIMENTS.md can track recovery-speed
/// regressions alongside the paper figures.
fn recover_cmd(args: &Args) -> Json {
    use conquer::{Database, DurabilityOptions, SyncPolicy};

    let dir = std::env::temp_dir().join(format!("conquer-harness-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // `Never` keeps fsyncs out of the load timing; an explicit flush before
    // the simulated crash makes the WAL complete on disk.
    let opts = DurabilityOptions {
        sync: SyncPolicy::Never,
        checkpoint_wal_bytes: 0,
    };
    say!(
        args,
        "## recover — durable-storage restart (SF {})\n",
        args.sf
    );

    let w = workload(args.sf, 0.05, 2);
    let tables = w.db.table_names();
    let rows: u64 = conquer_bench::total_tuples(&w.db) as u64;

    // Load: copy every generated table into the durable catalog (each copy
    // is one WAL snapshot record).
    let t0 = Instant::now();
    let db = Database::open(&dir, opts).unwrap_or_else(|e| die(&format!("open {dir:?}: {e}")));
    for name in &tables {
        let table = w.db.table(name).unwrap_or_else(|e| die(&e.to_string()));
        db.register((*table).clone())
            .unwrap_or_else(|e| die(&format!("register {name}: {e}")));
    }
    db.flush().unwrap_or_else(|e| die(&format!("flush: {e}")));
    let load_us = t0.elapsed().as_micros() as u64;
    let wal_bytes = db.storage_status().map_or(0, |s| s.wal_bytes);
    drop(db); // simulated crash: no checkpoint, the WAL holds everything

    // Restart 1: full WAL replay.
    let t0 = Instant::now();
    let db = Database::open(&dir, opts).unwrap_or_else(|e| die(&format!("reopen: {e}")));
    let replay_wal_us = t0.elapsed().as_micros() as u64;
    let recovered: u64 = conquer_bench::total_tuples(&db) as u64;
    if recovered != rows {
        FAILED.store(true, Ordering::Relaxed);
        eprintln!("harness: WAL replay recovered {recovered} rows, expected {rows}");
    }

    // Fold into segments, then time the steady-state boot.
    db.checkpoint()
        .unwrap_or_else(|e| die(&format!("checkpoint: {e}")));
    let segments = db.storage_status().map_or(0, |s| s.segments);
    drop(db);
    let t0 = Instant::now();
    let db = Database::open(&dir, opts).unwrap_or_else(|e| die(&format!("reopen: {e}")));
    let replay_segments_us = t0.elapsed().as_micros() as u64;
    let recovered_seg: u64 = conquer_bench::total_tuples(&db) as u64;
    if recovered_seg != rows {
        FAILED.store(true, Ordering::Relaxed);
        eprintln!("harness: segment load recovered {recovered_seg} rows, expected {rows}");
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    say!(args, "| phase | time (ms) |");
    say!(args, "|-------|----------:|");
    say!(
        args,
        "| load ({} tables, {rows} rows) | {:.1} |",
        tables.len(),
        load_us as f64 / 1e3
    );
    say!(
        args,
        "| restart: WAL replay ({wal_bytes} B) | {:.1} |",
        replay_wal_us as f64 / 1e3
    );
    say!(
        args,
        "| restart: segment load ({segments} segments) | {:.1} |",
        replay_segments_us as f64 / 1e3
    );
    say!(args, "");

    let mut report = report_header("recover", args);
    report.push("tables", Json::UInt(tables.len() as u64));
    report.push("rows", Json::UInt(rows));
    report.push("wal_bytes", Json::UInt(wal_bytes));
    report.push("segments", Json::UInt(segments));
    report.push("load_us", Json::UInt(load_us));
    report.push("replay_wal_us", Json::UInt(replay_wal_us));
    report.push("replay_segments_us", Json::UInt(replay_segments_us));
    report
}
