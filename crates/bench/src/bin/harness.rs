//! The figure-regeneration harness: reprints every table and figure of the
//! paper's evaluation (Section 6) as text/markdown series.
//!
//! ```sh
//! cargo run -p conquer-bench --release --bin harness -- all
//! cargo run -p conquer-bench --release --bin harness -- fig12 --sf 0.02
//! ```
//!
//! Subcommands: `fig10`, `fig11`, `fig12`, `fig13`, `fig14`, `baseline`,
//! `all`. The optional `--sf <factor>` overrides the base scale factor
//! standing in for the paper's 1 GB database (default 0.05), and
//! `--runs <n>` the median-of-n timing (default 3).

use std::time::Instant;

use conquer::tpch::{all_queries, Q12, Q4, Q6};
use conquer::{analyze, parse_query};
use conquer_bench::{
    ms, overhead, time_query, workload, Strategy, BASE_SF,
};

struct Args {
    command: String,
    sf: f64,
    runs: usize,
}

fn parse_args() -> Args {
    let mut args = Args { command: "all".to_string(), sf: BASE_SF, runs: 3 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sf" => {
                args.sf = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--sf requires a number"));
            }
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs requires an integer"));
            }
            cmd if !cmd.starts_with('-') => args.command = cmd.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("harness: {msg}");
    eprintln!("usage: harness [fig10|fig11|fig12|fig13|fig14|baseline|all] [--sf F] [--runs N]");
    std::process::exit(2)
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    match args.command.as_str() {
        "fig10" => fig10(),
        "fig11" => fig11(&args),
        "fig12" => fig12(&args),
        "fig13" => fig13(&args),
        "fig14" => fig14(&args),
        "baseline" => baseline(),
        "all" => {
            fig10();
            fig11(&args);
            fig12(&args);
            fig13(&args);
            fig14(&args);
            baseline();
        }
        other => die(&format!("unknown command {other}")),
    }
    eprintln!("\n(total harness time: {:.1}s)", t0.elapsed().as_secs_f64());
}

/// Figure 10: characteristics of the benchmark queries.
fn fig10() {
    println!("## Figure 10 — queries used in the experiments\n");
    println!("| Query | Relations | Selectivity | ProjAttrs | AggrAttrs |");
    println!("|-------|-----------|-------------|-----------|-----------|");
    let sigma = conquer::tpch::benchmark_constraints();
    for q in all_queries() {
        let tq = analyze(&parse_query(q.sql).unwrap(), &sigma).unwrap();
        println!(
            "| {} | {} | {} | {} | {} |",
            q.name(),
            tq.relations.len(),
            q.selectivity,
            tq.projection.len(),
            tq.aggregate_count(),
        );
    }
    println!();
}

/// Figure 11: running times of all queries, original vs rewritten vs
/// annotation-aware, at the base size with p = 5%, n = 2.
fn fig11(args: &Args) {
    println!(
        "## Figure 11 — all queries, SF {} (stand-in for 1 GB), p = 5%, n = 2\n",
        args.sf
    );
    let w = workload(args.sf, 0.05, 2);
    println!(
        "| Query | original (ms) | rewritten (ms) | annotated (ms) | overhead rewritten | overhead annotated |"
    );
    println!("|-------|--------------:|---------------:|---------------:|-------------------:|-------------------:|");
    for q in all_queries() {
        let t_orig = time_query(&w, &q, Strategy::Original, args.runs);
        let t_rew = time_query(&w, &q, Strategy::Rewritten, args.runs);
        let t_ann = time_query(&w, &q, Strategy::Annotated, args.runs);
        println!(
            "| {} | {} | {} | {} | {:.2}x | {:.2}x |",
            q.name(),
            ms(t_orig),
            ms(t_rew),
            ms(t_ann),
            overhead(t_orig, t_rew),
            overhead(t_orig, t_ann),
        );
    }
    println!();
}

/// Figure 12: Q6 while varying the inconsistency percentage p (n = 2).
fn fig12(args: &Args) {
    println!("## Figure 12 — Q6 vs p (n = 2, SF {})\n", args.sf);
    println!("| p (%) | original (ms) | rewritten (ms) | annotated (ms) | annotated overhead |");
    println!("|------:|--------------:|---------------:|---------------:|-------------------:|");
    for p in [0.0, 0.01, 0.05, 0.10, 0.20, 0.50] {
        let w = workload(args.sf, p, 2);
        let t_orig = time_query(&w, &Q6, Strategy::Original, args.runs);
        let t_rew = time_query(&w, &Q6, Strategy::Rewritten, args.runs);
        let t_ann = time_query(&w, &Q6, Strategy::Annotated, args.runs);
        println!(
            "| {:>4.0} | {} | {} | {} | {:.2}x |",
            p * 100.0,
            ms(t_orig),
            ms(t_rew),
            ms(t_ann),
            overhead(t_orig, t_ann),
        );
    }
    println!();
}

/// Figure 13: Q6 while varying n, the tuples per violated key (p = 10%).
fn fig13(args: &Args) {
    println!("## Figure 13 — Q6 vs n (p = 10%, SF {})\n", args.sf);
    println!("| n | original (ms) | rewritten (ms) | annotated (ms) |");
    println!("|--:|--------------:|---------------:|---------------:|");
    for n in [2usize, 5, 10, 25, 50] {
        let w = workload(args.sf, 0.10, n);
        let t_orig = time_query(&w, &Q6, Strategy::Original, args.runs);
        let t_rew = time_query(&w, &Q6, Strategy::Rewritten, args.runs);
        let t_ann = time_query(&w, &Q6, Strategy::Annotated, args.runs);
        println!("| {n} | {} | {} | {} |", ms(t_orig), ms(t_rew), ms(t_ann));
    }
    println!();
}

/// Figure 14: scalability across database sizes with a constant number of
/// inconsistent tuples (the paper's 100 MB..2 GB at p = 50/10/5/2.5 %).
fn fig14(args: &Args) {
    println!("## Figure 14 — scalability, constant inconsistent tuples (n = 2)\n");
    println!("annotation-aware rewritings of Q4, Q6, Q12\n");
    println!("| size (×1 GB stand-in) | p (%) | tuples | Q4 (ms) | Q6 (ms) | Q12 (ms) |");
    println!("|----------------------:|------:|-------:|--------:|--------:|---------:|");
    // Same ratios as the paper: 0.1x, 0.5x, 1x, 2x of the base size with
    // p chosen to hold p * size constant.
    for (ratio, p) in [(0.1, 0.50), (0.5, 0.10), (1.0, 0.05), (2.0, 0.025)] {
        let sf = args.sf * ratio;
        let w = workload(sf, p, 2);
        let tuples = conquer_bench::total_tuples(&w.db);
        let t4 = time_query(&w, &Q4, Strategy::Annotated, args.runs);
        let t6 = time_query(&w, &Q6, Strategy::Annotated, args.runs);
        let t12 = time_query(&w, &Q12, Strategy::Annotated, args.runs);
        println!(
            "| {ratio} | {:.1} | {tuples} | {} | {} | {} |",
            p * 100.0,
            ms(t4),
            ms(t6),
            ms(t12),
        );
    }
    println!();
}

/// Related-work scale contrast (Section 7): repair enumeration — the
/// approach rewriting replaces — explodes even at toy sizes, while the
/// rewriting runs on millions of tuples.
fn baseline() {
    use conquer::{consistent_answers_oracle, ConstraintSet, Database};
    println!("## Baseline — repair enumeration vs rewriting (Section 7 contrast)\n");
    println!("| conflicting keys | repairs | oracle (ms) | rewriting (ms) |");
    println!("|-----------------:|--------:|------------:|---------------:|");
    for keys in [4usize, 8, 12, 16] {
        let db = Database::new();
        let mut script =
            String::from("create table t (k integer, v integer);\ninsert into t values ");
        let mut vals = Vec::new();
        for k in 0..200 {
            vals.push(format!("({k}, {})", k % 7));
            if k < keys as i64 {
                vals.push(format!("({k}, {})", (k + 1) % 7));
            }
        }
        script.push_str(&vals.join(", "));
        db.run_script(&script).unwrap();
        let sigma = ConstraintSet::new().with_key("t", ["k"]);
        let q = "select t.k from t where t.v > 2";

        let t0 = Instant::now();
        let oracle = consistent_answers_oracle(&db, q, &sigma).unwrap();
        let t_oracle = t0.elapsed();
        let t0 = Instant::now();
        let rewritten = conquer::consistent_answers(&db, q, &sigma).unwrap();
        let t_rew = t0.elapsed();
        assert_eq!(oracle.len(), rewritten.len());
        println!(
            "| {keys} | {} | {} | {} |",
            1u128 << keys,
            ms(t_oracle),
            ms(t_rew),
        );
    }
    println!("\n(each conflicting key doubles the repair count; the rewriting is flat)");
}
