//! Figure 11 as a standalone bench: every benchmark query under the three
//! execution strategies at a fixed inconsistency level (p = 5%, n = 2).
//!
//! The scale factor is reduced relative to the harness so the full matrix
//! stays within a short time budget; run the harness for the paper-scale
//! numbers. (`cargo bench` runs this as a plain binary: the workspace
//! builds offline, so there is no external bench framework.)

use conquer::tpch::all_queries;
use conquer_bench::{bench_case, run_query, workload, Strategy};

fn main() {
    let w = workload(0.01, 0.05, 2);
    for q in all_queries() {
        for strategy in [Strategy::Original, Strategy::Rewritten, Strategy::Annotated] {
            bench_case(
                "fig11",
                &format!("{}/{}", q.name(), strategy.label()),
                10,
                || run_query(&w, &q, strategy),
            );
        }
    }
}
