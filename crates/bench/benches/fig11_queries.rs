//! Figure 11 as a Criterion bench: every benchmark query under the three
//! execution strategies at a fixed inconsistency level (p = 5%, n = 2).
//!
//! The scale factor is reduced relative to the harness so the full matrix
//! stays within Criterion's time budget; run the harness for the
//! paper-scale numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conquer::tpch::all_queries;
use conquer_bench::{run_query, workload, Strategy};

fn bench_fig11(c: &mut Criterion) {
    let w = workload(0.01, 0.05, 2);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for q in all_queries() {
        for strategy in [Strategy::Original, Strategy::Rewritten, Strategy::Annotated] {
            group.bench_with_input(
                BenchmarkId::new(q.name(), strategy.label()),
                &strategy,
                |b, &strategy| b.iter(|| run_query(&w, &q, strategy)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
