//! Figure 14 as a standalone bench: annotation-aware rewritings of Q4, Q6
//! and Q12 across database sizes with a *constant* number of inconsistent
//! tuples (the paper's 100 MB..2 GB series at p = 50/10/5/2.5 %).

use conquer::tpch::{Q12, Q4, Q6};
use conquer_bench::{bench_case, run_query, workload, Strategy};

fn main() {
    for (ratio, p) in [(0.1, 0.50), (0.5, 0.10), (1.0, 0.05), (2.0, 0.025)] {
        let w = workload(0.01 * ratio, p, 2);
        for q in [&Q4, &Q6, &Q12] {
            bench_case(
                "fig14_scalability",
                &format!("{}/size{ratio}", q.name()),
                10,
                || run_query(&w, q, Strategy::Annotated),
            );
        }
    }
}
