//! Figure 14 as a Criterion bench: annotation-aware rewritings of Q4, Q6
//! and Q12 across database sizes with a *constant* number of inconsistent
//! tuples (the paper's 100 MB..2 GB series at p = 50/10/5/2.5 %).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conquer::tpch::{Q12, Q4, Q6};
use conquer_bench::{run_query, workload, Strategy};

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_scalability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (ratio, p) in [(0.1, 0.50), (0.5, 0.10), (1.0, 0.05), (2.0, 0.025)] {
        let w = workload(0.01 * ratio, p, 2);
        for q in [&Q4, &Q6, &Q12] {
            group.bench_with_input(
                BenchmarkId::new(q.name(), format!("size{ratio}")),
                q,
                |b, q| b.iter(|| run_query(&w, q, Strategy::Annotated)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
