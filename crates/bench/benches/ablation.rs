//! Ablations of the design choices DESIGN.md calls out:
//!
//! * CTE materialization on/off — the paper found materializing the
//!   `Candidates`/`Filter` subexpressions essential (Section 6.1);
//! * decorrelated hash anti-join vs per-row nested-loop `NOT EXISTS` —
//!   the optimization a production engine applies to the rewriting;
//! * filter pushdown on/off — Section 5 relies on the optimizer evaluating
//!   the `conscand > 0` guard before the Filter's joins;
//! * plain vs annotation-aware rewriting — the Section 5 comparison.

use conquer::tpch::{Q12, Q6};
use conquer::ExecOptions;
use conquer_bench::{bench_case, rewritten_query, workload};

fn main() {
    let w = workload(0.01, 0.05, 2);

    let configs: [(&str, ExecOptions); 4] = [
        ("all-optimizations", ExecOptions::default()),
        (
            "inline-ctes",
            ExecOptions {
                materialize_ctes: false,
                ..ExecOptions::default()
            },
        ),
        (
            "nested-loop-exists",
            ExecOptions {
                decorrelate_exists: false,
                ..ExecOptions::default()
            },
        ),
        (
            "no-filter-pushdown",
            ExecOptions {
                pushdown_filters: false,
                ..ExecOptions::default()
            },
        ),
    ];

    // Q6 is the paper's representative query; Q12 adds a join.
    for q in [&Q6, &Q12] {
        for annotated in [false, true] {
            let rewritten = rewritten_query(q, &w.sigma, annotated);
            let variant = if annotated { "annotated" } else { "plain" };
            for (label, options) in &configs {
                // The nested-loop fallback on the larger Q12 rewriting is
                // quadratic; skip the pathological combination to keep the
                // bench finishing in reasonable time.
                if *label == "nested-loop-exists" && q.number == 12 {
                    continue;
                }
                bench_case(
                    "ablation",
                    &format!("{}-{variant}/{label}", q.name()),
                    10,
                    || w.db.execute_query_with(&rewritten, options).unwrap(),
                );
            }
        }
    }
}
