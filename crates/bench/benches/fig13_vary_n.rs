//! Figure 13 as a Criterion bench: Q6 across n (tuples per violated key)
//! with p = 10%. The paper finds n has little influence on either
//! rewriting strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conquer::tpch::Q6;
use conquer_bench::{run_query, workload, Strategy};

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_q6_vary_n");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [2usize, 5, 10, 25, 50] {
        let w = workload(0.01, 0.10, n);
        for strategy in [Strategy::Rewritten, Strategy::Annotated] {
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), format!("n{n}")),
                &strategy,
                |b, &strategy| b.iter(|| run_query(&w, &Q6, strategy)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
