//! Figure 13 as a standalone bench: Q6 across n (tuples per violated key)
//! with p = 10%. The paper finds n has little influence on either
//! rewriting strategy.

use conquer::tpch::Q6;
use conquer_bench::{bench_case, run_query, workload, Strategy};

fn main() {
    for n in [2usize, 5, 10, 25, 50] {
        let w = workload(0.01, 0.10, n);
        for strategy in [Strategy::Rewritten, Strategy::Annotated] {
            bench_case(
                "fig13_q6_vary_n",
                &format!("{}/n{n}", strategy.label()),
                10,
                || run_query(&w, &Q6, strategy),
            );
        }
    }
}
