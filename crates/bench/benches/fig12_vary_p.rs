//! Figure 12 as a standalone bench: Q6 across inconsistency percentages
//! p ∈ {0, 1, 5, 10, 20, 50} with n = 2. The paper's findings to look for:
//! the original query and the plain rewriting are flat in p, while the
//! annotation-aware rewriting degrades gracefully from near-zero overhead
//! at p = 0.

use conquer::tpch::Q6;
use conquer_bench::{bench_case, run_query, workload, Strategy};

fn main() {
    for p in [0.0, 0.01, 0.05, 0.10, 0.20, 0.50] {
        let w = workload(0.01, p, 2);
        for strategy in [Strategy::Original, Strategy::Rewritten, Strategy::Annotated] {
            bench_case(
                "fig12_q6_vary_p",
                &format!("{}/p{}", strategy.label(), (p * 100.0) as u32),
                10,
                || run_query(&w, &Q6, strategy),
            );
        }
    }
}
