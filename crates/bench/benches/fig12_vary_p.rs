//! Figure 12 as a Criterion bench: Q6 across inconsistency percentages
//! p ∈ {0, 1, 5, 10, 20, 50} with n = 2. The paper's findings to look for:
//! the original query and the plain rewriting are flat in p, while the
//! annotation-aware rewriting degrades gracefully from near-zero overhead
//! at p = 0.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conquer::tpch::Q6;
use conquer_bench::{run_query, workload, Strategy};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_q6_vary_p");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for p in [0.0, 0.01, 0.05, 0.10, 0.20, 0.50] {
        let w = workload(0.01, p, 2);
        for strategy in [Strategy::Original, Strategy::Rewritten, Strategy::Annotated] {
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), format!("p{}", (p * 100.0) as u32)),
                &strategy,
                |b, &strategy| b.iter(|| run_query(&w, &Q6, strategy)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
