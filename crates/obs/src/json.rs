//! A minimal JSON document model and writer.
//!
//! The workspace builds with no registry access, so `serde` is not
//! available; this hand-rolled writer covers exactly what the bench
//! exports and `EXPLAIN ANALYZE` need: objects with stable key order,
//! arrays, strings with full escaping, integers, and finite floats
//! (non-finite floats serialize as `null`, as JSON has no spelling for
//! them).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Append a key to an object value; panics on non-objects (builder use).
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation (for files humans read).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest-roundtrip formatting; force a decimal point so the
    // value re-parses as a float.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents() {
        let doc = Json::obj([
            ("name", Json::from("fig11")),
            ("runs", Json::from(3u64)),
            ("overhead", Json::Float(1.5)),
            ("flags", Json::arr([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig11","runs":3,"overhead":1.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
    }

    #[test]
    fn get_and_push_work_on_objects() {
        let mut doc = Json::obj([("a", Json::Int(1))]);
        doc.push("b", Json::Int(2));
        assert_eq!(doc.get("b"), Some(&Json::Int(2)));
        assert_eq!(doc.get("missing"), None);
    }
}
