//! A minimal JSON document model, writer, and parser.
//!
//! The workspace builds with no registry access, so `serde` is not
//! available; this hand-rolled writer covers exactly what the bench
//! exports and `EXPLAIN ANALYZE` need: objects with stable key order,
//! arrays, strings with full escaping, integers, and finite floats
//! (non-finite floats serialize as `null`, as JSON has no spelling for
//! them). [`Json::parse`] is the matching reader, used by the
//! `conquer-serve` wire protocol to decode request/response frames; it
//! accepts standard JSON with a recursion-depth cap and reports errors
//! with a byte offset.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Append a key to an object value; panics on non-objects (builder use).
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation (for files humans read).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest-roundtrip formatting; force a decimal point so the
    // value re-parses as a float.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Error from [`Json::parse`]: what went wrong and at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum nesting depth accepted by the parser (defence against stack
/// exhaustion on adversarial frames).
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parse a JSON document. Integers without a fraction or exponent that
    /// fit `i64` parse as [`Json::Int`] (then [`Json::UInt`] for larger
    /// positive values); everything else numeric parses as [`Json::Float`].
    /// Trailing non-whitespace input is an error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run = self.pos; // start of the current escape-free run
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.run_str(run)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run_str(run)?);
                    self.pos += 1;
                    out.push(self.escape()?);
                    run = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The escape-free slice `[run, pos)` as UTF-8 (the input is a `&str`,
    /// so this only fails if `run`/`pos` split a multibyte sequence, which
    /// the byte-level scan above never does).
    fn run_str(&self, run: usize) -> Result<&'a str, JsonParseError> {
        std::str::from_utf8(&self.bytes[run..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            other => return Err(self.err(format!("unknown escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + digit as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self
            .run_str(start)
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents() {
        let doc = Json::obj([
            ("name", Json::from("fig11")),
            ("runs", Json::from(3u64)),
            ("overhead", Json::Float(1.5)),
            ("flags", Json::arr([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig11","runs":3,"overhead":1.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
    }

    #[test]
    fn get_and_push_work_on_objects() {
        let mut doc = Json::obj([("a", Json::Int(1))]);
        doc.push("b", Json::Int(2));
        assert_eq!(doc.get("b"), Some(&Json::Int(2)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_roundtrips_rendered_documents() {
        let doc = Json::obj([
            ("name", Json::from("fig11")),
            ("runs", Json::Int(3)),
            ("overhead", Json::Float(1.5)),
            ("neg", Json::Int(-7)),
            ("flags", Json::arr([Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("k", Json::Str("v\n\"x\"".into()))])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_number_types() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Float(1500.0));
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn parse_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""aA\n😀""#).unwrap(),
            Json::Str("aA\n😀".to_string())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err()); // unpaired surrogate
    }

    #[test]
    fn parse_float_roundtrips_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MAX, 1e-300, -2.5] {
            let rendered = Json::Float(v).render();
            let Json::Float(back) = Json::parse(&rendered).unwrap() else {
                panic!("expected float from {rendered}");
            };
            assert_eq!(v.to_bits(), back.to_bits(), "value {v}");
        }
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "[1,]",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err(), "depth cap");
    }
}
