//! The flight recorder: an always-on, fixed-capacity ring buffer of
//! per-query trace summaries.
//!
//! Every query the serve session loop (or the bench harness) finishes —
//! successfully or not — is condensed into a [`QueryTrace`] and pushed
//! into the process-wide recorder. The ring holds the most recent
//! [`DEFAULT_FLIGHT_CAPACITY`] entries; older ones fall off the back.
//! Recording is one short mutex hold (push + maybe pop), cheap next to
//! executing a query, so the recorder stays on unconditionally.
//!
//! Entries are retrieved over the serve protocol (`trace_recent`,
//! `trace_get <query_id>`), over HTTP (`/traces`), or logged as JSON
//! lines when a query is slower than the configured threshold, trips a
//! resource limit, or errors (see [`log_slow_query`]).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;
use crate::span::{phase_totals, SpanRecord};

/// Ring capacity of the process-wide recorder: enough history to debug
/// "what just happened" without unbounded growth — at a few hundred bytes
/// of summary per entry this is well under a megabyte resident.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// How much leading SQL text a trace keeps verbatim; the FNV hash
/// identifies the full statement.
pub const SQL_SNIPPET_BYTES: usize = 120;

/// FNV-1a hash of a SQL string: a stable, dependency-free statement
/// identity for correlating truncated snippets across traces and logs.
pub fn sql_hash(sql: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in sql.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Truncate SQL to the snippet budget on a char boundary, appending an
/// ellipsis when anything was cut.
pub fn sql_snippet(sql: &str) -> String {
    let trimmed = sql.trim();
    if trimmed.len() <= SQL_SNIPPET_BYTES {
        return trimmed.to_string();
    }
    let mut end = SQL_SNIPPET_BYTES;
    while end > 0 && !trimmed.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &trimmed[..end])
}

/// A governor limit-trip snapshot, decoupled from the engine's error
/// types (obs sits below the engine in the crate graph).
#[derive(Debug, Clone)]
pub struct TripSnapshot {
    /// Which limit tripped: `timeout`, `memory`, `rows`, or `cancelled`.
    pub kind: &'static str,
    /// Operator that observed the trip (e.g. `hash_join`).
    pub operator: String,
    pub elapsed_ms: u64,
    pub rows: u64,
    pub mem_bytes: u64,
}

impl TripSnapshot {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::from(self.kind)),
            ("operator", Json::Str(self.operator.clone())),
            ("elapsed_ms", Json::UInt(self.elapsed_ms)),
            ("rows", Json::UInt(self.rows)),
            ("mem_bytes", Json::UInt(self.mem_bytes)),
        ])
    }
}

/// One finished query, condensed for the flight recorder.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The query's process-unique trace id (`QueryId::value`).
    pub query_id: u64,
    /// Serving session id; 0 for harness-local queries.
    pub session: u64,
    pub sql_hash: u64,
    /// Leading snippet of the SQL text (see [`sql_snippet`]).
    pub sql: String,
    /// Answering strategy label: `original` / `rewritten` / `annotated`.
    pub strategy: &'static str,
    /// `ok`, or the structured error code label (`timeout`, `parse`, ...).
    pub status: &'static str,
    /// Human-readable error message when status is not `ok`.
    pub error: Option<String>,
    /// Whether the rewrite/plan cache served this statement.
    pub cached: bool,
    pub elapsed_us: u64,
    /// Rows produced by the query (0 on error).
    pub rows_out: u64,
    /// Total base-table rows the plan reads (its scan inputs).
    pub rows_in: u64,
    /// Planner cardinality estimate for the root, when stats were on.
    pub est_rows: Option<u64>,
    /// Thread budget the query ran with.
    pub threads: usize,
    /// Number of morsel-worker spans captured.
    pub worker_spans: u64,
    /// Unix-millis wall-clock time the query started.
    pub start_unix_ms: u64,
    /// Governor limit-trip details, when one fired.
    pub trip: Option<TripSnapshot>,
    /// The full captured span tree (all threads), in close order.
    pub spans: Vec<SpanRecord>,
}

impl QueryTrace {
    /// Per-phase wall totals from the captured spans, as `(name, total)`.
    pub fn phase_us(&self) -> Vec<(&'static str, u64)> {
        phase_totals(&self.spans)
            .into_iter()
            .map(|(name, wall)| (name, wall.as_micros() as u64))
            .collect()
    }

    /// The summary object: everything except the raw span list. This is
    /// the `trace_recent` / `/traces` / slow-query-log line shape.
    pub fn summary_json(&self) -> Json {
        let mut obj = Json::obj([
            ("query_id", Json::UInt(self.query_id)),
            ("session", Json::UInt(self.session)),
            ("sql_hash", Json::Str(format!("{:016x}", self.sql_hash))),
            ("sql", Json::Str(self.sql.clone())),
            ("strategy", Json::from(self.strategy)),
            ("status", Json::from(self.status)),
            ("cached", Json::Bool(self.cached)),
            ("elapsed_us", Json::UInt(self.elapsed_us)),
            ("rows_out", Json::UInt(self.rows_out)),
            ("rows_in", Json::UInt(self.rows_in)),
            ("threads", Json::UInt(self.threads as u64)),
            ("worker_spans", Json::UInt(self.worker_spans)),
            ("start_unix_ms", Json::UInt(self.start_unix_ms)),
        ]);
        match self.est_rows {
            Some(est) => obj.push("est_rows", Json::UInt(est)),
            None => obj.push("est_rows", Json::Null),
        }
        if let Some(error) = &self.error {
            obj.push("error", Json::Str(error.clone()));
        }
        if let Some(trip) = &self.trip {
            obj.push("trip", trip.to_json());
        }
        let phases = self
            .phase_us()
            .iter()
            .map(|(name, us)| (name.to_string(), Json::UInt(*us)))
            .collect::<Vec<_>>();
        obj.push("phase_us", Json::Obj(phases));
        obj
    }

    /// The full object: the summary plus every captured span.
    pub fn to_json(&self) -> Json {
        let mut obj = self.summary_json();
        obj.push(
            "spans",
            Json::arr(self.spans.iter().map(SpanRecord::to_json)),
        );
        obj
    }
}

/// Fixed-capacity ring of recent [`QueryTrace`]s, newest at the back.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<Arc<QueryTrace>>>,
    capacity: usize,
    recorded: AtomicU64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            recorded: AtomicU64::new(0),
        }
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<QueryTrace>>> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a finished query, evicting the oldest entry when full.
    /// Returns the shared handle so callers can keep using the trace
    /// (e.g. to log it) without another clone.
    pub fn record(&self, trace: QueryTrace) -> Arc<QueryTrace> {
        let trace = Arc::new(trace);
        let mut ring = self.lock_ring();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(Arc::clone(&trace));
        self.recorded.fetch_add(1, Ordering::Relaxed);
        trace
    }

    /// Total queries ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The most recent `limit` traces, newest first.
    pub fn recent(&self, limit: usize) -> Vec<Arc<QueryTrace>> {
        let ring = self.lock_ring();
        ring.iter().rev().take(limit).cloned().collect()
    }

    /// Look a trace up by query id (linear scan of at most `capacity`).
    pub fn get(&self, query_id: u64) -> Option<Arc<QueryTrace>> {
        let ring = self.lock_ring();
        ring.iter().rev().find(|t| t.query_id == query_id).cloned()
    }

    /// The recorder as JSON: `{recorded, capacity, traces: [summaries]}`,
    /// newest first. Serialization happens on cloned `Arc`s, outside the
    /// ring lock.
    pub fn to_json(&self, limit: usize) -> Json {
        let traces = self.recent(limit);
        Json::obj([
            ("recorded", Json::UInt(self.recorded())),
            ("capacity", Json::UInt(self.capacity as u64)),
            ("traces", Json::arr(traces.iter().map(|t| t.summary_json()))),
        ])
    }
}

/// The process-wide flight recorder.
pub fn flight_recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY))
}

type SlowSink = Mutex<Option<Box<dyn Write + Send>>>;

fn slow_sink() -> &'static SlowSink {
    static SINK: OnceLock<SlowSink> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Redirect the slow-query log (default: stderr). Pass `None` to restore
/// the default.
pub fn set_slow_query_sink(sink: Option<Box<dyn Write + Send>>) {
    *slow_sink().lock().unwrap_or_else(|e| e.into_inner()) = sink;
}

/// Write one JSON line for a slow/tripped/errored query: the trace
/// summary wrapped as `{"slow_query": {...}, "threshold_us": N}`.
pub fn log_slow_query(trace: &QueryTrace, threshold_us: u64) {
    let line = Json::obj([
        ("slow_query", trace.summary_json()),
        ("threshold_us", Json::UInt(threshold_us)),
    ])
    .render();
    let mut sink = slow_sink().lock().unwrap_or_else(|e| e.into_inner());
    match sink.as_mut() {
        Some(out) => {
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
        None => eprintln!("{line}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn trace(query_id: u64, sql: &str) -> QueryTrace {
        QueryTrace {
            query_id,
            session: 1,
            sql_hash: sql_hash(sql),
            sql: sql_snippet(sql),
            strategy: "rewritten",
            status: "ok",
            error: None,
            cached: false,
            elapsed_us: 1250,
            rows_out: 4,
            rows_in: 100,
            est_rows: Some(5),
            threads: 2,
            worker_spans: 2,
            start_unix_ms: 1_700_000_000_000,
            trip: None,
            spans: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        for i in 1..=5 {
            rec.record(trace(i, "select 1"));
        }
        assert_eq!(rec.recorded(), 5);
        let recent = rec.recent(10);
        assert_eq!(
            recent.iter().map(|t| t.query_id).collect::<Vec<_>>(),
            vec![5, 4, 3],
            "newest first, oldest evicted"
        );
        assert!(rec.get(1).is_none());
        assert_eq!(rec.get(4).map(|t| t.query_id), Some(4));
    }

    #[test]
    fn snippet_truncates_on_char_boundary() {
        let long = "select ".to_string() + &"é".repeat(200);
        let snip = sql_snippet(&long);
        assert!(snip.ends_with('…'));
        assert!(snip.len() <= SQL_SNIPPET_BYTES + '…'.len_utf8());
        assert_eq!(sql_snippet("select 1"), "select 1");
    }

    #[test]
    fn sql_hash_is_stable() {
        assert_eq!(sql_hash("select 1"), sql_hash("select 1"));
        assert_ne!(sql_hash("select 1"), sql_hash("select 2"));
    }

    #[test]
    fn summary_includes_phase_totals_and_trip() {
        let mut t = trace(7, "select * from t");
        t.status = "timeout";
        t.trip = Some(TripSnapshot {
            kind: "timeout",
            operator: "hash_join".to_string(),
            elapsed_ms: 250,
            rows: 10,
            mem_bytes: 0,
        });
        t.spans = vec![crate::span::SpanRecord {
            name: "execute",
            fields: Vec::new(),
            depth: 0,
            start: std::time::Duration::from_micros(10),
            wall: Duration::from_micros(900),
            thread: 1,
        }];
        let json = t.summary_json();
        assert_eq!(json.get("status"), Some(&Json::Str("timeout".into())));
        assert!(json.get("trip").is_some());
        let phases = json.get("phase_us").expect("phase totals present");
        assert_eq!(phases.get("execute"), Some(&Json::UInt(900)));
        // Summary carries no raw spans; the full form does.
        assert!(json.get("spans").is_none());
        assert!(t.to_json().get("spans").is_some());
    }
}
