//! # conquer-obs — observability for the ConQuer stack
//!
//! A deliberately small, dependency-free measurement layer used by every
//! other crate in the workspace:
//!
//! * [`span`](mod@span) — lightweight spans over a thread-local stack with
//!   monotonic timing, structured `key=value` fields, pluggable global
//!   subscribers (human-readable or JSON-lines sinks), and a scoped
//!   [`capture`] helper that collects the spans produced by a closure.
//!   The query pipeline (parse → analyze → rewrite → plan → optimize →
//!   execute) is instrumented with these spans.
//! * [`metrics`] — a global registry of counters and log-scale histograms
//!   with a JSON snapshot export; every closed span also feeds a
//!   `span.<name>.ns` histogram, so phase latency distributions are
//!   available process-wide without any subscriber installed.
//! * [`json`] — a minimal JSON value type, writer, and parser (the
//!   workspace builds offline, so there is no `serde`); used for the bench
//!   harness's `BENCH_<fig>.json` exports, `EXPLAIN ANALYZE` machine
//!   output, and the `conquer-serve` wire protocol.
//!
//! The paper's headline claim (SIGMOD 2005, Section 6) is that
//! consistent-answer rewritings cost less than ~2× the original query;
//! this crate exists so the repository can say *where* that factor goes.
//!
//! ```
//! use conquer_obs::{capture, span};
//!
//! let (value, spans) = capture(|| {
//!     let _outer = span("execute").field("rows", 3u64);
//!     {
//!         let _inner = span("hash_join");
//!     }
//!     42
//! });
//! assert_eq!(value, 42);
//! assert_eq!(spans.len(), 2); // inner closes first
//! assert_eq!(spans[0].name, "hash_join");
//! assert_eq!(spans[1].name, "execute");
//! assert!(spans[1].wall >= spans[0].wall);
//! ```

pub mod json;
pub mod metrics;
pub mod span;

pub use json::{Json, JsonParseError};
pub use metrics::{registry, Counter, Histogram, HistogramSnapshot, Registry};
pub use span::{
    capture, clear_subscriber, phase_totals, set_subscriber, span, FieldValue, HumanSink,
    JsonLinesSink, Span, SpanRecord, Subscriber,
};
