//! # conquer-obs — observability for the ConQuer stack
//!
//! A deliberately small, dependency-free measurement layer used by every
//! other crate in the workspace:
//!
//! * [`span`](mod@span) — lightweight spans over a thread-local stack with
//!   monotonic timing, structured `key=value` fields, pluggable global
//!   subscribers (human-readable or JSON-lines sinks), and a scoped
//!   [`capture`] helper that collects the spans produced by a closure.
//!   The query pipeline (parse → analyze → rewrite → plan → optimize →
//!   execute) is instrumented with these spans.
//! * [`metrics`] — a global registry of counters and log-scale histograms
//!   with a JSON snapshot export; every closed span also feeds a
//!   `span.<name>.ns` histogram, so phase latency distributions are
//!   available process-wide without any subscriber installed.
//! * [`json`] — a minimal JSON value type, writer, and parser (the
//!   workspace builds offline, so there is no `serde`); used for the bench
//!   harness's `BENCH_<fig>.json` exports, `EXPLAIN ANALYZE` machine
//!   output, and the `conquer-serve` wire protocol.
//! * [`flight`] — an always-on flight recorder: a fixed-capacity ring of
//!   per-query [`QueryTrace`] summaries fed by the serve session loop and
//!   the bench harness, plus a slow-query JSON-lines log.
//! * [`prom`] — Prometheus text exposition over the registry, with
//!   cumulative `_bucket` lines derived from the log-scale histograms.
//!
//! Per-query, cross-thread tracing is built from [`TraceContext`] (a
//! [`QueryId`] plus a shareable collector, installed by whoever owns the
//! query and flowed through the engine's `ExecOptions`) and
//! [`current_trace`]/[`ThreadTrace`] (how morsel worker threads adopt the
//! spawning thread's collectors, tagging their spans with worker ids).
//!
//! The paper's headline claim (SIGMOD 2005, Section 6) is that
//! consistent-answer rewritings cost less than ~2× the original query;
//! this crate exists so the repository can say *where* that factor goes.
//!
//! ```
//! use conquer_obs::{capture, span};
//!
//! let (value, spans) = capture(|| {
//!     let _outer = span("execute").field("rows", 3u64);
//!     {
//!         let _inner = span("hash_join");
//!     }
//!     42
//! });
//! assert_eq!(value, 42);
//! assert_eq!(spans.len(), 2); // inner closes first
//! assert_eq!(spans[0].name, "hash_join");
//! assert_eq!(spans[1].name, "execute");
//! assert!(spans[1].wall >= spans[0].wall);
//! ```

pub mod flight;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod span;

pub use flight::{
    flight_recorder, log_slow_query, set_slow_query_sink, sql_hash, sql_snippet, FlightRecorder,
    QueryTrace, TripSnapshot, DEFAULT_FLIGHT_CAPACITY,
};
pub use json::{Json, JsonParseError};
pub use metrics::{
    bucket_index, bucket_upper_bound, registry, Counter, Histogram, HistogramSnapshot, Registry,
};
pub use prom::{prometheus_text, push_gauge, sanitize_metric_name};
pub use span::{
    capture, clear_subscriber, current_trace, epoch_unix_ms, phase_totals, set_subscriber, span,
    thread_tag, FieldValue, HumanSink, JsonLinesSink, QueryId, Span, SpanRecord, Subscriber,
    ThreadTrace, TraceContext, TraceGuard, WorkerGuard,
};
