//! Prometheus text exposition (format version 0.0.4) over the registry.
//!
//! Counters render as `<name>_total`; histograms render with cumulative
//! `_bucket{le="..."}` lines derived from the log-scale buckets via
//! [`bucket_upper_bound`], plus `_sum` and `_count`. Metric names are
//! sanitized to the Prometheus charset (`[a-zA-Z_:][a-zA-Z0-9_:]*`), so
//! the registry's dotted names (`serve.query.us`) become underscored
//! (`serve_query_us`).

use crate::metrics::{bucket_index, bucket_upper_bound, Registry};

/// Map a registry name onto the Prometheus metric-name charset.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Append one gauge (`# TYPE` line plus a sample) to `out`. Used by the
/// exposition endpoint for point-in-time values (in-flight queries, queue
/// depth) that are not registry counters.
pub fn push_gauge(out: &mut String, name: &str, value: u64) {
    let name = sanitize_metric_name(name);
    out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
}

/// Render every registry metric in Prometheus text format. Registry locks
/// are only held to clone the metric handles (see
/// [`Registry::counters_snapshot`]); all formatting happens outside them.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, counter) in registry.counters_snapshot() {
        let mut name = sanitize_metric_name(&name);
        if !name.ends_with("_total") {
            name.push_str("_total");
        }
        out.push_str(&format!(
            "# TYPE {name} counter\n{name} {}\n",
            counter.get()
        ));
    }
    for (name, histogram) in registry.histograms_snapshot() {
        let name = sanitize_metric_name(&name);
        let snap = histogram.snapshot();
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        // Emit buckets up to the one holding the observed max; everything
        // above is covered by +Inf (bucket 63's finite bound is u64::MAX,
        // so it is always folded into +Inf). An empty histogram gets just
        // +Inf.
        let top = if snap.count > 0 {
            bucket_index(snap.max)
        } else {
            0
        };
        for (i, bucket) in snap.buckets.iter().enumerate().take((top + 1).min(63)) {
            cumulative += bucket;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper_bound(i)
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        out.push_str(&format!("{name}_sum {}\n", snap.sum));
        out.push_str(&format!("{name}_count {}\n", snap.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    /// Minimal exposition-format parser for the shapes we emit: returns
    /// `(name, labels, value)` per sample line, failing on malformed ones.
    fn parse(text: &str) -> Vec<(String, Option<String>, f64)> {
        let mut samples = Vec::new();
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, value) = line.rsplit_once(' ').expect("sample has a value");
            let value: f64 = value.parse().expect("numeric sample value");
            let (name, labels) = match head.split_once('{') {
                Some((name, rest)) => {
                    let labels = rest.strip_suffix('}').expect("closed label set");
                    (name.to_string(), Some(labels.to_string()))
                }
                None => (head.to_string(), None),
            };
            assert!(
                name.chars().enumerate().all(|(i, c)| {
                    c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
                }),
                "invalid metric name {name:?}"
            );
            samples.push((name, labels, value));
        }
        samples
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("serve.query.us"), "serve_query_us");
        assert_eq!(sanitize_metric_name("span.execute.ns"), "span_execute_ns");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a:b_c1"), "a:b_c1");
    }

    #[test]
    fn counters_and_histograms_parse() {
        let r = Registry::default();
        r.counter("serve.queries").add(3);
        let h = r.histogram("serve.query.us");
        for v in [1u64, 5, 5, 100, 100_000] {
            h.record(v);
        }
        let text = prometheus_text(&r);
        let samples = parse(&text);
        assert!(samples
            .iter()
            .any(|(n, l, v)| n == "serve_queries_total" && l.is_none() && *v == 3.0));
        assert!(samples
            .iter()
            .any(|(n, _, v)| n == "serve_query_us_sum" && *v == 100_111.0));
        assert!(samples
            .iter()
            .any(|(n, _, v)| n == "serve_query_us_count" && *v == 5.0));
        // TYPE lines precede their family's samples.
        let type_pos = text.find("# TYPE serve_query_us histogram").unwrap();
        let bucket_pos = text.find("serve_query_us_bucket").unwrap();
        assert!(type_pos < bucket_pos);
    }

    #[test]
    fn buckets_are_cumulative_and_monotone() {
        let r = Registry::default();
        let h = r.histogram("lat.us");
        for v in [1u64, 2, 4, 8, 1024, 1_000_000] {
            h.record(v);
        }
        let text = prometheus_text(&r);
        let buckets: Vec<(u64, f64)> = parse(&text)
            .into_iter()
            .filter(|(n, _, _)| n == "lat_us_bucket")
            .map(|(_, labels, v)| {
                let labels = labels.expect("bucket has le label");
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|r| r.strip_suffix('"'))
                    .expect("le label shape");
                let bound = if le == "+Inf" {
                    u64::MAX
                } else {
                    le.parse().unwrap()
                };
                (bound, v)
            })
            .collect();
        assert!(buckets.len() >= 2, "multiple bucket lines");
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bounds increase");
            assert!(pair[0].1 <= pair[1].1, "cumulative counts are monotone");
        }
        let (last_bound, last_count) = *buckets.last().unwrap();
        assert_eq!(last_bound, u64::MAX, "+Inf terminates the series");
        assert_eq!(last_count, 6.0, "+Inf bucket equals count");
    }

    #[test]
    fn empty_histogram_still_emits_a_valid_family() {
        let r = Registry::default();
        r.histogram("idle.us");
        let text = prometheus_text(&r);
        let samples = parse(&text);
        assert!(samples.iter().any(|(n, l, v)| n == "idle_us_bucket"
            && l.as_deref() == Some("le=\"+Inf\"")
            && *v == 0.0));
        assert!(samples
            .iter()
            .any(|(n, _, v)| n == "idle_us_count" && *v == 0.0));
    }
}
