//! Lightweight spans: scoped, monotonic timers on a thread-local stack.
//!
//! A [`Span`] is an RAII guard: creating it pushes a frame on the current
//! thread's span stack, dropping it records the elapsed wall time. Closed
//! spans are delivered to
//!
//! 1. any [`capture`] scopes active on the thread (innermost first),
//! 2. the global [`Subscriber`], when one is installed, and
//! 3. the global metrics registry, as a `span.<name>.ns` histogram.
//!
//! Spans are intended for *phase*-level instrumentation (parse, analyze,
//! rewrite, plan, optimize, execute) — a handful per query, not one per
//! row — so the constant per-span cost (one `Instant::now` pair plus a
//! histogram update) is negligible next to the work being measured.

use std::cell::RefCell;
use std::fmt;
use std::io::Write;
use std::rc::Rc;
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics;

/// A structured field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&FieldValue> for Json {
    fn from(v: &FieldValue) -> Json {
        match v {
            FieldValue::I64(v) => Json::Int(*v),
            FieldValue::U64(v) => Json::UInt(*v),
            FieldValue::F64(v) => Json::Float(*v),
            FieldValue::Bool(v) => Json::Bool(*v),
            FieldValue::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// A closed span, as delivered to collectors and subscribers.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Phase / operation name, e.g. `"rewrite"` or `"execute"`.
    pub name: &'static str,
    /// Structured fields attached via [`Span::field`].
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Nesting depth at open time (0 = no enclosing span on this thread).
    pub depth: usize,
    /// Start offset from the process-wide monotonic epoch.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub wall: Duration,
}

impl SpanRecord {
    /// The record as a JSON object (the JSON-lines sink's line format).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("span", Json::from(self.name)),
            ("depth", Json::from(self.depth)),
            ("start_us", Json::UInt(self.start.as_micros() as u64)),
            ("wall_us", Json::UInt(self.wall.as_micros() as u64)),
        ]);
        for (k, v) in &self.fields {
            obj.push(*k, Json::from(v));
        }
        obj
    }
}

/// Receives every closed span process-wide. Implementations must be cheap
/// or buffer internally: they run inline at span close.
pub trait Subscriber: Send + Sync {
    fn on_close(&self, record: &SpanRecord);
}

/// Human-readable sink: one indented line per closed span on stderr.
pub struct HumanSink;

impl Subscriber for HumanSink {
    fn on_close(&self, record: &SpanRecord) {
        let mut line = String::new();
        for _ in 0..record.depth {
            line.push_str("  ");
        }
        line.push_str(record.name);
        line.push_str(&format!(" {:.3}ms", record.wall.as_secs_f64() * 1e3));
        for (k, v) in &record.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

/// JSON-lines sink: one JSON object per closed span, written to any
/// `Write` target behind a mutex.
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> Subscriber for JsonLinesSink<W> {
    fn on_close(&self, record: &SpanRecord) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{}", record.to_json().render());
        }
    }
}

fn global_subscriber() -> &'static RwLock<Option<Box<dyn Subscriber>>> {
    static SUBSCRIBER: OnceLock<RwLock<Option<Box<dyn Subscriber>>>> = OnceLock::new();
    SUBSCRIBER.get_or_init(|| RwLock::new(None))
}

/// Install the process-wide subscriber (replacing any previous one).
pub fn set_subscriber(subscriber: Box<dyn Subscriber>) {
    *global_subscriber().write().unwrap() = Some(subscriber);
}

/// Remove the process-wide subscriber.
pub fn clear_subscriber() {
    *global_subscriber().write().unwrap() = None;
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

type CollectorHandle = Rc<RefCell<Vec<SpanRecord>>>;

thread_local! {
    static DEPTH: RefCell<usize> = const { RefCell::new(0) };
    static COLLECTORS: RefCell<Vec<CollectorHandle>> = const { RefCell::new(Vec::new()) };
}

/// An open span; created by [`span`], closed (and recorded) on drop.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct Span {
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    depth: usize,
    start_instant: Instant,
    start: Duration,
}

/// Open a span. The returned guard records the span when dropped.
pub fn span(name: &'static str) -> Span {
    let depth = DEPTH.with(|d| {
        let mut d = d.borrow_mut();
        let current = *d;
        *d += 1;
        current
    });
    let now = Instant::now();
    Span {
        name,
        fields: Vec::new(),
        depth,
        start_instant: now,
        start: now - epoch(),
    }
}

impl Span {
    /// Attach a structured field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.fields.push((key, value.into()));
        self
    }

    /// Attach a structured field to an already-bound span.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let wall = self.start_instant.elapsed();
        DEPTH.with(|d| {
            let mut d = d.borrow_mut();
            *d = d.saturating_sub(1);
        });
        let record = SpanRecord {
            name: self.name,
            fields: std::mem::take(&mut self.fields),
            depth: self.depth,
            start: self.start,
            wall,
        };
        // Latency histogram, always on: one atomic add per span.
        metrics::registry()
            .span_histogram(self.name)
            .record(wall.as_nanos() as u64);
        COLLECTORS.with(|c| {
            for collector in c.borrow().iter() {
                collector.borrow_mut().push(record.clone());
            }
        });
        if let Ok(guard) = global_subscriber().read() {
            if let Some(subscriber) = guard.as_ref() {
                subscriber.on_close(&record);
            }
        }
    }
}

/// Run `f`, collecting every span closed on this thread while it runs.
/// Spans are returned in close order (children before parents).
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanRecord>) {
    let collector: CollectorHandle = Rc::new(RefCell::new(Vec::new()));
    COLLECTORS.with(|c| c.borrow_mut().push(Rc::clone(&collector)));
    // Pop the collector even if `f` panics, so a poisoned test does not
    // leak collection into unrelated code on this thread.
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            COLLECTORS.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    let _guard = PopOnDrop;
    let value = f();
    drop(_guard);
    let records = Rc::try_unwrap(collector)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| rc.borrow().clone());
    (value, records)
}

/// Sum the wall time of captured spans per name, shallowest occurrence
/// only (nested re-entries of the same phase are not double-counted).
pub fn phase_totals(records: &[SpanRecord]) -> Vec<(&'static str, Duration)> {
    let mut totals: Vec<(&'static str, Duration)> = Vec::new();
    for r in records {
        if records.iter().any(|outer| {
            outer.name == r.name
                && outer.depth < r.depth
                && outer.start <= r.start
                && r.start + r.wall <= outer.start + outer.wall
        }) {
            continue; // nested re-entry of the same phase
        }
        match totals.iter_mut().find(|(n, _)| *n == r.name) {
            Some((_, d)) => *d += r.wall,
            None => totals.push((r.name, r.wall)),
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_json() {
        let (_, spans) = capture(|| {
            let _s = span("phase").field("rows", 7u64).field("kind", "inner");
        });
        let json = spans[0].to_json();
        assert_eq!(json.get("span"), Some(&Json::Str("phase".into())));
        assert_eq!(json.get("rows"), Some(&Json::UInt(7)));
        assert_eq!(json.get("kind"), Some(&Json::Str("inner".into())));
    }

    #[test]
    fn phase_totals_skips_nested_reentries() {
        let (_, spans) = capture(|| {
            let _outer = span("plan");
            let _inner = span("plan"); // CTE materialization re-enters
        });
        let totals = phase_totals(&spans);
        assert_eq!(totals.len(), 1);
        let (_, outer_total) = totals[0];
        // The nested span must not be added on top of the outer one.
        assert!(outer_total <= spans.iter().map(|s| s.wall).max().unwrap());
    }
}
