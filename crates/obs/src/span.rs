//! Lightweight spans: scoped, monotonic timers on a thread-local stack.
//!
//! A [`Span`] is an RAII guard: creating it pushes a frame on the current
//! thread's span stack, dropping it records the elapsed wall time. Closed
//! spans are delivered to
//!
//! 1. any collectors active on the thread — [`capture`] scopes and
//!    installed [`TraceContext`]s, innermost first,
//! 2. the global [`Subscriber`], when one is installed, and
//! 3. the global metrics registry, as a `span.<name>.ns` histogram.
//!
//! Spans are intended for *phase*-level instrumentation (parse, analyze,
//! rewrite, plan, optimize, execute) — a handful per query, not one per
//! row — so the constant per-span cost (one `Instant::now` pair plus a
//! histogram update) is negligible next to the work being measured.
//!
//! ## Cross-thread traces
//!
//! Collectors are `Arc`-based and shareable: a query thread snapshots its
//! active collector stack with [`current_trace`] and hands it to worker
//! threads, which [`adopt`](ThreadTrace::adopt_worker) it for the duration
//! of their work. Worker spans (tagged with the worker id and the worker's
//! [`SpanRecord::thread`] tag) land in the *same* collectors as the
//! coordinating thread's spans, so one query's trace includes its morsel
//! workers. The engine's parallel executor does this automatically.
//!
//! A [`TraceContext`] is a named, installable collector: it carries a
//! process-unique [`QueryId`] and flows through `ExecOptions` into the
//! engine, which installs it for the duration of the query. After the
//! query, [`TraceContext::take_records`] yields every span the query
//! closed, on any thread.

use std::cell::RefCell;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant, SystemTime};

use crate::json::Json;
use crate::metrics::{self, Histogram};

/// A structured field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&FieldValue> for Json {
    fn from(v: &FieldValue) -> Json {
        match v {
            FieldValue::I64(v) => Json::Int(*v),
            FieldValue::U64(v) => Json::UInt(*v),
            FieldValue::F64(v) => Json::Float(*v),
            FieldValue::Bool(v) => Json::Bool(*v),
            FieldValue::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// A closed span, as delivered to collectors and subscribers.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Phase / operation name, e.g. `"rewrite"` or `"execute"`.
    pub name: &'static str,
    /// Structured fields attached via [`Span::field`].
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Nesting depth at open time (0 = no enclosing span on this thread).
    pub depth: usize,
    /// Start offset from the process-wide monotonic epoch.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub wall: Duration,
    /// Small process-unique tag of the thread the span closed on, so
    /// cross-thread traces (morsel workers) stay distinguishable.
    pub thread: u64,
}

impl SpanRecord {
    /// Absolute start time in unix milliseconds, anchored to the wall
    /// clock recorded at epoch init (see [`epoch_unix_ms`]).
    pub fn start_unix_ms(&self) -> u64 {
        epoch_unix_ms().saturating_add(self.start.as_millis() as u64)
    }

    /// The record as a JSON object (the JSON-lines sink's line format).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("span", Json::from(self.name)),
            ("depth", Json::from(self.depth)),
            ("thread", Json::UInt(self.thread)),
            ("start_us", Json::UInt(self.start.as_micros() as u64)),
            ("start_unix_ms", Json::UInt(self.start_unix_ms())),
            ("wall_us", Json::UInt(self.wall.as_micros() as u64)),
        ]);
        for (k, v) in &self.fields {
            obj.push(*k, Json::from(v));
        }
        obj
    }
}

/// Receives every closed span process-wide. Implementations must be cheap
/// or buffer internally: they run inline at span close.
pub trait Subscriber: Send + Sync {
    fn on_close(&self, record: &SpanRecord);
}

/// Human-readable sink: one indented line per closed span on stderr.
pub struct HumanSink;

impl Subscriber for HumanSink {
    fn on_close(&self, record: &SpanRecord) {
        let mut line = String::new();
        for _ in 0..record.depth {
            line.push_str("  ");
        }
        line.push_str(record.name);
        line.push_str(&format!(" {:.3}ms", record.wall.as_secs_f64() * 1e3));
        for (k, v) in &record.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

/// JSON-lines sink: one JSON object per closed span, written to any
/// `Write` target behind a mutex.
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> Subscriber for JsonLinesSink<W> {
    fn on_close(&self, record: &SpanRecord) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{}", record.to_json().render());
        }
    }
}

fn global_subscriber() -> &'static RwLock<Option<Box<dyn Subscriber>>> {
    static SUBSCRIBER: OnceLock<RwLock<Option<Box<dyn Subscriber>>>> = OnceLock::new();
    SUBSCRIBER.get_or_init(|| RwLock::new(None))
}

/// Install the process-wide subscriber (replacing any previous one).
pub fn set_subscriber(subscriber: Box<dyn Subscriber>) {
    *global_subscriber().write().unwrap() = Some(subscriber);
}

/// Remove the process-wide subscriber.
pub fn clear_subscriber() {
    *global_subscriber().write().unwrap() = None;
}

/// The monotonic epoch paired with the wall-clock instant it was taken, so
/// relative span offsets can be anchored to absolute time.
struct EpochAnchor {
    start: Instant,
    unix_ms: u64,
}

fn anchor() -> &'static EpochAnchor {
    static EPOCH: OnceLock<EpochAnchor> = OnceLock::new();
    EPOCH.get_or_init(|| EpochAnchor {
        start: Instant::now(),
        unix_ms: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
    })
}

fn epoch() -> Instant {
    anchor().start
}

/// The wall-clock time (unix milliseconds) at which the process-wide
/// monotonic epoch was recorded. `epoch_unix_ms() + start_us/1000` turns
/// any span offset into absolute time, correlatable across processes and
/// restarts.
pub fn epoch_unix_ms() -> u64 {
    anchor().unix_ms
}

/// Small process-unique tag for the current thread (1, 2, 3, ... in thread
/// creation-touch order) — compact enough for trace exports, unlike
/// `ThreadId`'s opaque debug formatting.
pub fn thread_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TAG: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// A shareable span collector: worker threads adopting a trace push the
/// same handle, so all of a query's spans accumulate in one place.
type CollectorHandle = Arc<Mutex<Vec<SpanRecord>>>;

fn lock_collector(c: &CollectorHandle) -> std::sync::MutexGuard<'_, Vec<SpanRecord>> {
    c.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static DEPTH: RefCell<usize> = const { RefCell::new(0) };
    static COLLECTORS: RefCell<Vec<CollectorHandle>> = const { RefCell::new(Vec::new()) };
    /// Per-thread cache of `span.<name>.ns` histogram handles, so closing
    /// a span is one atomic add — no registry mutex, no name formatting.
    static SPAN_HISTS: RefCell<Vec<(&'static str, Arc<Histogram>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Record into the `span.<name>.ns` histogram through the per-thread
/// handle cache. Span names are a small static set, so the linear probe is
/// a few pointer-sized compares; only the first close of a name on a
/// thread touches the registry mutex.
fn record_span_ns(name: &'static str, ns: u64) {
    SPAN_HISTS.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((_, h)) = cache.iter().find(|(n, _)| *n == name) {
            h.record(ns);
            return;
        }
        let h = metrics::registry().span_histogram(name);
        h.record(ns);
        cache.push((name, h));
    });
}

/// An open span; created by [`span`], closed (and recorded) on drop.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct Span {
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    depth: usize,
    start_instant: Instant,
    start: Duration,
}

/// Open a span. The returned guard records the span when dropped.
pub fn span(name: &'static str) -> Span {
    let depth = DEPTH.with(|d| {
        let mut d = d.borrow_mut();
        let current = *d;
        *d += 1;
        current
    });
    let now = Instant::now();
    Span {
        name,
        fields: Vec::new(),
        depth,
        start_instant: now,
        start: now - epoch(),
    }
}

impl Span {
    /// Attach a structured field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.fields.push((key, value.into()));
        self
    }

    /// Attach a structured field to an already-bound span.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let wall = self.start_instant.elapsed();
        DEPTH.with(|d| {
            let mut d = d.borrow_mut();
            *d = d.saturating_sub(1);
        });
        let record = SpanRecord {
            name: self.name,
            fields: std::mem::take(&mut self.fields),
            depth: self.depth,
            start: self.start,
            wall,
            thread: thread_tag(),
        };
        // Latency histogram, always on: one atomic add per span.
        record_span_ns(self.name, wall.as_nanos() as u64);
        COLLECTORS.with(|c| {
            let stack = c.borrow();
            for (i, collector) in stack.iter().enumerate() {
                // The same collector can be installed twice (a session
                // installs a TraceContext and the engine re-installs the
                // one from ExecOptions); deliver once per distinct handle.
                if stack[..i].iter().any(|prev| Arc::ptr_eq(prev, collector)) {
                    continue;
                }
                lock_collector(collector).push(record.clone());
            }
        });
        if let Ok(guard) = global_subscriber().read() {
            if let Some(subscriber) = guard.as_ref() {
                subscriber.on_close(&record);
            }
        }
    }
}

/// Pops the top collector from the thread's stack on drop (panic-safe).
struct PopOnDrop;

impl Drop for PopOnDrop {
    fn drop(&mut self) {
        COLLECTORS.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Run `f`, collecting every span closed *under this collector* while it
/// runs — including spans closed by worker threads that adopted this
/// thread's trace (see [`current_trace`]). Spans are returned in close
/// order (children before parents on a given thread).
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanRecord>) {
    let collector: CollectorHandle = Arc::new(Mutex::new(Vec::new()));
    COLLECTORS.with(|c| c.borrow_mut().push(Arc::clone(&collector)));
    // Pop the collector even if `f` panics, so a poisoned test does not
    // leak collection into unrelated code on this thread.
    let _guard = PopOnDrop;
    let value = f();
    drop(_guard);
    let records = Arc::try_unwrap(collector)
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .unwrap_or_else(|arc| lock_collector(&arc).clone());
    (value, records)
}

/// Process-unique identifier of one traced query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    /// Allocate the next process-unique id (starts at 1).
    pub fn next() -> QueryId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        QueryId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A per-query trace context: a [`QueryId`] plus a shareable collector.
///
/// Created by whoever owns the query (the serve session loop, the bench
/// harness), cloned into `ExecOptions`, and installed on each thread that
/// does work for the query. Clones share the same collector; installing
/// the same context on nested scopes never duplicates records.
#[derive(Debug, Clone, Default)]
pub struct TraceContext {
    id: QueryId,
    collector: CollectorHandle,
}

impl Default for QueryId {
    fn default() -> QueryId {
        QueryId::next()
    }
}

impl TraceContext {
    /// A fresh context with a new [`QueryId`] and an empty collector.
    pub fn new() -> TraceContext {
        TraceContext {
            id: QueryId::next(),
            collector: Arc::new(Mutex::new(Vec::new())),
        }
    }

    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Install the context's collector on the current thread. Every span
    /// closed on this thread (and on workers that adopt this thread's
    /// trace) while the guard lives is recorded into the context.
    pub fn install(&self) -> TraceGuard {
        COLLECTORS.with(|c| c.borrow_mut().push(Arc::clone(&self.collector)));
        TraceGuard { _pop: PopOnDrop }
    }

    /// Drain everything collected so far, in close order.
    pub fn take_records(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *lock_collector(&self.collector))
    }

    /// Copy everything collected so far without draining.
    pub fn snapshot_records(&self) -> Vec<SpanRecord> {
        lock_collector(&self.collector).clone()
    }
}

/// Uninstalls a [`TraceContext`] from the current thread on drop.
#[must_use = "the context is uninstalled when the guard drops; bind it to a variable"]
pub struct TraceGuard {
    _pop: PopOnDrop,
}

/// A snapshot of the calling thread's active collector stack, cheap to
/// clone into worker threads (a `Vec` of `Arc`s).
#[derive(Clone)]
pub struct ThreadTrace {
    collectors: Vec<CollectorHandle>,
}

/// Snapshot the current thread's active collectors — every [`capture`]
/// scope and installed [`TraceContext`] — for handing to worker threads.
pub fn current_trace() -> ThreadTrace {
    ThreadTrace {
        collectors: COLLECTORS.with(|c| c.borrow().clone()),
    }
}

impl ThreadTrace {
    /// Whether anything is being collected (workers skip the worker span
    /// entirely for untraced queries, keeping the untraced path free).
    pub fn is_active(&self) -> bool {
        !self.collectors.is_empty()
    }

    /// Adopt the trace on the current (worker) thread: install every
    /// collector and open a `worker` span tagged with the worker id. The
    /// guard closes the span (recording it into the adopted collectors)
    /// and uninstalls on drop. A no-op for untraced queries.
    pub fn adopt_worker(&self, worker: usize) -> WorkerGuard {
        if !self.is_active() {
            return WorkerGuard {
                span: None,
                installed: 0,
            };
        }
        COLLECTORS.with(|c| c.borrow_mut().extend(self.collectors.iter().cloned()));
        WorkerGuard {
            span: Some(span("worker").field("worker", worker)),
            installed: self.collectors.len(),
        }
    }
}

/// Uninstalls an adopted trace from a worker thread on drop.
#[must_use = "the adopted trace is uninstalled when the guard drops; bind it to a variable"]
pub struct WorkerGuard {
    span: Option<Span>,
    installed: usize,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        // Close the worker span *before* uninstalling, so its record is
        // delivered to the adopted collectors.
        self.span.take();
        if self.installed > 0 {
            COLLECTORS.with(|c| {
                let mut stack = c.borrow_mut();
                let keep = stack.len().saturating_sub(self.installed);
                stack.truncate(keep);
            });
        }
    }
}

/// Sum the wall time of captured spans per name, shallowest occurrence
/// only (nested re-entries of the same phase on the same thread are not
/// double-counted).
pub fn phase_totals(records: &[SpanRecord]) -> Vec<(&'static str, Duration)> {
    let mut totals: Vec<(&'static str, Duration)> = Vec::new();
    for r in records {
        if records.iter().any(|outer| {
            outer.name == r.name
                && outer.thread == r.thread
                && outer.depth < r.depth
                && outer.start <= r.start
                && r.start + r.wall <= outer.start + outer.wall
        }) {
            continue; // nested re-entry of the same phase
        }
        match totals.iter_mut().find(|(n, _)| *n == r.name) {
            Some((_, d)) => *d += r.wall,
            None => totals.push((r.name, r.wall)),
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_json() {
        let (_, spans) = capture(|| {
            let _s = span("phase").field("rows", 7u64).field("kind", "inner");
        });
        let json = spans[0].to_json();
        assert_eq!(json.get("span"), Some(&Json::Str("phase".into())));
        assert_eq!(json.get("rows"), Some(&Json::UInt(7)));
        assert_eq!(json.get("kind"), Some(&Json::Str("inner".into())));
        assert!(matches!(json.get("thread"), Some(Json::UInt(_))));
        assert!(matches!(json.get("start_unix_ms"), Some(Json::UInt(_))));
    }

    #[test]
    fn phase_totals_skips_nested_reentries() {
        let (_, spans) = capture(|| {
            let _outer = span("plan");
            let _inner = span("plan"); // CTE materialization re-enters
        });
        let totals = phase_totals(&spans);
        assert_eq!(totals.len(), 1);
        let (_, outer_total) = totals[0];
        // The nested span must not be added on top of the outer one.
        assert!(outer_total <= spans.iter().map(|s| s.wall).max().unwrap());
    }

    #[test]
    fn trace_context_collects_and_drains() {
        let ctx = TraceContext::new();
        {
            let _g = ctx.install();
            let _s = span("phase_a");
        }
        {
            // Spans closed outside the install window are not collected.
            let _s = span("phase_b");
        }
        let records = ctx.take_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "phase_a");
        assert!(ctx.take_records().is_empty(), "take drains");
    }

    #[test]
    fn double_install_does_not_duplicate_records() {
        let ctx = TraceContext::new();
        {
            let _outer = ctx.install();
            let _inner = ctx.install(); // e.g. session + engine both install
            let _s = span("phase");
        }
        assert_eq!(ctx.take_records().len(), 1);
    }

    #[test]
    fn workers_deliver_into_the_adopting_capture() {
        let (_, spans) = capture(|| {
            let trace = current_trace();
            assert!(trace.is_active());
            std::thread::scope(|scope| {
                for w in 0..2 {
                    let trace = &trace;
                    scope.spawn(move || {
                        let _g = trace.adopt_worker(w);
                        let _s = span("inner_work");
                    });
                }
            });
        });
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        assert_eq!(spans.iter().filter(|s| s.name == "inner_work").count(), 2);
        let main = thread_tag();
        assert!(workers.iter().all(|s| s.thread != main));
        assert!(workers
            .iter()
            .any(|s| s.fields.iter().any(|(k, _)| *k == "worker")));
    }

    #[test]
    fn adopting_an_empty_trace_is_inert() {
        let trace = current_trace();
        assert!(!trace.is_active());
        let before = thread_tag(); // touch the tag, not under test
        let _ = before;
        let (_, spans) = capture(|| {
            let _g = trace.adopt_worker(0); // adopted *before* the capture began
        });
        assert!(spans.is_empty(), "no worker span for untraced work");
    }

    #[test]
    fn query_ids_are_unique() {
        let a = QueryId::next();
        let b = QueryId::next();
        assert_ne!(a, b);
        assert!(b.value() > a.value());
    }
}
