//! A global metrics registry: named counters and log-scale histograms.
//!
//! Everything is lock-free on the hot path: looking a metric up by name
//! takes a mutex, but the returned handle is an `Arc` the caller keeps and
//! updates with plain atomic operations. Histograms bucket values by
//! power of two (64 buckets covering the full `u64` range), which is
//! plenty of resolution for latency-style data while keeping `record` to
//! two atomic adds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 64;

/// A histogram with power-of-two buckets: bucket `i` counts values whose
/// most significant set bit is `i` (value 0 falls in bucket 0).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
pub fn bucket_index(value: u64) -> usize {
    (63 - value.max(1).leading_zeros()) as usize
}

/// The inclusive upper bound of a bucket.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (2u64 << index) - 1
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket holding the
    /// q-th value (`0.0 <= q <= 1.0`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("mean", Json::Float(self.mean())),
            ("p50", Json::UInt(self.quantile(0.50))),
            ("p90", Json::UInt(self.quantile(0.90))),
            ("p99", Json::UInt(self.quantile(0.99))),
            ("max", Json::UInt(self.max)),
        ])
    }
}

/// The registry: a process-wide namespace of counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().unwrap();
        match counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                counters.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().unwrap();
        match histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                histograms.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// The `span.<name>.ns` histogram fed automatically at span close.
    pub(crate) fn span_histogram(&self, span_name: &str) -> Arc<Histogram> {
        self.histogram(&format!("span.{span_name}.ns"))
    }

    /// Name-sorted `Arc` handles of every counter. The lock is held only
    /// to clone the map, never while reading values or serializing.
    pub fn counters_snapshot(&self) -> Vec<(String, Arc<Counter>)> {
        let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        counters
            .iter()
            .map(|(name, c)| (name.clone(), Arc::clone(c)))
            .collect()
    }

    /// Name-sorted `Arc` handles of every histogram, cloned under the lock
    /// like [`counters_snapshot`](Registry::counters_snapshot).
    pub fn histograms_snapshot(&self) -> Vec<(String, Arc<Histogram>)> {
        let histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        histograms
            .iter()
            .map(|(name, h)| (name.clone(), Arc::clone(h)))
            .collect()
    }

    /// Snapshot every metric as a JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum, ...}}}`.
    /// The registry locks are released before any serialization happens,
    /// so a scrape never stalls concurrent metric registration.
    pub fn snapshot_json(&self) -> Json {
        let counters = self
            .counters_snapshot()
            .into_iter()
            .map(|(name, c)| (name, Json::UInt(c.get())))
            .collect::<Vec<_>>();
        let histograms = self
            .histograms_snapshot()
            .into_iter()
            .map(|(name, h)| (name, h.snapshot().to_json()))
            .collect::<Vec<_>>();
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("histograms", Json::Obj(histograms)),
        ])
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::default();
        r.counter("q").inc();
        r.counter("q").add(4);
        assert_eq!(r.counter("q").get(), 5);
    }

    #[test]
    fn bucket_indices_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn snapshot_quantiles_bound_the_data() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 10_000);
        assert!(s.quantile(1.0) == 10_000);
        assert!(s.quantile(0.5) >= 3);
        assert!(s.quantile(0.0) >= 1);
    }
}
