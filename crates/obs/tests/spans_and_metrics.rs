//! Unit tests for the observability layer: span nesting and timing
//! monotonicity, capture scoping, and histogram bucketing.

use std::time::Duration;

use conquer_obs::metrics::{bucket_index, bucket_upper_bound, Histogram};
use conquer_obs::{capture, phase_totals, span, Json};

#[test]
fn spans_nest_and_close_inner_first() {
    let (_, spans) = capture(|| {
        let _parse = span("parse");
        drop(_parse);
        let _execute = span("execute");
        let _join = span("hash_join");
        let _probe = span("probe");
    });
    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    assert_eq!(names, ["parse", "probe", "hash_join", "execute"]);
    let depths: Vec<usize> = spans.iter().map(|s| s.depth).collect();
    assert_eq!(depths, [0, 2, 1, 0]);
}

#[test]
fn span_timing_is_monotonic_and_contains_children() {
    let (_, spans) = capture(|| {
        let _outer = span("outer");
        std::thread::sleep(Duration::from_millis(2));
        let _inner = span("inner");
        std::thread::sleep(Duration::from_millis(2));
    });
    let inner = spans.iter().find(|s| s.name == "inner").unwrap();
    let outer = spans.iter().find(|s| s.name == "outer").unwrap();
    // Start offsets come from one monotonic epoch: the child starts after
    // its parent and ends no later.
    assert!(inner.start >= outer.start);
    assert!(inner.start + inner.wall <= outer.start + outer.wall);
    // Wall time is monotone in the work performed.
    assert!(outer.wall >= inner.wall);
    assert!(inner.wall >= Duration::from_millis(2));
}

#[test]
fn capture_scopes_do_not_leak() {
    let (_, first) = capture(|| {
        let _s = span("inside");
    });
    let _stray = span("outside-created");
    drop(_stray);
    let (_, second) = capture(|| {});
    assert_eq!(first.len(), 1);
    assert!(
        second.is_empty(),
        "span closed outside the capture leaked in"
    );
}

#[test]
fn nested_captures_both_observe_inner_spans() {
    let ((_, inner_spans), outer_spans) = capture(|| {
        capture(|| {
            let _s = span("shared");
        })
    });
    assert_eq!(inner_spans.len(), 1);
    assert_eq!(outer_spans.len(), 1);
}

#[test]
fn phase_totals_aggregate_repeated_phases() {
    let (_, spans) = capture(|| {
        for _ in 0..3 {
            let _s = span("execute");
        }
        let _other = span("plan");
    });
    let totals = phase_totals(&spans);
    let names: Vec<&str> = totals.iter().map(|(n, _)| *n).collect();
    assert_eq!(names, ["execute", "plan"]);
    let execute_total = totals[0].1;
    let summed: Duration = spans
        .iter()
        .filter(|s| s.name == "execute")
        .map(|s| s.wall)
        .sum();
    assert_eq!(execute_total, summed);
}

#[test]
fn span_records_export_fields_to_json() {
    let (_, spans) = capture(|| {
        let _s = span("plan").field("nodes", 5u64).field("pushdown", true);
    });
    let json = spans[0].to_json();
    assert_eq!(json.get("nodes"), Some(&Json::UInt(5)));
    assert_eq!(json.get("pushdown"), Some(&Json::Bool(true)));
    assert!(json.get("wall_us").is_some());
}

#[test]
fn histogram_buckets_by_power_of_two() {
    let h = Histogram::default();
    // 1 and 1 share bucket 0; 5, 6, 7 share bucket 2 (values 4..=7).
    for v in [1u64, 1, 5, 6, 7, 300] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.buckets[bucket_index(1)], 2);
    assert_eq!(s.buckets[bucket_index(5)], 3);
    assert_eq!(s.buckets[bucket_index(300)], 1);
    assert_eq!(s.count, 6);
    assert_eq!(s.sum, 1 + 1 + 5 + 6 + 7 + 300);
    assert_eq!(s.max, 300);
}

#[test]
fn histogram_bucket_bounds_are_consistent() {
    for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
        let i = bucket_index(v);
        assert!(
            v <= bucket_upper_bound(i),
            "value {v} above bound of bucket {i}"
        );
        if i > 0 {
            assert!(
                v > bucket_upper_bound(i - 1),
                "value {v} fits bucket {}",
                i - 1
            );
        }
    }
}

#[test]
fn histogram_quantiles_are_monotone() {
    let h = Histogram::default();
    for v in 1..=1000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    let (p50, p90, p99) = (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99));
    assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max);
    assert!(p50 >= 500 / 2, "p50 {p50} implausibly low");
    assert!((s.mean() - 500.5).abs() < 1.0);
}

#[test]
fn registry_snapshot_includes_span_histograms() {
    {
        let _s = span("snapshot_probe");
    }
    let snap = conquer_obs::registry().snapshot_json();
    let histograms = snap.get("histograms").expect("histograms key");
    assert!(
        histograms.get("span.snapshot_probe.ns").is_some(),
        "span close must feed the registry"
    );
}
