//! Brute-force repair enumeration: the semantic ground truth for consistent
//! query answering.
//!
//! A **repair** of an inconsistent database keeps exactly one tuple per key
//! value of every constrained relation and is otherwise identical to the
//! original (Definition 1 of the paper; for key constraints the minimality
//! condition reduces to exactly this shape). This crate enumerates every
//! repair and evaluates queries on each one, computing consistent answers
//! (Definition 2), possible answers, and range-consistent answers
//! (Definition 5) *by definition*.
//!
//! The number of repairs is exponential in the number of violated keys, so
//! this is strictly a testing oracle and a baseline for the benchmarks —
//! which is precisely the point the paper makes: rewriting-based answering
//! scales where materializing repairs cannot.

pub mod probabilistic;

pub use probabilistic::{answer_probabilities, most_probable_answers, ProbableAnswer};

use std::collections::HashMap;

use conquer_core::ConstraintSet;
use conquer_engine::value::Key;
use conquer_engine::{Database, EngineError, Row, Rows, Table, Value};

/// Errors from the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairError {
    /// The database has more repairs than the configured cap.
    TooManyRepairs { repairs: u128, cap: u128 },
    /// Underlying engine failure.
    Engine(String),
    /// Misuse of the oracle API.
    Invalid(String),
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::TooManyRepairs { repairs, cap } => {
                write!(
                    f,
                    "database has {repairs} repairs, exceeding the oracle cap of {cap}"
                )
            }
            RepairError::Engine(msg) => write!(f, "engine error: {msg}"),
            RepairError::Invalid(msg) => write!(f, "invalid oracle use: {msg}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<EngineError> for RepairError {
    fn from(e: EngineError) -> Self {
        RepairError::Engine(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, RepairError>;

/// Default cap on the number of repairs the oracle will enumerate.
pub const DEFAULT_REPAIR_CAP: u128 = 1 << 20;

/// One constrained relation, split into its key groups.
struct GroupedRelation {
    name: String,
    columns: Vec<(String, conquer_engine::DataType)>,
    /// Tuple groups; each repair picks exactly one row from each group.
    groups: Vec<Vec<Row>>,
}

/// The repair enumerator.
pub struct RepairEnumerator {
    base: Database,
    grouped: Vec<GroupedRelation>,
    total: u128,
}

impl RepairEnumerator {
    /// Prepare enumeration; errors if the repair count exceeds `cap`.
    pub fn new(db: &Database, sigma: &ConstraintSet, cap: u128) -> Result<RepairEnumerator> {
        let base = Database::new();
        let mut grouped = Vec::new();
        let mut total: u128 = 1;
        for name in db.table_names() {
            let table = db.table(&name)?;
            match sigma.key_of(&name) {
                None => base.register((*table).clone())?,
                Some(key) => {
                    let key_idx: Vec<usize> = key
                        .iter()
                        .map(|k| table.column_index(k))
                        .collect::<std::result::Result<_, _>>()?;
                    let mut group_map: HashMap<Key, usize> = HashMap::new();
                    let mut groups: Vec<Vec<Row>> = Vec::new();
                    for row in table.rows() {
                        let kv: Vec<Value> = key_idx.iter().map(|i| row[*i].clone()).collect();
                        let k = Key::from_values(&kv);
                        let gi = *group_map.entry(k).or_insert_with(|| {
                            groups.push(Vec::new());
                            groups.len() - 1
                        });
                        groups[gi].push(row.clone());
                    }
                    for g in &groups {
                        total = total.saturating_mul(g.len() as u128);
                        if total > cap {
                            return Err(RepairError::TooManyRepairs {
                                repairs: total,
                                cap,
                            });
                        }
                    }
                    let columns = table
                        .schema()
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), c.ty))
                        .collect();
                    grouped.push(GroupedRelation {
                        name,
                        columns,
                        groups,
                    });
                }
            }
        }
        Ok(RepairEnumerator {
            base,
            grouped,
            total,
        })
    }

    /// Total number of repairs.
    pub fn repair_count(&self) -> u128 {
        self.total
    }

    /// Visit every repair as a fully materialized [`Database`].
    ///
    /// The same `Database` value is reused across calls; constrained tables
    /// are re-registered with the current repair's tuples.
    pub fn for_each_repair(&self, mut f: impl FnMut(&Database) -> Result<()>) -> Result<()> {
        // Mixed-radix counter across every group of every relation.
        let radices: Vec<usize> = self
            .grouped
            .iter()
            .flat_map(|r| r.groups.iter().map(Vec::len))
            .collect();
        let mut digits = vec![0usize; radices.len()];
        loop {
            // Materialize the constrained relations under this choice.
            let mut d = 0;
            for rel in &self.grouped {
                let cols: Vec<(&str, conquer_engine::DataType)> =
                    rel.columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                let mut t = Table::new(rel.name.clone(), cols);
                for g in &rel.groups {
                    t.extend_unchecked([g[digits[d]].clone()]);
                    d += 1;
                }
                self.base.register(t)?;
            }
            f(&self.base)?;

            // Increment the counter.
            let mut i = 0;
            loop {
                if i == digits.len() {
                    return Ok(());
                }
                digits[i] += 1;
                if digits[i] < radices[i] {
                    break;
                }
                digits[i] = 0;
                i += 1;
            }
        }
    }
}

/// A bag of rows keyed by value, remembering a representative row.
#[derive(Debug, Default)]
struct RowBag {
    counts: HashMap<Key, (Row, u64)>,
}

impl RowBag {
    fn from_rows(rows: &Rows) -> RowBag {
        let mut bag = RowBag::default();
        for row in &rows.rows {
            bag.counts
                .entry(Key::from_values(row))
                .and_modify(|(_, c)| *c += 1)
                .or_insert_with(|| (row.clone(), 1));
        }
        bag
    }

    /// Multiset intersection: keep the minimum multiplicity.
    fn intersect(&mut self, other: &RowBag) {
        self.counts.retain(|k, (_, c)| match other.counts.get(k) {
            Some((_, oc)) => {
                *c = (*c).min(*oc);
                true
            }
            None => false,
        });
    }

    /// Multiset union with maximum multiplicity (possible answers).
    fn union_max(&mut self, other: &RowBag) {
        for (k, (row, oc)) in &other.counts {
            self.counts
                .entry(k.clone())
                .and_modify(|(_, c)| *c = (*c).max(*oc))
                .or_insert_with(|| (row.clone(), *oc));
        }
    }

    fn into_rows(self, schema: conquer_engine::Schema) -> Rows {
        let mut rows = Vec::new();
        let mut entries: Vec<(Row, u64)> = self.counts.into_values().collect();
        // Deterministic output order for tests.
        entries.sort_by(|(a, _), (b, _)| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        for (row, count) in entries {
            for _ in 0..count {
                rows.push(row.clone());
            }
        }
        Rows { schema, rows }
    }
}

/// Consistent answers by definition: the bag-intersection (minimum
/// multiplicity) of the query result over every repair.
pub fn consistent_answers_oracle(db: &Database, sql: &str, sigma: &ConstraintSet) -> Result<Rows> {
    let enumerator = RepairEnumerator::new(db, sigma, DEFAULT_REPAIR_CAP)?;
    let mut acc: Option<(RowBag, conquer_engine::Schema)> = None;
    enumerator.for_each_repair(|repair| {
        let rows = repair.query(sql)?;
        let bag = RowBag::from_rows(&rows);
        match &mut acc {
            None => acc = Some((bag, rows.schema)),
            Some((current, _)) => current.intersect(&bag),
        }
        Ok(())
    })?;
    let (bag, schema) = acc.expect("at least one repair always exists");
    Ok(bag.into_rows(schema))
}

/// Possible answers by definition: the union of the query result over every
/// repair (maximum multiplicity).
pub fn possible_answers_oracle(db: &Database, sql: &str, sigma: &ConstraintSet) -> Result<Rows> {
    let enumerator = RepairEnumerator::new(db, sigma, DEFAULT_REPAIR_CAP)?;
    let mut acc: Option<(RowBag, conquer_engine::Schema)> = None;
    enumerator.for_each_repair(|repair| {
        let rows = repair.query(sql)?;
        let bag = RowBag::from_rows(&rows);
        match &mut acc {
            None => acc = Some((bag, rows.schema)),
            Some((current, _)) => current.union_max(&bag),
        }
        Ok(())
    })?;
    let (bag, schema) = acc.expect("at least one repair always exists");
    Ok(bag.into_rows(schema))
}

/// One range-consistent answer computed by the oracle: the group values
/// followed by per-aggregate `[min, max]` ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeAnswer {
    pub group: Row,
    pub ranges: Vec<(Value, Value)>,
}

/// Range-consistent answers by definition (Definition 5): run the aggregate
/// query on every repair; a group is an answer when it appears in *all*
/// repairs, and its ranges are the min/max of the aggregate values observed.
///
/// `group_arity` says how many leading output columns are grouped
/// attributes; the rest are aggregates. Aggregates that are NULL in some
/// repair (e.g. an empty SUM) are treated as absent from that repair's
/// range, matching the rewriting's 0-normalization only when the caller
/// arranges it; tests use non-NULL data.
pub fn range_consistent_oracle(
    db: &Database,
    sql: &str,
    sigma: &ConstraintSet,
    group_arity: usize,
) -> Result<Vec<RangeAnswer>> {
    let enumerator = RepairEnumerator::new(db, sigma, DEFAULT_REPAIR_CAP)?;
    let total = enumerator.repair_count();
    // group key -> (group values, per-aggregate (min, max), repairs seen in)
    type GroupRanges = HashMap<Key, (Row, Vec<(Value, Value)>, u128)>;
    let mut seen: GroupRanges = HashMap::new();
    let mut agg_arity: Option<usize> = None;
    enumerator.for_each_repair(|repair| {
        let rows = repair.query(sql)?;
        if rows.schema.len() < group_arity {
            return Err(RepairError::Invalid(format!(
                "query returns {} columns but group_arity is {group_arity}",
                rows.schema.len()
            )));
        }
        agg_arity = Some(rows.schema.len() - group_arity);
        for row in &rows.rows {
            let group: Row = row[..group_arity].to_vec();
            let aggs = &row[group_arity..];
            let key = Key::from_values(&group);
            let entry = seen.entry(key).or_insert_with(|| {
                (
                    group.clone(),
                    aggs.iter().map(|v| (v.clone(), v.clone())).collect(),
                    0,
                )
            });
            entry.2 += 1;
            for (slot, v) in entry.1.iter_mut().zip(aggs) {
                if v.total_cmp(&slot.0).is_lt() {
                    slot.0 = v.clone();
                }
                if v.total_cmp(&slot.1).is_gt() {
                    slot.1 = v.clone();
                }
            }
        }
        Ok(())
    })?;
    let mut out: Vec<RangeAnswer> = seen
        .into_values()
        .filter(|(_, _, count)| *count == total)
        .map(|(group, ranges, _)| RangeAnswer { group, ranges })
        .collect();
    out.sort_by(|a, b| {
        for (x, y) in a.group.iter().zip(&b.group) {
            let ord = x.total_cmp(y);
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(out)
}

/// Answers with their repair support: the fraction of repairs in which each
/// answer tuple appears (the "voting" semantics sketched in Section 8 of
/// the paper). An answer with support 1.0 is a consistent answer.
pub fn answers_with_support(
    db: &Database,
    sql: &str,
    sigma: &ConstraintSet,
) -> Result<Vec<(Row, f64)>> {
    let enumerator = RepairEnumerator::new(db, sigma, DEFAULT_REPAIR_CAP)?;
    let total = enumerator.repair_count() as f64;
    let mut counts: HashMap<Key, (Row, u128)> = HashMap::new();
    enumerator.for_each_repair(|repair| {
        let rows = repair.query(sql)?;
        let mut seen_this_repair: HashMap<Key, Row> = HashMap::new();
        for row in &rows.rows {
            seen_this_repair.insert(Key::from_values(row), row.clone());
        }
        for (k, row) in seen_this_repair {
            counts
                .entry(k)
                .and_modify(|(_, c)| *c += 1)
                .or_insert((row, 1));
        }
        Ok(())
    })?;
    let mut out: Vec<(Row, f64)> = counts
        .into_values()
        .map(|(row, c)| (row, c as f64 / total))
        .collect();
    out.sort_by(|(a, sa), (b, sb)| {
        sb.partial_cmp(sa).unwrap().then_with(|| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        })
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_db() -> Database {
        let db = Database::new();
        db.run_script(
            "create table customer (custkey text, acctbal float);
             insert into customer values
               ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
        )
        .unwrap();
        db
    }

    #[test]
    fn figure1_has_four_repairs() {
        // Example 2 of the paper: D_R1..D_R4.
        let db = figure1_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let e = RepairEnumerator::new(&db, &sigma, 100).unwrap();
        assert_eq!(e.repair_count(), 4);
        let mut sizes = Vec::new();
        e.for_each_repair(|r| {
            sizes.push(r.table("customer").unwrap().len());
            Ok(())
        })
        .unwrap();
        assert_eq!(sizes, vec![3, 3, 3, 3]);
    }

    #[test]
    fn oracle_consistent_answers_match_example1() {
        let db = figure1_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let rows = consistent_answers_oracle(
            &db,
            "select custkey from customer where acctbal > 1000",
            &sigma,
        )
        .unwrap();
        let vals: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(vals, vec!["c2", "c3"]);
    }

    #[test]
    fn oracle_possible_answers_match_original_query() {
        let db = figure1_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let rows = possible_answers_oracle(
            &db,
            "select custkey from customer where acctbal > 1000",
            &sigma,
        )
        .unwrap();
        let vals: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
        // c3 has multiplicity... in each repair c3 appears once (one tuple
        // per repair), so the max multiplicity is 1.
        assert_eq!(vals, vec!["c1", "c2", "c3"]);
    }

    #[test]
    fn oracle_range_consistent_matches_example5() {
        let db = Database::new();
        db.run_script(
            "create table customer (custkey text, nationkey text, mktsegment text, acctbal float);
             insert into customer values
               ('c1', 'n1', 'building', 1000),
               ('c1', 'n1', 'building', 2000),
               ('c2', 'n1', 'building', 500),
               ('c2', 'n1', 'banking', 600),
               ('c3', 'n2', 'banking', 100);",
        )
        .unwrap();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let answers =
            range_consistent_oracle(&db, "select sum(acctbal) from customer", &sigma, 0).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            answers[0].ranges,
            vec![(Value::Float(1600.0), Value::Float(2700.0))]
        );
    }

    #[test]
    fn oracle_range_consistent_grouped_matches_example6() {
        let db = Database::new();
        db.run_script(
            "create table customer (custkey text, nationkey text, mktsegment text, acctbal float);
             insert into customer values
               ('c1', 'n1', 'building', 1000),
               ('c1', 'n1', 'building', 2000),
               ('c2', 'n1', 'building', 500),
               ('c2', 'n1', 'banking', 600),
               ('c3', 'n2', 'banking', 100);",
        )
        .unwrap();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let answers = range_consistent_oracle(
            &db,
            "select nationkey, sum(acctbal) from customer
             where mktsegment = 'building' group by nationkey",
            &sigma,
            1,
        )
        .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].group, vec![Value::str("n1")]);
        assert_eq!(
            answers[0].ranges,
            vec![(Value::Float(1000.0), Value::Float(2500.0))]
        );
    }

    #[test]
    fn support_voting_semantics() {
        let db = figure1_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let support = answers_with_support(
            &db,
            "select custkey from customer where acctbal > 1000",
            &sigma,
        )
        .unwrap();
        // c2 and c3 appear in all 4 repairs; c1 in 2 of 4.
        let by_name: HashMap<String, f64> = support
            .into_iter()
            .map(|(r, s)| (r[0].to_string(), s))
            .collect();
        assert_eq!(by_name["c2"], 1.0);
        assert_eq!(by_name["c3"], 1.0);
        assert_eq!(by_name["c1"], 0.5);
    }

    #[test]
    fn repair_cap_enforced() {
        let db = Database::new();
        let mut script =
            String::from("create table t (k integer, v integer);\ninsert into t values ");
        // 20 keys with 2 tuples each -> 2^20 repairs.
        let rows: Vec<String> = (0..20)
            .flat_map(|k| [format!("({k}, 0)"), format!("({k}, 1)")])
            .collect();
        script.push_str(&rows.join(", "));
        db.run_script(&script).unwrap();
        let sigma = ConstraintSet::new().with_key("t", ["k"]);
        let Err(err) = RepairEnumerator::new(&db, &sigma, 1000) else {
            panic!("expected TooManyRepairs");
        };
        assert!(matches!(err, RepairError::TooManyRepairs { .. }));
    }

    #[test]
    fn consistent_database_has_one_repair() {
        let db = Database::new();
        db.run_script(
            "create table t (k integer, v integer); insert into t values (1, 10), (2, 20);",
        )
        .unwrap();
        let sigma = ConstraintSet::new().with_key("t", ["k"]);
        let e = RepairEnumerator::new(&db, &sigma, 10).unwrap();
        assert_eq!(e.repair_count(), 1);
        let rows = consistent_answers_oracle(&db, "select v from t", &sigma).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unconstrained_tables_pass_through() {
        let db = Database::new();
        db.run_script(
            "create table t (k integer, v integer); insert into t values (1, 10), (1, 20);
             create table u (x integer); insert into u values (7);",
        )
        .unwrap();
        let sigma = ConstraintSet::new().with_key("t", ["k"]);
        let e = RepairEnumerator::new(&db, &sigma, 10).unwrap();
        assert_eq!(e.repair_count(), 2);
        e.for_each_repair(|r| {
            assert_eq!(r.table("u").unwrap().len(), 1);
            Ok(())
        })
        .unwrap();
    }
}
