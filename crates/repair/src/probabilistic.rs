//! Probabilistic consistent answering — the Section 8 extension.
//!
//! The paper closes with: "our rewritings extend naturally to ... a
//! semantics under which each tuple is given a probability of being
//! correct. We are currently experimenting with rewritings which return
//! the most probable answer over an inconsistent database in which each
//! tuple is assigned a probability of being consistent."
//!
//! This module implements that semantics by exact enumeration: every tuple
//! carries a weight; within each key group the weights normalize to a
//! probability distribution over which tuple the repair keeps (uniform when
//! no weights are supplied — the "all repairs are equally likely" model);
//! a repair's probability is the product of its choices, and an answer's
//! probability is the total probability of the repairs that return it.
//! The consistent answers of Definition 2 are exactly the answers with
//! probability 1.

use std::collections::HashMap;

use conquer_core::ConstraintSet;
use conquer_engine::value::Key;
use conquer_engine::{Database, Row, Value};

use crate::{RepairEnumerator, RepairError, Result};

/// Per-tuple weights for one relation: a function from row to
/// (non-negative) weight. Rows of a key group with all-zero weights are
/// treated as uniform.
pub type WeightFn<'a> = &'a dyn Fn(&Row) -> f64;

/// One probabilistic answer: the tuple and the probability that a randomly
/// chosen repair (under the tuple-weight model) returns it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbableAnswer {
    pub row: Row,
    pub probability: f64,
}

/// Compute the probability of every possible answer to `sql`, under
/// per-relation tuple weights. Relations without an entry in `weights` use
/// the uniform model.
///
/// Enumeration is exponential in the number of violated keys; this is the
/// reference implementation the future rewriting-based version would be
/// validated against (mirroring how `conquer-repair` validates the
/// Theorem 1/2 rewritings).
pub fn answer_probabilities(
    db: &Database,
    sql: &str,
    sigma: &ConstraintSet,
    weights: &HashMap<String, WeightFn<'_>>,
) -> Result<Vec<ProbableAnswer>> {
    let enumerator = RepairEnumerator::new(db, sigma, crate::DEFAULT_REPAIR_CAP)?;

    // Probability of each repair = product over key groups of the chosen
    // tuple's normalized weight. We recover the choice probabilities by
    // asking the enumerator for per-repair weights.
    let repair_weights = repair_weight_table(db, sigma, weights)?;

    let mut totals: HashMap<Key, (Row, f64)> = HashMap::new();
    let mut index = 0usize;
    let mut total_mass = 0.0;
    enumerator.for_each_repair(|repair| {
        let weight = repair_weights[index];
        index += 1;
        total_mass += weight;
        let rows = repair.query(sql)?;
        let mut seen: HashMap<Key, Row> = HashMap::new();
        for row in &rows.rows {
            seen.insert(Key::from_values(row), row.clone());
        }
        for (k, row) in seen {
            totals
                .entry(k)
                .and_modify(|(_, p)| *p += weight)
                .or_insert((row, weight));
        }
        Ok(())
    })?;
    if total_mass <= 0.0 {
        return Err(RepairError::Invalid("all repair weights are zero".into()));
    }

    let mut out: Vec<ProbableAnswer> = totals
        .into_values()
        .map(|(row, p)| ProbableAnswer {
            row,
            probability: p / total_mass,
        })
        .collect();
    out.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .unwrap()
            .then_with(|| cmp_rows(&a.row, &b.row))
    });
    Ok(out)
}

/// The most probable answer(s): all answers tied for the maximum
/// probability (within `epsilon`).
pub fn most_probable_answers(
    db: &Database,
    sql: &str,
    sigma: &ConstraintSet,
    weights: &HashMap<String, WeightFn<'_>>,
    epsilon: f64,
) -> Result<Vec<ProbableAnswer>> {
    let all = answer_probabilities(db, sql, sigma, weights)?;
    let Some(best) = all.first().map(|a| a.probability) else {
        return Ok(Vec::new());
    };
    Ok(all
        .into_iter()
        .take_while(|a| a.probability >= best - epsilon)
        .collect())
}

fn cmp_rows(a: &Row, b: &Row) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if !ord.is_eq() {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Weight of every repair in enumeration order: the mixed-radix walk here
/// must match `RepairEnumerator::for_each_repair` exactly, which it does by
/// sharing the same grouping construction (tables in name order, groups in
/// first-seen row order).
fn repair_weight_table(
    db: &Database,
    sigma: &ConstraintSet,
    weights: &HashMap<String, WeightFn<'_>>,
) -> Result<Vec<f64>> {
    // Rebuild the same group structure the enumerator uses.
    let mut group_weights: Vec<Vec<f64>> = Vec::new();
    for name in db.table_names() {
        let Some(key) = sigma.key_of(&name) else {
            continue;
        };
        let table = db.table(&name)?;
        let key_idx: Vec<usize> = key
            .iter()
            .map(|k| table.column_index(k))
            .collect::<std::result::Result<_, _>>()?;
        let mut group_map: HashMap<Key, usize> = HashMap::new();
        let mut groups: Vec<Vec<f64>> = Vec::new();
        let weight_fn = weights.get(&name);
        for row in table.rows() {
            let kv: Vec<Value> = key_idx.iter().map(|i| row[*i].clone()).collect();
            let k = Key::from_values(&kv);
            let gi = *group_map.entry(k).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            let w = match weight_fn {
                Some(f) => f(row).max(0.0),
                None => 1.0,
            };
            groups[gi].push(w);
        }
        // Normalize each group; all-zero groups fall back to uniform.
        for g in &mut groups {
            let sum: f64 = g.iter().sum();
            if sum <= 0.0 {
                let u = 1.0 / g.len() as f64;
                g.iter_mut().for_each(|w| *w = u);
            } else {
                g.iter_mut().for_each(|w| *w /= sum);
            }
        }
        group_weights.extend(groups);
    }

    // Walk the same mixed-radix counter the enumerator uses.
    let radices: Vec<usize> = group_weights.iter().map(Vec::len).collect();
    let mut digits = vec![0usize; radices.len()];
    let mut out = Vec::new();
    loop {
        let mut w = 1.0;
        for (g, d) in group_weights.iter().zip(&digits) {
            w *= g[*d];
        }
        out.push(w);
        let mut i = 0;
        loop {
            if i == digits.len() {
                return Ok(out);
            }
            digits[i] += 1;
            if digits[i] < radices[i] {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_db() -> Database {
        let db = Database::new();
        db.run_script(
            "create table customer (custkey text, acctbal float);
             insert into customer values
               ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
        )
        .unwrap();
        db
    }

    #[test]
    fn uniform_probabilities_match_support() {
        let db = figure1_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let probs = answer_probabilities(
            &db,
            "select custkey from customer where acctbal > 1000",
            &sigma,
            &HashMap::new(),
        )
        .unwrap();
        let by_name: HashMap<String, f64> = probs
            .iter()
            .map(|a| (a.row[0].to_string(), a.probability))
            .collect();
        // Uniform weights reduce to the repair-support semantics.
        assert!((by_name["c2"] - 1.0).abs() < 1e-12);
        assert!((by_name["c3"] - 1.0).abs() < 1e-12);
        assert!((by_name["c1"] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_skew_the_distribution() {
        let db = figure1_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        // Trust high balances three times as much as low ones.
        let weight: WeightFn<'_> = &|row: &Row| match row[1].as_f64() {
            Ok(Some(bal)) if bal > 1000.0 => 3.0,
            _ => 1.0,
        };
        let mut weights: HashMap<String, WeightFn<'_>> = HashMap::new();
        weights.insert("customer".to_string(), weight);
        let probs = answer_probabilities(
            &db,
            "select custkey from customer where acctbal > 1000",
            &sigma,
            &weights,
        )
        .unwrap();
        let by_name: HashMap<String, f64> = probs
            .iter()
            .map(|a| (a.row[0].to_string(), a.probability))
            .collect();
        // c1's satisfying tuple now has weight 3 of 4.
        assert!((by_name["c1"] - 0.75).abs() < 1e-12);
        assert!((by_name["c2"] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_probable_answers_pick_the_top_tie_group() {
        let db = figure1_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let top = most_probable_answers(
            &db,
            "select custkey from customer where acctbal > 1000",
            &sigma,
            &HashMap::new(),
            1e-9,
        )
        .unwrap();
        // c2 and c3 are certain; c1 (probability 0.5) is excluded.
        assert_eq!(top.len(), 2);
        assert!(top.iter().all(|a| (a.probability - 1.0).abs() < 1e-12));
    }

    #[test]
    fn probabilities_are_a_distribution_over_group_values() {
        // For `select acctbal ...` on c1's group: the two tuples are
        // mutually exclusive answers whose probabilities sum to 1.
        let db = Database::new();
        db.run_script(
            "create table t (k text, v integer);
             insert into t values ('a', 1), ('a', 2), ('a', 3);",
        )
        .unwrap();
        let sigma = ConstraintSet::new().with_key("t", ["k"]);
        let probs = answer_probabilities(&db, "select v from t", &sigma, &HashMap::new()).unwrap();
        let sum: f64 = probs.iter().map(|a| a.probability).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(probs
            .iter()
            .all(|a| (a.probability - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn zero_weight_groups_fall_back_to_uniform() {
        let db = figure1_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let zero: WeightFn<'_> = &|_row: &Row| 0.0;
        let mut weights: HashMap<String, WeightFn<'_>> = HashMap::new();
        weights.insert("customer".to_string(), zero);
        let probs = answer_probabilities(
            &db,
            "select custkey from customer where acctbal > 1000",
            &sigma,
            &weights,
        )
        .unwrap();
        let by_name: HashMap<String, f64> = probs
            .iter()
            .map(|a| (a.row[0].to_string(), a.probability))
            .collect();
        assert!((by_name["c1"] - 0.5).abs() < 1e-12);
    }
}
