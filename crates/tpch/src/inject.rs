//! The inconsistency generator of Section 6.1 of the paper.
//!
//! The TPC-H generator produces key-consistent data, so the paper uses a
//! small program to make databases inconsistent, parameterized by
//!
//! * **p** — the fraction of tuples that violate the key constraints, and
//! * **n** — the number of tuples sharing each violated key value.
//!
//! Following the paper's protocol, the total table size stays constant: to
//! reach `K = p·T / n` conflicting keys, `K·(n-1)` randomly chosen
//! untouched tuples are *removed* (the paper starts from a smaller
//! consistent base) and `K·(n-1)` conflicting tuples are *added* — each
//! with the key attributes of a randomly chosen victim tuple and the
//! non-key attributes of another randomly chosen donor tuple ("one of the
//! sets is used to draw the key values of the conflicting tuples ...; the
//! other set is used to obtain non-key values").

use crate::rng::{SliceRandom, StdRng};

use conquer_core::ConstraintSet;
use conquer_engine::{Database, Table};

/// Per-table report of an injection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionStats {
    pub relation: String,
    pub total_tuples: usize,
    /// `K`: distinct key values in conflict.
    pub conflicting_keys: usize,
    /// `K·n`: tuples violating the key constraint.
    pub inconsistent_tuples: usize,
}

/// Make one table inconsistent in place. `p` is the tuple fraction in
/// violation (0.0–1.0) and `n >= 2` the tuples per violated key.
pub fn inject_table(
    db: &Database,
    relation: &str,
    key: &[String],
    p: f64,
    n: usize,
    seed: u64,
) -> InjectionStats {
    assert!((0.0..=1.0).contains(&p), "p must be a fraction, got {p}");
    assert!(n >= 2 || p == 0.0, "n must be at least 2");

    let table = db.table(relation).expect("relation exists");
    let total = table.len();
    let k = if p == 0.0 {
        0
    } else {
        ((p * total as f64) / n as f64).round() as usize
    };
    if k == 0 {
        return InjectionStats {
            relation: relation.to_string(),
            total_tuples: total,
            conflicting_keys: 0,
            inconsistent_tuples: 0,
        };
    }
    let extra = k * (n - 1);
    assert!(
        k + extra <= total,
        "p={p}, n={n} needs {k} victims plus {extra} removals but the table has only {total} rows"
    );

    let key_idx: Vec<usize> = key
        .iter()
        .map(|a| table.column_index(a).expect("key attribute exists"))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x1213c7);
    let mut indices: Vec<usize> = (0..total).collect();
    indices.shuffle(&mut rng);
    let victims = &indices[..k];
    // indices[k..k + extra] are the removed tuples (never copied below).
    let survivors = &indices[k + extra..];

    let columns: Vec<(&str, conquer_engine::DataType)> = table
        .schema()
        .columns
        .iter()
        .map(|c| (c.name.as_str(), c.ty))
        .collect();
    let mut new_table = Table::new(relation.to_string(), columns);

    // Keep victims and survivors.
    let rows = table.rows();
    for &i in victims.iter().chain(survivors) {
        new_table.extend_unchecked([rows[i].clone()]);
    }
    // Add n-1 conflicting tuples per victim: victim's key, donor's non-keys.
    let donor_pool: Vec<usize> = victims.iter().chain(survivors).copied().collect();
    for &v in victims {
        for _ in 0..n - 1 {
            let donor = donor_pool[rng.gen_range(0..donor_pool.len())];
            let mut row = rows[donor].clone();
            for &ki in &key_idx {
                row[ki] = rows[v][ki].clone();
            }
            new_table.extend_unchecked([row]);
        }
    }
    db.register(new_table).expect("register in-memory table");

    InjectionStats {
        relation: relation.to_string(),
        total_tuples: total,
        conflicting_keys: k,
        inconsistent_tuples: k * n,
    }
}

/// Inject the same inconsistency level into every constrained relation of
/// the database ("we created the databases in such a way that every
/// relation has the same value of p as the entire database", Section 6.1).
pub fn inject_database(
    db: &Database,
    sigma: &ConstraintSet,
    p: f64,
    n: usize,
    seed: u64,
) -> Vec<InjectionStats> {
    let mut stats = Vec::new();
    for (i, constraint) in sigma.iter().enumerate() {
        if db.table(&constraint.relation).is_err() {
            continue;
        }
        stats.push(inject_table(
            db,
            &constraint.relation,
            &constraint.key,
            p,
            n,
            seed.wrapping_add(i as u64),
        ));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_core::annotate_database;
    use std::collections::HashMap;

    fn fresh_table(rows: usize) -> Database {
        let db = Database::new();
        let mut script = String::from("create table t (k integer, v integer);\n");
        if rows > 0 {
            script.push_str("insert into t values ");
            let vals: Vec<String> = (0..rows).map(|i| format!("({i}, {})", i * 10)).collect();
            script.push_str(&vals.join(", "));
        }
        db.run_script(&script).unwrap();
        db
    }

    fn key_histogram(db: &Database) -> HashMap<String, usize> {
        let mut h = HashMap::new();
        for row in db.table("t").unwrap().rows() {
            *h.entry(row[0].to_string()).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn injection_preserves_total_size() {
        let db = fresh_table(1000);
        let stats = inject_table(&db, "t", &["k".to_string()], 0.10, 2, 7);
        assert_eq!(db.table("t").unwrap().len(), 1000);
        assert_eq!(stats.conflicting_keys, 50);
        assert_eq!(stats.inconsistent_tuples, 100);
    }

    #[test]
    fn injection_hits_target_p_and_n() {
        let db = fresh_table(1000);
        inject_table(&db, "t", &["k".to_string()], 0.20, 4, 7);
        let hist = key_histogram(&db);
        let inconsistent: usize = hist.values().filter(|c| **c > 1).copied().sum();
        assert_eq!(inconsistent, 200); // p·T
        assert!(hist.values().all(|c| *c == 1 || *c == 4)); // exactly n per conflict
    }

    #[test]
    fn p_zero_is_a_no_op() {
        let db = fresh_table(100);
        let before = db.table("t").unwrap().rows().to_vec();
        let stats = inject_table(&db, "t", &["k".to_string()], 0.0, 2, 7);
        assert_eq!(stats.inconsistent_tuples, 0);
        assert_eq!(db.table("t").unwrap().rows(), &before[..]);
    }

    #[test]
    fn injection_matches_annotation_counts() {
        // The annotation pass must agree with the injector's bookkeeping.
        let db = fresh_table(500);
        let sigma = ConstraintSet::new().with_key("t", ["k"]);
        let inj = inject_database(&db, &sigma, 0.10, 2, 11);
        let ann = annotate_database(&db, &sigma).unwrap();
        assert_eq!(inj[0].inconsistent_tuples, ann[0].inconsistent_tuples);
        assert_eq!(inj[0].conflicting_keys, ann[0].violated_keys);
    }

    #[test]
    fn injection_is_deterministic() {
        let a = fresh_table(300);
        let b = fresh_table(300);
        inject_table(&a, "t", &["k".to_string()], 0.2, 2, 99);
        inject_table(&b, "t", &["k".to_string()], 0.2, 2, 99);
        assert_eq!(a.table("t").unwrap().rows(), b.table("t").unwrap().rows());
    }

    #[test]
    fn composite_key_injection() {
        let db = Database::new();
        let mut script = String::from(
            "create table li (ok integer, ln integer, q integer);\ninsert into li values ",
        );
        let vals: Vec<String> = (0..200)
            .map(|i| format!("({}, {}, {})", i / 4, i % 4, i))
            .collect();
        script.push_str(&vals.join(", "));
        db.run_script(&script).unwrap();
        let stats = inject_table(&db, "li", &["ok".to_string(), "ln".to_string()], 0.10, 2, 3);
        assert_eq!(stats.inconsistent_tuples, 20);
        let mut h: HashMap<(String, String), usize> = HashMap::new();
        for row in db.table("li").unwrap().rows() {
            *h.entry((row[0].to_string(), row[1].to_string()))
                .or_insert(0) += 1;
        }
        let inconsistent: usize = h.values().filter(|c| **c > 1).copied().sum();
        assert_eq!(inconsistent, 20);
    }
}
