//! A small deterministic RNG, drop-in for the subset of the `rand` API the
//! generators use (the workspace builds offline, with no external crates).
//!
//! The generator is xorshift64* seeded through a splitmix64 scramble, which
//! passes the statistical bar for synthetic benchmark data: we need
//! reproducible, well-spread draws, not cryptographic strength. The API
//! mirrors `rand`: `StdRng::seed_from_u64`, `gen_range` over (inclusive)
//! integer ranges, `gen_bool`, and a `SliceRandom::shuffle` extension.

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator (xorshift64*).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seed the generator; identical seeds give identical streams.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        // splitmix64 turns adjacent seeds into well-separated states and
        // guarantees a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        StdRng { state: z.max(1) }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw uniform in `[0, n)` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        // Multiply-shift mapping: unbiased enough for synthetic data and
        // avoids the modulo's low-bit artifacts.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// A value uniform over the range, like `rand::Rng::gen_range`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Ranges `gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize);

/// Slice shuffling, like `rand::seq::SliceRandom`.
pub trait SliceRandom {
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        // Fisher–Yates, high to low.
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.gen_range(0..7);
            assert!(u < 7);
            let d: i32 = rng.gen_range(10..11); // single-value range
            assert_eq!(d, 10);
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
