//! TPC-H-style workload for the ConQuer evaluation (Section 6 of the
//! paper): schema, a deterministic `dbgen` substitute, the inconsistency
//! injector parameterized by `p` and `n`, and the six benchmark queries.
//!
//! ```
//! use conquer_tpch::{build_workload, WorkloadConfig};
//!
//! let workload = build_workload(&WorkloadConfig {
//!     scale_factor: 0.001,
//!     p: 0.05,
//!     n: 2,
//!     seed: 42,
//!     annotate: true,
//!     ..WorkloadConfig::default()
//! });
//! assert_eq!(workload.db.table("customer").unwrap().len(), 150);
//! assert!(workload.injection.iter().any(|s| s.inconsistent_tuples > 0));
//! ```

pub mod gen;
pub mod inject;
pub mod queries;
pub mod rng;
pub mod schema;

pub use gen::{generate_database, GenConfig};
pub use inject::{inject_database, inject_table, InjectionStats};
pub use queries::{all_queries, BenchmarkQuery, Selectivity, Q1, Q10, Q12, Q3, Q4, Q6};
pub use schema::{benchmark_constraints, create_tables, key_constraints, TABLES};

use conquer_core::{annotate_database, declare_key_indexes, AnnotationStats, ConstraintSet};
use conquer_engine::Database;

/// Configuration of a complete benchmark workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// TPC-H scale factor.
    pub scale_factor: f64,
    /// Fraction of tuples violating the key constraints (0.0–1.0).
    pub p: f64,
    /// Tuples per violated key value (>= 2 unless `p` is 0).
    pub n: usize,
    /// RNG seed for generation and injection.
    pub seed: u64,
    /// Generator threads.
    pub threads: usize,
    /// Run the offline annotation pass (Section 5) after injection.
    pub annotate: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            scale_factor: 0.01,
            p: 0.05,
            n: 2,
            seed: 42,
            threads: 4,
            annotate: false,
        }
    }
}

/// A generated, injected (and optionally annotated) benchmark database.
pub struct Workload {
    pub db: Database,
    pub sigma: ConstraintSet,
    pub injection: Vec<InjectionStats>,
    pub annotation: Option<Vec<AnnotationStats>>,
}

/// Build a workload: generate consistent TPC-H data, inject inconsistency
/// into the relations used by the benchmark queries, and optionally
/// annotate.
pub fn build_workload(config: &WorkloadConfig) -> Workload {
    let db = generate_database(&GenConfig {
        scale_factor: config.scale_factor,
        seed: config.seed,
        threads: config.threads,
    });
    let sigma = benchmark_constraints();
    let injection = inject_database(&db, &sigma, config.p, config.n, config.seed);
    let annotation = config
        .annotate
        .then(|| annotate_database(&db, &sigma).expect("annotation succeeds"));
    // Declare (not build) a secondary index on each relation's key columns
    // — the access path the rewritings' key self-joins probe. Queries run
    // with `ExecOptions::with_indexes(false)` still plan index-blind, so
    // differential suites can compare both modes over one workload.
    declare_key_indexes(&db, &sigma);
    Workload {
        db,
        sigma,
        injection,
        annotation,
    }
}
