//! Deterministic TPC-H-style data generator (the `dbgen` substitute).
//!
//! Row counts follow the TPC-H scale-factor rules (customer = 150 000 × SF,
//! orders = 10 × customer, an average of four lineitems per order, …) and
//! value distributions approximate the specification closely enough for the
//! benchmark queries: dates span 1992-01-01 .. 1998-08-02, `l_shipdate` is
//! 1–121 days after the order date, discounts are 0.00–0.10, market
//! segments and ship modes use the standard vocabularies. Free-text comment
//! columns are shortened to keep the in-memory footprint low; no benchmark
//! query reads them.
//!
//! Generation is deterministic for a given seed regardless of thread count:
//! orders/lineitems are produced in fixed chunks, each chunk seeded
//! independently, and assembled in chunk order (std scoped threads).

use crate::rng::StdRng;

use conquer_engine::{Database, Row, Value};
use conquer_sql::dates::ymd_to_days;

use crate::schema::create_tables;

/// The standard market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
/// The standard order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
/// The standard ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIP_INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const NATION_NAMES: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const REGION_NAMES: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
/// nation -> region mapping from the TPC-H specification.
const NATION_REGION: [i64; 25] = [
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// TPC-H scale factor; 1.0 is the standard 1 GB database
    /// (≈ 8.6 million tuples). The paper's 100 MB–2 GB range maps to
    /// 0.1–2.0; this reproduction typically uses 0.008–0.16.
    pub scale_factor: f64,
    /// RNG seed; identical seeds give identical databases.
    pub seed: u64,
    /// Number of generator threads for the large tables.
    pub threads: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            scale_factor: 0.01,
            seed: 42,
            threads: 4,
        }
    }
}

impl GenConfig {
    pub fn customers(&self) -> usize {
        ((150_000.0 * self.scale_factor).round() as usize).max(10)
    }

    pub fn orders(&self) -> usize {
        self.customers() * 10
    }

    pub fn suppliers(&self) -> usize {
        ((10_000.0 * self.scale_factor).round() as usize).max(5)
    }

    pub fn parts(&self) -> usize {
        ((200_000.0 * self.scale_factor).round() as usize).max(20)
    }
}

/// Date bounds of the TPC-H universe.
pub fn start_date() -> i32 {
    ymd_to_days(1992, 1, 1).expect("valid date")
}

pub fn end_order_date() -> i32 {
    ymd_to_days(1998, 8, 2).expect("valid date")
}

fn money(rng: &mut StdRng, lo_cents: i64, hi_cents: i64) -> f64 {
    rng.gen_range(lo_cents..=hi_cents) as f64 / 100.0
}

fn phone(rng: &mut StdRng, nation: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

fn short_text(rng: &mut StdRng) -> String {
    const WORDS: [&str; 12] = [
        "furiously",
        "quick",
        "pending",
        "final",
        "ironic",
        "even",
        "bold",
        "regular",
        "express",
        "silent",
        "blithe",
        "careful",
    ];
    let a = WORDS[rng.gen_range(0..WORDS.len())];
    let b = WORDS[rng.gen_range(0..WORDS.len())];
    format!("{a} {b} deposits")
}

/// Generate a complete, *consistent* TPC-H database at the given scale.
pub fn generate_database(config: &GenConfig) -> Database {
    let db = Database::new();
    create_tables(&db);
    fill_region_nation(&db);
    fill_supplier(&db, config);
    fill_part_partsupp(&db, config);
    fill_customer(&db, config);
    fill_orders_lineitem(&db, config);
    db
}

fn fill_region_nation(db: &Database) {
    let mut region = (*db.table("region").unwrap()).clone();
    for (i, name) in REGION_NAMES.iter().enumerate() {
        region.extend_unchecked([vec![
            Value::Int(i as i64),
            Value::str(name),
            Value::str("regional comment"),
        ]]);
    }
    db.register(region).expect("register in-memory table");

    let mut nation = (*db.table("nation").unwrap()).clone();
    for (i, name) in NATION_NAMES.iter().enumerate() {
        nation.extend_unchecked([vec![
            Value::Int(i as i64),
            Value::str(name),
            Value::Int(NATION_REGION[i]),
            Value::str("national comment"),
        ]]);
    }
    db.register(nation).expect("register in-memory table");
}

fn fill_supplier(db: &Database, config: &GenConfig) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x501);
    let mut t = (*db.table("supplier").unwrap()).clone();
    for sk in 1..=config.suppliers() as i64 {
        let nation = rng.gen_range(0..25);
        t.extend_unchecked([vec![
            Value::Int(sk),
            Value::str(format!("Supplier#{sk:09}")),
            Value::str(format!("addr-{}", rng.gen_range(0..100000))),
            Value::Int(nation),
            Value::str(phone(&mut rng, nation)),
            Value::Float(money(&mut rng, -99999, 999999)),
            Value::str(short_text(&mut rng)),
        ]]);
    }
    db.register(t).expect("register in-memory table");
}

fn fill_part_partsupp(db: &Database, config: &GenConfig) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9a27);
    let n_parts = config.parts() as i64;
    let n_suppliers = config.suppliers() as i64;

    const TYPES: [&str; 6] = [
        "STANDARD ANODIZED TIN",
        "SMALL PLATED COPPER",
        "MEDIUM POLISHED BRASS",
        "LARGE BURNISHED STEEL",
        "ECONOMY BRUSHED NICKEL",
        "PROMO POLISHED TIN",
    ];
    const CONTAINERS: [&str; 5] = ["SM CASE", "MED BOX", "LG DRUM", "JUMBO JAR", "WRAP PKG"];
    const COLORS: [&str; 8] = [
        "green", "blue", "red", "ivory", "salmon", "peach", "khaki", "linen",
    ];

    let mut part = (*db.table("part").unwrap()).clone();
    let mut partsupp = (*db.table("partsupp").unwrap()).clone();
    for pk in 1..=n_parts {
        let color = COLORS[rng.gen_range(0..COLORS.len())];
        part.extend_unchecked([vec![
            Value::Int(pk),
            Value::str(format!("{color} widget")),
            Value::str(format!("Manufacturer#{}", rng.gen_range(1..=5))),
            Value::str(format!(
                "Brand#{}{}",
                rng.gen_range(1..=5),
                rng.gen_range(1..=5)
            )),
            Value::str(TYPES[rng.gen_range(0..TYPES.len())]),
            Value::Int(rng.gen_range(1..=50)),
            Value::str(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
            Value::Float(money(&mut rng, 90000, 200000)),
            Value::str(short_text(&mut rng)),
        ]]);
        // Four suppliers per part, as in the specification. The stride
        // keeps the four (pk, sk) pairs distinct so the composite key holds.
        let stride = (n_suppliers / 4).max(1);
        for s in 0..4 {
            let sk = (pk + s * stride) % n_suppliers + 1;
            partsupp.extend_unchecked([vec![
                Value::Int(pk),
                Value::Int(sk),
                Value::Int(rng.gen_range(1..=9999)),
                Value::Float(money(&mut rng, 100, 100000)),
                Value::str(short_text(&mut rng)),
            ]]);
        }
    }
    db.register(part).expect("register in-memory table");
    db.register(partsupp).expect("register in-memory table");
}

fn fill_customer(db: &Database, config: &GenConfig) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc057);
    let mut t = (*db.table("customer").unwrap()).clone();
    for ck in 1..=config.customers() as i64 {
        let nation = rng.gen_range(0..25);
        t.extend_unchecked([vec![
            Value::Int(ck),
            Value::str(format!("Customer#{ck:09}")),
            Value::str(format!("addr-{}", rng.gen_range(0..1000000))),
            Value::Int(nation),
            Value::str(phone(&mut rng, nation)),
            Value::Float(money(&mut rng, -99999, 999999)),
            Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            Value::str(short_text(&mut rng)),
        ]]);
    }
    db.register(t).expect("register in-memory table");
}

/// Orders and lineitems are generated in parallel chunks; each chunk's RNG
/// is seeded from (seed, chunk index), so output is independent of thread
/// scheduling.
fn fill_orders_lineitem(db: &Database, config: &GenConfig) {
    let n_orders = config.orders();
    let n_customers = config.customers() as i64;
    let n_parts = config.parts() as i64;
    let n_suppliers = config.suppliers() as i64;
    let threads = config.threads.max(1);

    // Fixed chunk size so output is identical for every thread count; each
    // worker processes chunk indices strided by the worker count.
    const CHUNK: usize = 8192;
    let n_chunks = n_orders.div_ceil(CHUNK);
    let mut chunks: Vec<Option<(Vec<Row>, Vec<Row>)>> = Vec::new();
    chunks.resize_with(n_chunks, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads.min(n_chunks.max(1)) {
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut chunk_idx = worker;
                while chunk_idx < n_chunks {
                    let lo = chunk_idx * CHUNK;
                    let hi = (lo + CHUNK).min(n_orders);
                    let seed = config.seed ^ (0x07de75 + chunk_idx as u64);
                    out.push((
                        chunk_idx,
                        generate_order_chunk(lo, hi, seed, n_customers, n_parts, n_suppliers),
                    ));
                    chunk_idx += threads.min(n_chunks.max(1));
                }
                out
            }));
        }
        for h in handles {
            for (idx, chunk) in h.join().expect("generator thread panicked") {
                chunks[idx] = Some(chunk);
            }
        }
    });

    let mut orders = (*db.table("orders").unwrap()).clone();
    let mut lineitem = (*db.table("lineitem").unwrap()).clone();
    for chunk in chunks {
        let (order_rows, line_rows) = chunk.expect("all chunks generated");
        orders.extend_unchecked(order_rows);
        lineitem.extend_unchecked(line_rows);
    }
    db.register(orders).expect("register in-memory table");
    db.register(lineitem).expect("register in-memory table");
}

fn generate_order_chunk(
    lo: usize,
    hi: usize,
    seed: u64,
    n_customers: i64,
    n_parts: i64,
    n_suppliers: i64,
) -> (Vec<Row>, Vec<Row>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = start_date();
    let end = end_order_date();
    let cutoff = ymd_to_days(1995, 6, 17).expect("valid date");

    let mut orders = Vec::with_capacity(hi - lo);
    let mut lines = Vec::with_capacity((hi - lo) * 4);
    for i in lo..hi {
        let ok = i as i64 + 1;
        let custkey = rng.gen_range(1..=n_customers);
        let orderdate = rng.gen_range(start..=end);
        let n_lines = rng.gen_range(1..=7);

        let mut total = 0.0;
        let mut any_open = false;
        for ln in 1..=n_lines {
            let quantity = rng.gen_range(1..=50i64);
            let price_each = money(&mut rng, 90100, 210000);
            let extended = (quantity as f64) * price_each;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let returnflag = if receiptdate <= cutoff {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > cutoff { "O" } else { "F" };
            any_open |= linestatus == "O";
            total += extended * (1.0 - discount) * (1.0 + tax);
            lines.push(vec![
                Value::Int(ok),
                Value::Int(ln),
                Value::Int(rng.gen_range(1..=n_parts)),
                Value::Int(rng.gen_range(1..=n_suppliers)),
                Value::Int(quantity),
                Value::Float(extended),
                Value::Float(discount),
                Value::Float(tax),
                Value::str(returnflag),
                Value::str(linestatus),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str(SHIP_INSTRUCTS[rng.gen_range(0..SHIP_INSTRUCTS.len())]),
                Value::str(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]),
                Value::str(short_text(&mut rng)),
            ]);
        }
        let status = if any_open { "O" } else { "F" };
        orders.push(vec![
            Value::Int(ok),
            Value::Int(custkey),
            Value::str(status),
            Value::Float(total),
            Value::Date(orderdate),
            Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            Value::str(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
            Value::Int(0),
            Value::str(short_text(&mut rng)),
        ]);
    }
    (orders, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_row_counts() {
        let config = GenConfig {
            scale_factor: 0.001,
            seed: 7,
            threads: 2,
        };
        let db = generate_database(&config);
        assert_eq!(db.table("customer").unwrap().len(), 150);
        assert_eq!(db.table("orders").unwrap().len(), 1500);
        assert_eq!(db.table("nation").unwrap().len(), 25);
        assert_eq!(db.table("region").unwrap().len(), 5);
        let li = db.table("lineitem").unwrap().len();
        assert!((1500..=1500 * 7).contains(&li), "lineitem count {li}");
    }

    #[test]
    fn generation_is_deterministic_across_thread_counts() {
        let a = generate_database(&GenConfig {
            scale_factor: 0.001,
            seed: 9,
            threads: 1,
        });
        let b = generate_database(&GenConfig {
            scale_factor: 0.001,
            seed: 9,
            threads: 4,
        });
        for t in ["orders", "lineitem", "customer"] {
            assert_eq!(
                a.table(t).unwrap().rows(),
                b.table(t).unwrap().rows(),
                "{t} differs"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_database(&GenConfig {
            scale_factor: 0.001,
            seed: 1,
            threads: 2,
        });
        let b = generate_database(&GenConfig {
            scale_factor: 0.001,
            seed: 2,
            threads: 2,
        });
        assert_ne!(
            a.table("customer").unwrap().rows(),
            b.table("customer").unwrap().rows()
        );
    }

    #[test]
    fn generated_data_is_consistent_wrt_keys() {
        use std::collections::HashSet;
        let db = generate_database(&GenConfig {
            scale_factor: 0.001,
            seed: 3,
            threads: 2,
        });
        let orders = db.table("orders").unwrap();
        let keys: HashSet<String> = orders.rows().iter().map(|r| r[0].to_string()).collect();
        assert_eq!(keys.len(), orders.len());
        let li = db.table("lineitem").unwrap();
        let li_keys: HashSet<(String, String)> = li
            .rows()
            .iter()
            .map(|r| (r[0].to_string(), r[1].to_string()))
            .collect();
        assert_eq!(li_keys.len(), li.len());
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let config = GenConfig {
            scale_factor: 0.001,
            seed: 4,
            threads: 2,
        };
        let db = generate_database(&config);
        let n_customers = config.customers() as i64;
        for row in db.table("orders").unwrap().rows() {
            let Value::Int(ck) = row[1] else { panic!() };
            assert!((1..=n_customers).contains(&ck));
        }
    }

    #[test]
    fn dates_are_ordered_per_lineitem() {
        let db = generate_database(&GenConfig {
            scale_factor: 0.001,
            seed: 5,
            threads: 2,
        });
        for row in db.table("lineitem").unwrap().rows() {
            let Value::Date(ship) = row[10] else { panic!() };
            let Value::Date(receipt) = row[12] else {
                panic!()
            };
            assert!(receipt > ship);
        }
    }
}
