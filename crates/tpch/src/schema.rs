//! TPC-H schema definitions and the corresponding key query constraints.
//!
//! The paper's experiments assume "primary keys are not part of the schema,
//! but are rather specified as query constraints" (Section 6.1); this
//! module provides both the tables and that constraint set.

use conquer_core::ConstraintSet;
use conquer_engine::DataType::{Date, Float, Integer, Text};
use conquer_engine::{Database, Table};

/// Names of all eight TPC-H tables.
pub const TABLES: [&str; 8] = [
    "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
];

/// Create all eight empty TPC-H tables in a database.
pub fn create_tables(db: &Database) {
    db.register(Table::new(
        "region",
        vec![
            ("r_regionkey", Integer),
            ("r_name", Text),
            ("r_comment", Text),
        ],
    ))
    .expect("register in-memory table");
    db.register(Table::new(
        "nation",
        vec![
            ("n_nationkey", Integer),
            ("n_name", Text),
            ("n_regionkey", Integer),
            ("n_comment", Text),
        ],
    ))
    .expect("register in-memory table");
    db.register(Table::new(
        "supplier",
        vec![
            ("s_suppkey", Integer),
            ("s_name", Text),
            ("s_address", Text),
            ("s_nationkey", Integer),
            ("s_phone", Text),
            ("s_acctbal", Float),
            ("s_comment", Text),
        ],
    ))
    .expect("register in-memory table");
    db.register(Table::new(
        "part",
        vec![
            ("p_partkey", Integer),
            ("p_name", Text),
            ("p_mfgr", Text),
            ("p_brand", Text),
            ("p_type", Text),
            ("p_size", Integer),
            ("p_container", Text),
            ("p_retailprice", Float),
            ("p_comment", Text),
        ],
    ))
    .expect("register in-memory table");
    db.register(Table::new(
        "partsupp",
        vec![
            ("ps_partkey", Integer),
            ("ps_suppkey", Integer),
            ("ps_availqty", Integer),
            ("ps_supplycost", Float),
            ("ps_comment", Text),
        ],
    ))
    .expect("register in-memory table");
    db.register(Table::new(
        "customer",
        vec![
            ("c_custkey", Integer),
            ("c_name", Text),
            ("c_address", Text),
            ("c_nationkey", Integer),
            ("c_phone", Text),
            ("c_acctbal", Float),
            ("c_mktsegment", Text),
            ("c_comment", Text),
        ],
    ))
    .expect("register in-memory table");
    db.register(Table::new(
        "orders",
        vec![
            ("o_orderkey", Integer),
            ("o_custkey", Integer),
            ("o_orderstatus", Text),
            ("o_totalprice", Float),
            ("o_orderdate", Date),
            ("o_orderpriority", Text),
            ("o_clerk", Text),
            ("o_shippriority", Integer),
            ("o_comment", Text),
        ],
    ))
    .expect("register in-memory table");
    db.register(Table::new(
        "lineitem",
        vec![
            ("l_orderkey", Integer),
            ("l_linenumber", Integer),
            ("l_partkey", Integer),
            ("l_suppkey", Integer),
            ("l_quantity", Integer),
            ("l_extendedprice", Float),
            ("l_discount", Float),
            ("l_tax", Float),
            ("l_returnflag", Text),
            ("l_linestatus", Text),
            ("l_shipdate", Date),
            ("l_commitdate", Date),
            ("l_receiptdate", Date),
            ("l_shipinstruct", Text),
            ("l_shipmode", Text),
            ("l_comment", Text),
        ],
    ))
    .expect("register in-memory table");
}

/// The TPC-H primary keys as query constraints.
pub fn key_constraints() -> ConstraintSet {
    ConstraintSet::new()
        .with_key("region", ["r_regionkey"])
        .with_key("nation", ["n_nationkey"])
        .with_key("supplier", ["s_suppkey"])
        .with_key("part", ["p_partkey"])
        .with_key("partsupp", ["ps_partkey", "ps_suppkey"])
        .with_key("customer", ["c_custkey"])
        .with_key("orders", ["o_orderkey"])
        .with_key("lineitem", ["l_orderkey", "l_linenumber"])
}

/// The constraints restricted to relations used by the benchmark queries
/// (customer, orders, lineitem, nation), for cheaper annotation passes.
pub fn benchmark_constraints() -> ConstraintSet {
    ConstraintSet::new()
        .with_key("nation", ["n_nationkey"])
        .with_key("customer", ["c_custkey"])
        .with_key("orders", ["o_orderkey"])
        .with_key("lineitem", ["l_orderkey", "l_linenumber"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_created() {
        let db = Database::new();
        create_tables(&db);
        let mut names = db.table_names();
        names.sort();
        let mut expected: Vec<String> = TABLES.iter().map(|s| s.to_string()).collect();
        expected.sort();
        assert_eq!(names, expected);
    }

    #[test]
    fn constraints_cover_all_tables() {
        let sigma = key_constraints();
        for t in TABLES {
            assert!(sigma.key_of(t).is_some(), "missing key for {t}");
        }
        assert_eq!(sigma.key_of("lineitem").unwrap().len(), 2);
    }
}
