//! The six TPC-H queries used in the paper's evaluation (Q1, Q3, Q4, Q6,
//! Q10, Q12), adapted to the tree-query class exactly as Section 6.1
//! describes, with the standard's suggested substitution parameters.
//!
//! Adaptations (all flagged in the paper or required by Definition 4):
//!
//! * **Q1** — `date '1998-12-01' - interval '90' day` is constant-folded to
//!   `date '1998-09-02'` (the interval mechanism is just parameter
//!   substitution). Q1's `avg` aggregates use the documented sound-bound
//!   extension.
//! * **Q3** — unchanged apart from explicit qualification of all columns
//!   (the analyser requires unambiguous join columns).
//! * **Q4** — the correlated `EXISTS` is decorrelated into a join, which
//!   the paper itself does ("many of them can be decorrelated and
//!   unnested"); the count then tallies late *lineitems* per priority
//!   rather than late orders — the same join/aggregation shape and data
//!   volume.
//! * **Q6** — unchanged (global aggregate, no grouping).
//! * **Q10** — unchanged; four relations, the largest join in the set.
//! * **Q12** — unchanged; two CASE-based counts.

use crate::schema::benchmark_constraints;
use conquer_core::ConstraintSet;

/// Selectivity label from Figure 10 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selectivity {
    High,
    Low,
}

impl std::fmt::Display for Selectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Selectivity::High => f.write_str("high"),
            Selectivity::Low => f.write_str("low"),
        }
    }
}

/// One benchmark query with the metadata reported in Figure 10.
#[derive(Debug, Clone)]
pub struct BenchmarkQuery {
    /// TPC-H query number.
    pub number: u32,
    /// SQL text (tree-query form).
    pub sql: &'static str,
    /// Expected Figure-10 characteristics, for the harness table.
    pub selectivity: Selectivity,
}

impl BenchmarkQuery {
    pub fn name(&self) -> String {
        format!("Q{}", self.number)
    }

    /// The constraint set the paper pairs with these queries.
    pub fn constraints() -> ConstraintSet {
        benchmark_constraints()
    }
}

/// TPC-H Q1: pricing summary report (one relation, high selectivity,
/// 10 projected attributes, 8 aggregates).
pub const Q1: BenchmarkQuery = BenchmarkQuery {
    number: 1,
    selectivity: Selectivity::High,
    sql: "select l.l_returnflag, l.l_linestatus, \
            sum(l.l_quantity) as sum_qty, \
            sum(l.l_extendedprice) as sum_base_price, \
            sum(l.l_extendedprice * (1 - l.l_discount)) as sum_disc_price, \
            sum(l.l_extendedprice * (1 - l.l_discount) * (1 + l.l_tax)) as sum_charge, \
            avg(l.l_quantity) as avg_qty, \
            avg(l.l_extendedprice) as avg_price, \
            avg(l.l_discount) as avg_disc, \
            count(*) as count_order \
          from lineitem l \
          where l.l_shipdate <= date '1998-09-02' \
          group by l.l_returnflag, l.l_linestatus \
          order by l.l_returnflag, l.l_linestatus",
};

/// TPC-H Q3: shipping priority (three relations).
pub const Q3: BenchmarkQuery = BenchmarkQuery {
    number: 3,
    selectivity: Selectivity::Low,
    sql: "select l.l_orderkey, \
            sum(l.l_extendedprice * (1 - l.l_discount)) as revenue, \
            o.o_orderdate, o.o_shippriority \
          from customer c, orders o, lineitem l \
          where c.c_mktsegment = 'BUILDING' \
            and c.c_custkey = o.o_custkey \
            and l.l_orderkey = o.o_orderkey \
            and o.o_orderdate < date '1995-03-15' \
            and l.l_shipdate > date '1995-03-15' \
          group by l.l_orderkey, o.o_orderdate, o.o_shippriority \
          order by revenue desc, o.o_orderdate \
          limit 10",
};

/// TPC-H Q4: order priority checking (two relations, decorrelated).
pub const Q4: BenchmarkQuery = BenchmarkQuery {
    number: 4,
    selectivity: Selectivity::Low,
    sql: "select o.o_orderpriority, count(*) as order_count \
          from orders o, lineitem l \
          where o.o_orderdate >= date '1993-07-01' \
            and o.o_orderdate < date '1993-10-01' \
            and l.l_orderkey = o.o_orderkey \
            and l.l_commitdate < l.l_receiptdate \
          group by o.o_orderpriority \
          order by o.o_orderpriority",
};

/// TPC-H Q6: forecasting revenue change (one relation, global aggregate).
pub const Q6: BenchmarkQuery = BenchmarkQuery {
    number: 6,
    selectivity: Selectivity::Low,
    sql: "select sum(l.l_extendedprice * l.l_discount) as revenue \
          from lineitem l \
          where l.l_shipdate >= date '1994-01-01' \
            and l.l_shipdate < date '1995-01-01' \
            and l.l_discount between 0.05 and 0.07 \
            and l.l_quantity < 24",
};

/// TPC-H Q10: returned item reporting (four relations).
pub const Q10: BenchmarkQuery = BenchmarkQuery {
    number: 10,
    selectivity: Selectivity::Low,
    sql: "select c.c_custkey, c.c_name, \
            sum(l.l_extendedprice * (1 - l.l_discount)) as revenue, \
            c.c_acctbal, n.n_name, c.c_address, c.c_phone, c.c_comment \
          from customer c, orders o, lineitem l, nation n \
          where c.c_custkey = o.o_custkey \
            and l.l_orderkey = o.o_orderkey \
            and o.o_orderdate >= date '1993-10-01' \
            and o.o_orderdate < date '1994-01-01' \
            and l.l_returnflag = 'R' \
            and c.c_nationkey = n.n_nationkey \
          group by c.c_custkey, c.c_name, c.c_acctbal, c.c_phone, n.n_name, \
                   c.c_address, c.c_comment \
          order by revenue desc \
          limit 20",
};

/// TPC-H Q12: shipping modes and order priority (two relations,
/// two CASE-based counts).
pub const Q12: BenchmarkQuery = BenchmarkQuery {
    number: 12,
    selectivity: Selectivity::Low,
    sql: "select l.l_shipmode, \
            sum(case when o.o_orderpriority = '1-URGENT' \
                       or o.o_orderpriority = '2-HIGH' \
                     then 1 else 0 end) as high_line_count, \
            sum(case when o.o_orderpriority <> '1-URGENT' \
                      and o.o_orderpriority <> '2-HIGH' \
                     then 1 else 0 end) as low_line_count \
          from orders o, lineitem l \
          where o.o_orderkey = l.l_orderkey \
            and l.l_shipmode in ('MAIL', 'SHIP') \
            and l.l_commitdate < l.l_receiptdate \
            and l.l_shipdate < l.l_commitdate \
            and l.l_receiptdate >= date '1994-01-01' \
            and l.l_receiptdate < date '1995-01-01' \
          group by l.l_shipmode \
          order by l.l_shipmode",
};

/// All six benchmark queries in the paper's order.
pub fn all_queries() -> Vec<BenchmarkQuery> {
    vec![
        Q1.clone(),
        Q3.clone(),
        Q4.clone(),
        Q6.clone(),
        Q10.clone(),
        Q12.clone(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use conquer_core::analyze;
    use conquer_sql::parse_query;

    /// Figure 10 of the paper: (relations, selectivity, proj attrs, agg attrs).
    const FIGURE_10: [(u32, usize, Selectivity, usize, usize); 6] = [
        (1, 1, Selectivity::High, 10, 8),
        (3, 3, Selectivity::Low, 4, 1),
        (4, 2, Selectivity::Low, 2, 1),
        (6, 1, Selectivity::Low, 1, 1),
        (10, 4, Selectivity::Low, 8, 1),
        (12, 2, Selectivity::Low, 3, 2),
    ];

    #[test]
    fn queries_parse_and_classify_as_tree_queries() {
        let sigma = BenchmarkQuery::constraints();
        for q in all_queries() {
            let parsed = parse_query(q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.name()));
            analyze(&parsed, &sigma).unwrap_or_else(|e| panic!("{}: {e}", q.name()));
        }
    }

    #[test]
    fn characteristics_match_figure_10() {
        let sigma = BenchmarkQuery::constraints();
        for (num, relations, selectivity, proj, aggr) in FIGURE_10 {
            let q = all_queries().into_iter().find(|q| q.number == num).unwrap();
            assert_eq!(q.selectivity, selectivity, "Q{num} selectivity");
            let tq = analyze(&parse_query(q.sql).unwrap(), &sigma).unwrap();
            assert_eq!(tq.relations.len(), relations, "Q{num} relation count");
            assert_eq!(tq.projection.len(), proj, "Q{num} projected attributes");
            assert_eq!(tq.aggregate_count(), aggr, "Q{num} aggregated attributes");
        }
    }

    #[test]
    fn lineitem_is_the_root_of_every_multi_relation_query() {
        let sigma = BenchmarkQuery::constraints();
        for q in [Q3, Q4, Q10, Q12] {
            let tq = analyze(&parse_query(q.sql).unwrap(), &sigma).unwrap();
            assert_eq!(tq.relations[tq.root].table, "lineitem", "{}", q.name());
        }
    }
}
