//! Crash matrix over the storage-layer fault points
//! (`--features fault-injection`): every injected WAL/checkpoint failure
//! surfaces as a structured `Err`, loses at most the operation in flight,
//! and leaves both the in-memory catalog and the on-disk state recoverable.
//!
//! Fault schedules are thread-local, so each test arms and mutates on its
//! own thread (the test thread) — recovery opens run disarmed.

#![cfg(feature = "fault-injection")]

use std::fs;
use std::path::{Path, PathBuf};

use conquer_engine::{faults, Database, DurabilityOptions, EngineError, SyncPolicy, Value};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("conquer-durafault-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> Database {
    Database::open(
        dir,
        DurabilityOptions {
            sync: SyncPolicy::Always,
            checkpoint_wal_bytes: 0,
        },
    )
    .expect("open durable database")
}

fn ints(db: &Database, sql: &str) -> Vec<i64> {
    db.query(sql)
        .expect("query")
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        })
        .collect()
}

fn is_injected_storage(err: &EngineError, point: &str) -> bool {
    matches!(err, EngineError::Storage(msg) if msg.contains("injected fault")
        && msg.contains(point))
}

#[test]
fn wal_append_fault_rejects_op_and_leaves_catalog_untouched() {
    let dir = temp_dir("append");
    faults::disarm_all();
    let db = open(&dir);
    db.run_script("create table t (x integer); insert into t values (1)")
        .unwrap();

    faults::arm("wal_append_io", 0);
    let err = db
        .run_script("insert into t values (2)")
        .expect_err("append fault must surface");
    assert!(
        is_injected_storage(&err, "wal_append_io"),
        "expected injected storage error, got {err:?}"
    );
    faults::disarm_all();

    // Log-before-apply: the failed insert never touched memory...
    assert_eq!(ints(&db, "select x from t order by x"), vec![1]);
    // ...and the database keeps working once the fault clears.
    db.run_script("insert into t values (3)").unwrap();
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 3]);
    drop(db);

    // Reopen: disk agrees with memory — nothing from the failed append.
    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 3]);
    drop(db);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_sync_fault_rejects_op_and_recovery_stays_well_formed() {
    let dir = temp_dir("sync");
    faults::disarm_all();
    let db = open(&dir);
    db.run_script("create table t (x integer); insert into t values (1)")
        .unwrap();

    faults::arm("wal_sync_fail", 0);
    let err = db
        .run_script("insert into t values (2)")
        .expect_err("sync fault must surface");
    assert!(
        is_injected_storage(&err, "wal_sync_fail"),
        "expected injected storage error, got {err:?}"
    );
    faults::disarm_all();

    // The op errored, so memory does not hold row 2 — but the record bytes
    // were written before the fsync failed, so replay MAY resurrect it
    // (the classic fsync-failure ambiguity; DESIGN.md §12). Both outcomes
    // must be well-formed.
    assert_eq!(ints(&db, "select x from t order by x"), vec![1]);
    drop(db);
    let db = open(&dir);
    let state = ints(&db, "select x from t order by x");
    assert!(
        state == vec![1] || state == vec![1, 2],
        "recovery after sync failure must be row 1 or rows 1,2 — got {state:?}"
    );
    // Still writable after recovery.
    db.run_script("insert into t values (9)").unwrap();
    assert!(ints(&db, "select x from t order by x").contains(&9));
    drop(db);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_segment_write_fails_checkpoint_and_old_state_governs() {
    let dir = temp_dir("torn-seg");
    faults::disarm_all();
    let db = open(&dir);
    db.run_script("create table t (x integer); insert into t values (1), (2)")
        .unwrap();

    faults::arm("segment_write_torn", 0);
    let err = db
        .checkpoint()
        .expect_err("torn segment must fail checkpoint");
    assert!(
        is_injected_storage(&err, "segment_write_torn"),
        "expected injected storage error, got {err:?}"
    );
    faults::disarm_all();

    // The manifest never moved, so the WAL still carries everything; the
    // in-memory catalog is untouched and writable.
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2]);
    db.run_script("insert into t values (3)").unwrap();
    drop(db);

    // Recovery replays the WAL under the old (absent) manifest; the torn
    // segment file is an orphan and gets cleaned.
    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2, 3]);
    let leftover_segs: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".seg"))
        .collect();
    assert!(
        leftover_segs.is_empty(),
        "torn segment orphans must be cleaned, found {leftover_segs:?}"
    );
    // And checkpointing works once the fault clears.
    assert!(db.checkpoint().unwrap());
    drop(db);
    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2, 3]);
    drop(db);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn manifest_rename_fault_fails_checkpoint_and_tmp_is_cleaned() {
    let dir = temp_dir("manifest");
    faults::disarm_all();
    let db = open(&dir);
    db.run_script("create table t (x integer); insert into t values (1)")
        .unwrap();

    faults::arm("manifest_rename_fail", 0);
    let err = db
        .checkpoint()
        .expect_err("rename fault must fail checkpoint");
    assert!(
        is_injected_storage(&err, "manifest_rename_fail"),
        "expected injected storage error, got {err:?}"
    );
    faults::disarm_all();

    // The tmp file was fully written but never renamed: the commit point
    // was not crossed, so the old state governs.
    assert!(dir.join("MANIFEST.tmp").exists(), "tmp survives the crash");
    assert_eq!(ints(&db, "select x from t order by x"), vec![1]);
    drop(db);

    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1]);
    assert!(
        !dir.join("MANIFEST.tmp").exists(),
        "recovery must clean the stale MANIFEST.tmp"
    );
    // Post-disarm the checkpoint lands, and the manifest now governs.
    assert!(db.checkpoint().unwrap());
    assert!(dir.join("MANIFEST").exists());
    drop(db);
    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1]);
    drop(db);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn repeated_fault_storms_never_wedge_the_store() {
    // Alternate injected failures and successes across every storage
    // point; the database must absorb each error and finish consistent.
    let dir = temp_dir("storm");
    faults::disarm_all();
    let db = open(&dir);
    db.run_script("create table t (x integer)").unwrap();

    let mut expected = Vec::new();
    let points = [
        "wal_append_io",
        "wal_sync_fail",
        "segment_write_torn",
        "manifest_rename_fail",
    ];
    for (i, point) in points.iter().cycle().take(12).enumerate() {
        let x = i as i64;
        faults::arm(point, 0);
        let sql = format!("insert into t values ({x})");
        let failed_insert = db.run_script(&sql).is_err();
        let _ = db.checkpoint(); // may fail under segment/manifest faults
        faults::disarm_all();
        if failed_insert {
            // The op was rejected; retry cleanly and it must land.
            db.run_script(&sql).unwrap();
        }
        expected.push(x);
    }
    assert_eq!(ints(&db, "select x from t order by x"), expected);
    drop(db);

    // Final recovery: every retried insert is present. A sync-fail orphan
    // record can legitimately replay as a duplicate (fsync ambiguity), so
    // compare the deduplicated history.
    let db = open(&dir);
    let mut state = ints(&db, "select x from t order by x");
    state.dedup();
    assert_eq!(state, expected);
    drop(db);
    let _ = fs::remove_dir_all(&dir);
}
