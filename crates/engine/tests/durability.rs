//! Durable-storage integration tests: WAL replay, checkpoint recovery,
//! epoch restoration, and the torn-tail property sweep (truncate/corrupt a
//! recorded WAL at every byte offset — recovery never panics and never
//! resurrects a partially-applied record).

use std::fs;
use std::path::{Path, PathBuf};

use conquer_engine::{DataType, Database, DurabilityOptions, SyncPolicy, Value};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("conquer-durability-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts_always() -> DurabilityOptions {
    DurabilityOptions {
        sync: SyncPolicy::Always,
        checkpoint_wal_bytes: 0, // no auto-checkpoint: tests control folding
    }
}

fn open(dir: &Path) -> Database {
    Database::open(dir, opts_always()).expect("open durable database")
}

fn ints(db: &Database, sql: &str) -> Vec<i64> {
    db.query(sql)
        .expect("query")
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        })
        .collect()
}

#[test]
fn create_insert_survive_reopen_via_wal_replay() {
    let dir = temp_dir("replay");
    {
        let db = open(&dir);
        db.run_script(
            "create table t (x integer, s text);
             insert into t values (1, 'a'), (2, 'b');
             insert into t values (3, 'c');",
        )
        .unwrap();
    } // dropped without checkpoint: everything lives in the WAL tail
    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2, 3]);
    // The recovered table is fully usable: inserts and queries work.
    db.run_script("insert into t values (4, 'd')").unwrap();
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2, 3, 4]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_then_reopen_loads_segments_with_verbatim_stats_and_epochs() {
    let dir = temp_dir("checkpoint");
    let (epochs, stats_before);
    {
        let db = open(&dir);
        db.run_script(
            "create table t (x integer);
             insert into t values (1), (2), (3), (3);",
        )
        .unwrap();
        assert!(db.checkpoint().unwrap(), "first checkpoint must run");
        epochs = (db.catalog_epoch(), db.stats_epoch());
        stats_before = format!("{:?}", db.table_stats("t").expect("stats"));
        // A clean checkpoint folds the WAL down to just its magic header.
        let status = db.storage_status().unwrap();
        assert!(status.segments > 0, "checkpoint must write segments");
        assert!(status.wal_bytes <= 8, "checkpoint must truncate the WAL");
    }
    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2, 3, 3]);
    // Stats come back verbatim from the segment, not recomputed — and the
    // epochs land exactly where they were, so plan caches keyed on them
    // stay sound across a restart.
    assert_eq!(
        format!("{:?}", db.table_stats("t").expect("stats")),
        stats_before
    );
    assert_eq!((db.catalog_epoch(), db.stats_epoch()), epochs);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_tail_on_top_of_checkpoint_replays() {
    let dir = temp_dir("tail");
    {
        let db = open(&dir);
        db.run_script("create table t (x integer); insert into t values (1)")
            .unwrap();
        db.checkpoint().unwrap();
        // Mutations after the checkpoint live only in the new WAL.
        db.run_script("insert into t values (2)").unwrap();
        db.run_script("create table u (y integer); insert into u values (9)")
            .unwrap();
    }
    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2]);
    assert_eq!(ints(&db, "select y from u"), vec![9]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn annotations_survive_restart() {
    let dir = temp_dir("annotations");
    {
        let db = open(&dir);
        db.run_script(
            "create table customer (custkey text, acctbal float);
             insert into customer values ('c1', 2000), ('c1', 100), ('c2', 2500);",
        )
        .unwrap();
        // Same shape conquer-core's annotate_database produces: replace the
        // table with a copy carrying the computed `cons` column. register()
        // logs it as a snapshot record.
        let table = db.table("customer").unwrap();
        let annotated = table.with_computed_column("cons", DataType::Text, |row| {
            if row[0] == Value::str("c2") {
                Value::str("y")
            } else {
                Value::str("n")
            }
        });
        db.register(annotated).unwrap();
    }
    let db = open(&dir);
    let rows = db
        .query("select custkey, cons from customer order by custkey, cons")
        .unwrap();
    let flags: Vec<(String, String)> = rows
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string()))
        .collect();
    assert_eq!(
        flags,
        vec![
            ("c1".into(), "n".into()),
            ("c1".into(), "n".into()),
            ("c2".into(), "y".into()),
        ]
    );
    // And again through a checkpoint: the annotation column is ordinary
    // stored data in the segment too.
    db.checkpoint().unwrap();
    drop(db);
    let db = open(&dir);
    assert_eq!(db.query("select cons from customer").unwrap().len(), 3);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn drop_table_replays() {
    let dir = temp_dir("drop");
    {
        let db = open(&dir);
        db.run_script("create table gone (x integer); insert into gone values (1)")
            .unwrap();
        db.run_script("create table kept (x integer); insert into kept values (2)")
            .unwrap();
        db.checkpoint().unwrap();
        // Drop AFTER the checkpoint: the segment still holds `gone`, and
        // only the WAL tail records its removal.
        db.drop_table("gone").unwrap().expect("gone existed");
    }
    let db = open(&dir);
    assert!(
        db.table("gone").is_err(),
        "dropped table must not resurrect"
    );
    assert_eq!(ints(&db, "select x from kept"), vec![2]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_idempotent_across_repeated_opens() {
    let dir = temp_dir("idempotent");
    {
        let db = open(&dir);
        db.run_script(
            "create table t (x integer);
             insert into t values (1), (2);",
        )
        .unwrap();
    }
    // Open/close repeatedly without mutating: each recovery replays the
    // same WAL and must land on the identical catalog.
    for _ in 0..3 {
        let db = open(&dir);
        assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2]);
    }
    // Same through a checkpoint (segments + empty WAL).
    open(&dir).checkpoint().unwrap();
    for _ in 0..3 {
        let db = open(&dir);
        assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2]);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_if_dirty_skips_clean_wal() {
    let dir = temp_dir("dirty");
    let db = open(&dir);
    db.run_script("create table t (x integer)").unwrap();
    assert!(db.checkpoint_if_dirty().unwrap());
    assert!(
        !db.checkpoint_if_dirty().unwrap(),
        "clean WAL must not re-checkpoint"
    );
    db.run_script("insert into t values (1)").unwrap();
    assert!(db.checkpoint_if_dirty().unwrap());
    drop(db);
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Torn-tail property sweep
// ---------------------------------------------------------------------------

/// Record a short WAL-only history whose valid recovery states are exactly
/// the prefixes of its statements:
///
/// ```text
/// []            (truncated inside CREATE)
/// [1]           (after `insert (1)`)
/// [1,2,3]       (after `insert (2),(3)` — one record, all-or-nothing)
/// [1,2,3,4]     (complete)
/// ```
///
/// Returns the WAL path. The multi-row insert is the partial-application
/// probe: recovering `[1,2]` would mean half a record was applied.
fn record_history(dir: &Path) -> PathBuf {
    let db = open(dir);
    db.run_script("create table t (x integer)").unwrap();
    db.run_script("insert into t values (1)").unwrap();
    db.run_script("insert into t values (2), (3)").unwrap();
    db.run_script("insert into t values (4)").unwrap();
    drop(db);
    let wal = dir.join("wal-0.log");
    assert!(wal.exists(), "history must live in generation-0 WAL");
    wal
}

const VALID_PREFIXES: &[&[i64]] = &[&[], &[1], &[1, 2, 3], &[1, 2, 3, 4]];

/// Reopen `dir` and assert the recovered state is one of the valid
/// prefixes. Never panics on any mutilation of the WAL.
fn assert_prefix_state(dir: &Path, what: &str) {
    let db = Database::open(dir, opts_always())
        .unwrap_or_else(|e| panic!("{what}: recovery must not fail: {e}"));
    let state: Vec<i64> = match db.table("t") {
        Ok(_) => {
            let mut xs = ints(&db, "select x from t order by x");
            xs.sort_unstable();
            xs
        }
        Err(_) => Vec::new(),
    };
    assert!(
        VALID_PREFIXES.contains(&state.as_slice()),
        "{what}: recovered {state:?}, which is not a statement prefix — \
         a partially-applied record was resurrected"
    );
}

#[test]
fn truncating_wal_at_every_offset_recovers_a_prefix() {
    let master = temp_dir("truncate-master");
    let wal = record_history(&master);
    let bytes = fs::read(&wal).unwrap();

    let dir = temp_dir("truncate-work");
    for cut in 0..bytes.len() {
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("wal-0.log"), &bytes[..cut]).unwrap();
        assert_prefix_state(&dir, &format!("truncated at byte {cut}"));
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&master);
}

#[test]
fn corrupting_wal_at_every_offset_recovers_a_prefix() {
    let master = temp_dir("corrupt-master");
    let wal = record_history(&master);
    let bytes = fs::read(&wal).unwrap();

    let dir = temp_dir("corrupt-work");
    for pos in 0..bytes.len() {
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0xFF;
        fs::write(dir.join("wal-0.log"), &mutated).unwrap();
        assert_prefix_state(&dir, &format!("corrupted at byte {pos}"));
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&master);
}

#[test]
fn reopen_after_torn_tail_truncates_and_new_writes_survive() {
    let master = temp_dir("heal-master");
    let wal = record_history(&master);
    let bytes = fs::read(&wal).unwrap();

    // Tear the final record in half, reopen, write on top of the healed
    // tail, and confirm a third open sees old prefix + new writes.
    let dir = temp_dir("heal-work");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("wal-0.log"), &bytes[..bytes.len() - 3]).unwrap();
    {
        let db = open(&dir);
        assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2, 3]);
        db.run_script("insert into t values (7)").unwrap();
    }
    let db = open(&dir);
    assert_eq!(ints(&db, "select x from t order by x"), vec![1, 2, 3, 7]);
    drop(db);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&master);
}
