//! Join edge cases, focused on the executor's fast paths: empty build or
//! probe sides (the annotation-aware Filter routinely produces these on
//! nearly-consistent databases), NULL join keys, build-side swapping, and
//! semi/anti joins through the decorrelated EXISTS path.

use conquer_engine::{Database, Value};

fn db_ab(a_rows: &str, b_rows: &str) -> Database {
    let db = Database::new();
    db.run_script(&format!(
        "create table a (x integer, y integer);
         create table b (x integer, z integer);
         {a_rows} {b_rows}"
    ))
    .unwrap();
    db
}

#[test]
fn inner_join_with_empty_left() {
    let db = db_ab("", "insert into b values (1, 10);");
    let rows = db.query("select a.y from a, b where a.x = b.x").unwrap();
    assert!(rows.is_empty());
}

#[test]
fn inner_join_with_empty_right() {
    let db = db_ab("insert into a values (1, 5);", "");
    let rows = db.query("select a.y from a, b where a.x = b.x").unwrap();
    assert!(rows.is_empty());
}

#[test]
fn left_outer_join_with_empty_right_pads_every_row() {
    let db = db_ab("insert into a values (1, 5), (2, 6);", "");
    let rows = db
        .query("select a.y, b.z from a left outer join b on a.x = b.x order by a.y")
        .unwrap();
    assert_eq!(
        rows.rows,
        vec![
            vec![Value::Int(5), Value::Null],
            vec![Value::Int(6), Value::Null]
        ]
    );
}

#[test]
fn anti_join_with_empty_right_passes_everything() {
    let db = db_ab("insert into a values (1, 5), (2, 6);", "");
    let rows = db
        .query("select a.y from a where not exists (select * from b where b.x = a.x) order by a.y")
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn semi_join_with_empty_right_is_empty() {
    let db = db_ab("insert into a values (1, 5);", "");
    let rows = db
        .query("select a.y from a where exists (select * from b where b.x = a.x)")
        .unwrap();
    assert!(rows.is_empty());
}

#[test]
fn null_keys_never_match_in_joins() {
    let db = db_ab(
        "insert into a values (null, 5), (1, 6);",
        "insert into b values (null, 10), (1, 20);",
    );
    // Inner join: NULL = NULL is unknown, so only the (1, 1) pair matches.
    let rows = db
        .query("select a.y, b.z from a, b where a.x = b.x")
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(6), Value::Int(20)]]);
    // Left outer join: the NULL-keyed a-row survives padded.
    let rows = db
        .query("select a.y, b.z from a left outer join b on a.x = b.x order by a.y")
        .unwrap();
    assert_eq!(
        rows.rows,
        vec![
            vec![Value::Int(5), Value::Null],
            vec![Value::Int(6), Value::Int(20)]
        ]
    );
    // Anti join: the NULL-keyed row has no match, so NOT EXISTS keeps it.
    let rows = db
        .query("select a.y from a where not exists (select * from b where b.x = a.x)")
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(5)]]);
}

#[test]
fn build_side_swap_preserves_column_order_and_multiplicity() {
    // Left is much smaller than right: the executor builds on the left and
    // probes with the right, but output must still be left-columns-first
    // with full bag semantics.
    let db = Database::new();
    db.run_script(
        "create table small (k integer, tag text);
         insert into small values (1, 'one');
         create table big (k integer, v integer);",
    )
    .unwrap();
    let inserts: Vec<String> = (0..50).map(|i| format!("({}, {i})", i % 5)).collect();
    db.run_script(&format!("insert into big values {}", inserts.join(", ")))
        .unwrap();
    let rows = db
        .query("select s.tag, b.v from small s, big b where s.k = b.k order by b.v")
        .unwrap();
    // k = 1 appears 10 times in big.
    assert_eq!(rows.len(), 10);
    assert!(rows.rows.iter().all(|r| r[0] == Value::str("one")));
    assert_eq!(rows.schema.columns[0].name, "tag");
}

#[test]
fn duplicate_keys_on_both_sides_multiply() {
    let db = db_ab(
        "insert into a values (1, 5), (1, 6);",
        "insert into b values (1, 10), (1, 20), (1, 30);",
    );
    let rows = db
        .query("select a.y, b.z from a, b where a.x = b.x")
        .unwrap();
    assert_eq!(rows.len(), 6);
}

#[test]
fn residual_condition_limits_matches_per_key() {
    let db = db_ab(
        "insert into a values (1, 5);",
        "insert into b values (1, 10), (1, 20);",
    );
    let rows = db
        .query("select b.z from a join b on a.x = b.x and b.z > 15")
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(20)]]);
}

#[test]
fn self_equi_filter_is_not_a_join() {
    // x = y within one relation must classify as a plain selection.
    let db = Database::new();
    db.run_script(
        "create table t (x integer, y integer);
         insert into t values (1, 1), (1, 2);",
    )
    .unwrap();
    let rows = db.query("select t.x from t where t.x = t.y").unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn three_way_join_orders_by_connectivity() {
    // a joins c only through b; the planner must not cross-join a with c.
    let db = Database::new();
    db.run_script(
        "create table a (k integer); create table b (k integer, fk integer);
         create table c (k integer, tag text);
         insert into a values (1), (2);
         insert into b values (1, 100), (2, 200);
         insert into c values (100, 'x'), (200, 'y');",
    )
    .unwrap();
    let rows = db
        .query("select c.tag from a, b, c where a.k = b.k and b.fk = c.k and a.k = 2")
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::str("y")]]);
}

#[test]
fn cross_join_fallback_when_no_predicate_connects() {
    let db = db_ab(
        "insert into a values (1, 5), (2, 6);",
        "insert into b values (7, 10);",
    );
    let rows = db.query("select a.y, b.z from a, b").unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn correlated_exists_through_join_output() {
    // EXISTS correlated on a column produced by a join of two tables.
    let db = Database::new();
    db.run_script(
        "create table a (k integer, fk integer);
         create table b (k integer, v integer);
         create table w (v integer);
         insert into a values (1, 10), (2, 20);
         insert into b values (10, 7), (20, 9);
         insert into w values (7);",
    )
    .unwrap();
    let rows = db
        .query(
            "select a.k from a, b where a.fk = b.k \
             and exists (select * from w where w.v = b.v)",
        )
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(1)]]);
}
