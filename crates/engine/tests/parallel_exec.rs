//! Morsel-parallel execution vs the serial oracle.
//!
//! Every test runs the same query at `threads = 1` (the unchanged serial
//! path) and at `threads ∈ {2, 8}`, asserting the parallel executor
//! reproduces the serial result *exactly* — including row order, which the
//! executor reconstructs from morsel order even where SQL leaves it free.
//! The one documented exception is floating-point SUM/AVG, where the
//! parallel merge re-associates addition; those use a relative tolerance.
//!
//! Tables are sized past the executor's parallel threshold (4 × 1024-row
//! morsels) so the parallel code paths actually engage.

use conquer_engine::{
    CancellationToken, DataType, Database, EngineError, ExecOptions, ResourceLimits, Rows, Table,
    Value,
};

/// Deterministic LCG so the fixture is identical across runs and platforms.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// `t(k, v, s, f)` with `n` rows: `k` near-unique, `v` low-cardinality
/// (many groups with many rows each), `s` a 7-way skewed text column with
/// ties for sort-stability checks, `f` a float. Plus `u(k, w)` with `n/8`
/// rows sharing `k`'s domain so joins hit and miss.
fn fixture(n: usize) -> Database {
    let db = Database::new();
    let mut rng = Lcg(0xC0FFEE);
    let mut t = Table::new(
        "t",
        vec![
            ("k", DataType::Integer),
            ("v", DataType::Integer),
            ("s", DataType::Text),
            ("f", DataType::Float),
        ],
    );
    for i in 0..n {
        let r = rng.next();
        let s = match r % 7 {
            0 => "alpha",
            1 => "bravo",
            2 => "charlie",
            3 => "delta",
            4 => "echo",
            5 => "", // empty string ties with itself a lot
            _ => "golf",
        };
        let v = (r % 97) as i64;
        let row = vec![
            Value::Int(i as i64),
            if r.is_multiple_of(31) {
                Value::Null
            } else {
                Value::Int(v)
            },
            Value::str(s),
            Value::Float((r % 1000) as f64 / 8.0 - 60.0),
        ];
        t.push(row).unwrap();
    }
    db.register(t).unwrap();
    let mut u = Table::new(
        "u",
        vec![("k", DataType::Integer), ("w", DataType::Integer)],
    );
    for _ in 0..n / 8 {
        let r = rng.next();
        u.push(vec![
            Value::Int((r % (2 * n as u64)) as i64),
            Value::Int((r % 13) as i64),
        ])
        .unwrap();
    }
    db.register(u).unwrap();
    db
}

fn run_at(db: &Database, sql: &str, threads: usize) -> Rows {
    db.query_with(sql, &ExecOptions::default().with_threads(threads))
        .unwrap_or_else(|e| panic!("query failed at threads={threads}: {e}\n{sql}"))
}

/// Assert the query's output is bit-identical at 1, 2, and 8 threads.
fn assert_thread_invariant(db: &Database, sql: &str) {
    let serial = run_at(db, sql, 1);
    for threads in [2, 8] {
        let parallel = run_at(db, sql, threads);
        assert_eq!(
            serial.rows, parallel.rows,
            "threads={threads} diverged from serial on: {sql}"
        );
    }
}

/// Like [`assert_thread_invariant`] but floats compare within relative
/// tolerance (parallel SUM/AVG re-associates addition).
fn assert_thread_invariant_approx(db: &Database, sql: &str) {
    let serial = run_at(db, sql, 1);
    for threads in [2, 8] {
        let parallel = run_at(db, sql, threads);
        assert_eq!(serial.rows.len(), parallel.rows.len(), "row count: {sql}");
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                match (x, y) {
                    (Value::Float(x), Value::Float(y)) => {
                        let scale = x.abs().max(y.abs()).max(1.0);
                        assert!(
                            (x - y).abs() <= 1e-9 * scale,
                            "float diverged: {x} vs {y} at threads={threads} on: {sql}"
                        );
                    }
                    _ => assert_eq!(x, y, "threads={threads} diverged on: {sql}"),
                }
            }
        }
    }
}

#[test]
fn filter_and_project_preserve_order() {
    let db = fixture(12_000);
    assert_thread_invariant(&db, "select t.k, t.v from t where t.v > 40");
    assert_thread_invariant(&db, "select t.k from t where t.s = 'delta'");
}

#[test]
fn inner_join_matches_serial() {
    let db = fixture(12_000);
    assert_thread_invariant(&db, "select t.k, t.v, u.w from t, u where t.k = u.k");
}

#[test]
fn join_with_residual_matches_serial() {
    let db = fixture(12_000);
    assert_thread_invariant(
        &db,
        "select t.k, u.w from t, u where t.k = u.k and t.v > u.w",
    );
}

#[test]
fn semi_and_anti_joins_match_serial() {
    let db = fixture(12_000);
    assert_thread_invariant(
        &db,
        "select t.k from t where exists (select u.k from u where u.k = t.k)",
    );
    assert_thread_invariant(
        &db,
        "select t.k from t where not exists (select u.k from u where u.k = t.k)",
    );
}

#[test]
fn aggregation_matches_serial_including_group_order() {
    let db = fixture(12_000);
    // Integer aggregates are exact; group rows must come out in serial
    // first-seen order.
    assert_thread_invariant(
        &db,
        "select t.v, count(*), sum(t.k), min(t.k), max(t.k) from t group by t.v",
    );
    // Global aggregate (no GROUP BY) over an input that fans out.
    assert_thread_invariant(&db, "select count(*), sum(t.k) from t");
}

#[test]
fn distinct_aggregates_match_serial() {
    let db = fixture(12_000);
    assert_thread_invariant(
        &db,
        "select t.v, count(distinct t.s), min(t.s) from t group by t.v",
    );
}

#[test]
fn float_aggregates_match_within_ulp_tolerance() {
    let db = fixture(12_000);
    assert_thread_invariant_approx(&db, "select t.v, sum(t.f), avg(t.f) from t group by t.v");
}

#[test]
fn distinct_preserves_first_occurrence_order() {
    let db = fixture(12_000);
    assert_thread_invariant(&db, "select distinct t.v from t");
    assert_thread_invariant(&db, "select distinct t.s, t.v from t");
}

#[test]
fn sort_preserves_stable_tie_order() {
    let db = fixture(12_000);
    // `s` has only 7 distinct values over 12k rows: massive tie runs. The
    // parallel sort must reproduce the serial stable sort exactly.
    assert_thread_invariant(&db, "select t.s, t.k from t order by t.s");
    assert_thread_invariant(&db, "select t.s, t.v, t.k from t order by t.s, t.v desc");
    assert_thread_invariant(&db, "select t.v, t.k from t order by t.v desc limit 100");
}

#[test]
fn order_by_with_nulls_matches_serial() {
    let db = fixture(12_000);
    // `v` is NULL for ~1/31 of rows; NULLs sort last in both paths.
    assert_thread_invariant(&db, "select t.v, t.k from t order by t.v");
}

#[test]
fn union_all_feeding_parallel_operators_matches_serial() {
    let db = fixture(8_000);
    assert_thread_invariant(
        &db,
        "select t.v from t union all select u.w from u order by 1",
    );
}

#[test]
fn row_limit_trips_identically_at_any_thread_count() {
    let db = fixture(12_000);
    let sql = "select t.k, u.w from t, u where t.k = u.k";
    for threads in [1, 2, 8] {
        let options = ExecOptions {
            limits: ResourceLimits::default().with_max_rows(500),
            ..ExecOptions::default()
        }
        .with_threads(threads);
        let err = db.query_with(sql, &options).unwrap_err();
        assert!(
            matches!(err, EngineError::RowLimitExceeded(_)),
            "threads={threads}: expected RowLimitExceeded, got {err:?}"
        );
    }
    // The database stays fully usable after governed parallel failures.
    assert_eq!(run_at(&db, "select count(*) from u", 8).rows.len(), 1);
}

#[test]
fn memory_limit_trips_identically_at_any_thread_count() {
    let db = fixture(12_000);
    let sql = "select t.v, count(distinct t.s) from t group by t.v";
    for threads in [1, 2, 8] {
        let options = ExecOptions {
            limits: ResourceLimits::default().with_max_memory_bytes(2_000),
            ..ExecOptions::default()
        }
        .with_threads(threads);
        let err = db.query_with(sql, &options).unwrap_err();
        assert!(
            matches!(err, EngineError::MemoryExceeded(_)),
            "threads={threads}: expected MemoryExceeded, got {err:?}"
        );
    }
}

#[test]
fn pre_cancelled_token_stops_parallel_execution() {
    let db = fixture(12_000);
    let token = CancellationToken::new();
    token.cancel();
    let options = ExecOptions {
        cancellation: Some(token),
        ..ExecOptions::default()
    }
    .with_threads(8);
    let err = db
        .query_with("select t.v, count(*) from t group by t.v", &options)
        .unwrap_err();
    assert!(matches!(err, EngineError::Cancelled(_)), "got {err:?}");
}

#[test]
fn explain_analyze_reports_thread_fanout() {
    let db = fixture(12_000);
    let (rows, text) = db
        .explain_analyze_with(
            "select t.v, count(*) from t where t.k >= 0 group by t.v order by t.v",
            &ExecOptions::default().with_threads(4),
        )
        .unwrap();
    assert!(!rows.rows.is_empty());
    assert!(
        text.contains("threads="),
        "EXPLAIN ANALYZE missing thread fan-out:\n{text}"
    );
    // The serial run never reports a thread count.
    let (_, serial_text) = db
        .explain_analyze_with(
            "select t.v, count(*) from t where t.k >= 0 group by t.v order by t.v",
            &ExecOptions::default().with_threads(1),
        )
        .unwrap();
    assert!(
        !serial_text.contains("threads="),
        "serial EXPLAIN ANALYZE should not report threads:\n{serial_text}"
    );
}

#[test]
fn small_inputs_fall_back_to_serial() {
    // Below the morsel threshold the parallel executor must not spawn; we
    // can't observe threads directly, but EXPLAIN ANALYZE exposes fan-out.
    let db = fixture(512);
    let (_, text) = db
        .explain_analyze_with(
            "select t.v, count(*) from t group by t.v",
            &ExecOptions::default().with_threads(8),
        )
        .unwrap();
    assert!(
        !text.contains("threads="),
        "sub-threshold input should run serially:\n{text}"
    );
    assert_thread_invariant(&db, "select t.v, count(*) from t group by t.v");
}

#[test]
fn traced_parallel_query_includes_worker_spans() {
    let db = fixture(10_000);
    let ctx = conquer_obs::TraceContext::new();
    let options = ExecOptions::default()
        .with_threads(4)
        .with_trace(ctx.clone());
    let rows = db
        .query_with(
            "select t.v, count(*) from t group by t.v order by t.v",
            &options,
        )
        .unwrap();
    assert!(!rows.rows.is_empty());
    let spans = ctx.take_records();
    let execute = spans
        .iter()
        .find(|s| s.name == "execute")
        .expect("execute span captured");
    let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
    assert!(
        !workers.is_empty(),
        "a 10k-row parallel aggregate must produce worker spans; got {:?}",
        spans.iter().map(|s| s.name).collect::<Vec<_>>()
    );
    assert!(
        workers.iter().any(|s| s.thread != execute.thread),
        "worker spans must come from threads other than the coordinator"
    );
    assert!(
        workers
            .iter()
            .all(|s| s.fields.iter().any(|(k, _)| *k == "worker")),
        "worker spans carry their worker id"
    );
    // Per-phase totals over the trace include the execute phase.
    let totals = conquer_obs::phase_totals(&spans);
    assert!(totals.iter().any(|(name, _)| *name == "execute"));
}

#[test]
fn capture_sees_worker_spans_without_a_trace_context() {
    // `capture` collectors are adopted by workers the same way installed
    // trace contexts are, so phase breakdowns see parallel work too.
    let db = fixture(10_000);
    let (rows, spans) = conquer_obs::capture(|| {
        db.query_with(
            "select t.v, count(*) from t group by t.v order by t.v",
            &ExecOptions::default().with_threads(4),
        )
        .unwrap()
    });
    assert!(!rows.rows.is_empty());
    assert!(
        spans.iter().any(|s| s.name == "worker"),
        "capture should include adopted worker spans"
    );
}

#[test]
fn untraced_parallel_queries_produce_no_worker_spans() {
    // Without an active collector the worker guard is inert: run a traced
    // query after an untraced one and check only the traced run recorded.
    let db = fixture(10_000);
    let sql = "select t.v, count(*) from t group by t.v order by t.v";
    run_at(&db, sql, 4); // untraced; nothing to observe, must not panic
    let ctx = conquer_obs::TraceContext::new();
    let options = ExecOptions::default()
        .with_threads(4)
        .with_trace(ctx.clone());
    db.query_with(sql, &options).unwrap();
    let spans = ctx.take_records();
    assert!(spans.iter().any(|s| s.name == "worker"));
}
