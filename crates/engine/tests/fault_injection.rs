//! Tier-2 fault-injection tests (`--features fault-injection`): every named
//! fault point propagates an injected failure as a structured `Err` — never
//! a panic — and the `Database` stays fully usable afterwards.

#![cfg(feature = "fault-injection")]

use conquer_engine::{faults, Database, EngineError, ExecOptions};

/// One query per fault point, each guaranteed to reach that point on the
/// small fixture below.
const POINT_QUERIES: &[(&str, &str)] = &[
    ("scan", "select x from a"),
    ("filter", "select x from a where x > 1"),
    ("project", "select x + 1 from a"),
    ("rename", "select t.x from (select x from a) t"),
    ("join.build", "select a.x from a join b on a.x = b.y"),
    ("join.probe", "select a.x from a join b on a.x = b.y"),
    ("nested_loop", "select a.x from a join b on a.x > b.y"),
    ("aggregate.group", "select x, count(*) from a group by x"),
    ("distinct", "select distinct x from a"),
    ("union", "select x from a union all select y from b"),
    ("sort", "select x from a order by x"),
    ("limit", "select x from a order by x limit 2"),
    (
        "cte.materialize",
        "with t as (select x from a) select x from t",
    ),
];

fn fixture() -> Database {
    let db = Database::new();
    db.run_script(
        "create table a (x integer);
         create table b (y integer);
         insert into a values (1), (2), (3), (4);
         insert into b values (2), (3), (5);",
    )
    .expect("fixture");
    db
}

fn is_injected(err: &EngineError, point: &str) -> bool {
    matches!(err, EngineError::Execution(msg) if msg.contains("injected fault")
        && msg.contains(point))
}

/// WAL/checkpoint-layer points: not reachable from a query — exercised by
/// the crash matrix in `tests/durability_faults.rs` instead.
const STORAGE_POINTS: &[&str] = &[
    "wal_append_io",
    "wal_sync_fail",
    "segment_write_torn",
    "manifest_rename_fail",
];

/// Points whose armed failure never surfaces as a query `Err`: the engine
/// degrades instead (here, the planner falls back to a SeqScan access
/// path). Covered by `index_build_failure_falls_back_to_seq_scan` below
/// rather than the err-propagation loop.
const FALLBACK_POINTS: &[&str] = &["index_build_fail"];

#[test]
fn every_fault_point_errs_and_database_survives() {
    // The query table must cover the exhaustive point list, so a new
    // executor fault point cannot ship without a test riding through it.
    // (Storage-layer points ride through durability_faults.rs.)
    let covered: std::collections::BTreeSet<&str> = POINT_QUERIES.iter().map(|(p, _)| *p).collect();
    let all: std::collections::BTreeSet<&str> = faults::POINTS
        .iter()
        .copied()
        .filter(|p| !STORAGE_POINTS.contains(p) && !FALLBACK_POINTS.contains(p))
        .collect();
    assert_eq!(covered, all, "POINT_QUERIES must cover faults::POINTS");

    let db = fixture();
    for (point, sql) in POINT_QUERIES {
        faults::disarm_all();
        // Sanity: the query actually reaches the point when disarmed.
        db.query(sql)
            .unwrap_or_else(|e| panic!("{point}: baseline query failed: {e}"));
        assert!(
            faults::hits(point) > 0,
            "query `{sql}` never reaches fault point `{point}`"
        );

        faults::disarm_all();
        faults::arm(point, 0);
        let err = db
            .query(sql)
            .expect_err(&format!("armed `{point}` must surface as Err"));
        assert!(
            is_injected(&err, point),
            "`{point}`: expected injected-fault error, got {err:?}"
        );

        // The database is untouched: the same query succeeds right after.
        faults::disarm_all();
        let rows = db
            .query(sql)
            .unwrap_or_else(|e| panic!("{point}: database unusable after trip: {e}"));
        assert!(!rows.schema.columns.is_empty());
    }
}

/// The columnar kernels must not move a fault point: every trip sits at
/// operator entry, so an armed point fires identically whether the
/// operator runs its vectorized or row-at-a-time body — and the database
/// survives either way.
#[test]
fn fault_points_fire_identically_row_and_columnar() {
    let db = fixture();
    for columnar in [false, true] {
        let options = ExecOptions::default().with_columnar(columnar);
        for (point, sql) in POINT_QUERIES {
            faults::disarm_all();
            faults::arm(point, 0);
            let err = db
                .query_with(sql, &options)
                .expect_err(&format!("columnar={columnar}: armed `{point}` must err"));
            assert!(
                is_injected(&err, point),
                "columnar={columnar} `{point}`: expected injected fault, got {err:?}"
            );
            faults::disarm_all();
            let rows = db.query_with(sql, &options).unwrap_or_else(|e| {
                panic!("columnar={columnar} {point}: database unusable after trip: {e}")
            });
            assert!(!rows.schema.columns.is_empty());
        }
    }
}

#[test]
fn armed_countdown_survives_across_queries() {
    let db = fixture();
    // Each query reaches `join.probe` once; with a countdown of 1, the
    // first query passes and the second trips — the schedule is stateful
    // across queries on the same thread.
    faults::disarm_all();
    faults::arm("join.probe", 1);
    let sql = "select a.x from a join b on a.x = b.y";
    db.query(sql).expect("first probe hit only counts down");
    let err = db.query(sql).expect_err("second probe hit fires");
    assert!(is_injected(&err, "join.probe"));
    faults::disarm_all();
    assert!(db.query("select x from a").is_ok());
}

#[test]
fn seeded_schedule_never_panics_and_is_deterministic() {
    let db = fixture();
    let outcomes = |seed: u64| -> Vec<bool> {
        (0..16)
            .map(|_| {
                faults::disarm_all();
                faults::arm_seeded(seed, 4);
                let mut failures = Vec::new();
                for (_, sql) in POINT_QUERIES {
                    failures.push(db.query(sql).is_err());
                }
                faults::disarm_all();
                failures.iter().any(|f| *f)
            })
            .collect()
    };
    let a = outcomes(0xDEAD_BEEF);
    let b = outcomes(0xDEAD_BEEF);
    assert_eq!(a, b, "seeded schedule must reproduce exactly");
    assert!(
        a.iter().any(|f| *f),
        "a 1-in-4 schedule over all points should fire at least once"
    );
    // And the database still answers after the whole storm.
    assert_eq!(db.query("select count(*) from a").unwrap().len(), 1);
}

/// `index_build_fail` is a degradation point, not an error point: with the
/// build tripping, planning falls back to a SeqScan access path and the
/// query still returns the right rows — never an `Err`, never a panic.
#[test]
fn index_build_failure_falls_back_to_seq_scan() {
    let db = fixture();
    db.create_index("a", &["x"]).expect("declare index");
    let sql = "select x from a where x = 2";

    // Arm persistently before the *first* planning pass: every lazy build
    // attempt (the planner and the optimizer each construct an estimator)
    // trips, so the plan must fall back to a sequential scan.
    faults::disarm_all();
    faults::arm_every("index_build_fail");
    let rows = db
        .query(sql)
        .expect("armed index_build_fail must not surface as a query error");
    assert_eq!(rows.rows.len(), 1, "fallback path returns correct answers");
    assert!(
        faults::hits("index_build_fail") > 0,
        "the lazy build actually reached the fault point"
    );
    let plan = db.explain(sql).expect("explain under armed fault");
    assert!(
        !plan.contains("access=index"),
        "failed build must leave a SeqScan plan, got:\n{plan}"
    );

    // Disarmed, the next planned query builds the index and uses it.
    faults::disarm_all();
    let plan = db.explain(sql).expect("explain after disarm");
    assert!(
        plan.contains("access=index(x eq)"),
        "build succeeds once disarmed, got:\n{plan}"
    );
    let indexed = db.query(sql).expect("indexed query");
    assert_eq!(indexed.rows, rows.rows);
}
