//! End-to-end SQL execution tests for the engine, including hand-written
//! versions of the paper's rewritten queries (which conquer-core will later
//! generate automatically).

use conquer_engine::{Database, ExecOptions, Value};

fn v_int(rows: &conquer_engine::Rows) -> Vec<Vec<i64>> {
    rows.rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Int(i) => *i,
                    other => panic!("expected int, got {other:?}"),
                })
                .collect()
        })
        .collect()
}

#[allow(dead_code)]
fn sorted(mut rows: Vec<Vec<i64>>) -> Vec<Vec<i64>> {
    rows.sort();
    rows
}

/// The inconsistent customer relation of Figure 1.
fn figure1_db() -> Database {
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .unwrap();
    db
}

/// The inconsistent order/customer database of Figure 2.
fn figure2_db() -> Database {
    let db = Database::new();
    db.run_script(
        "create table orders (orderkey text, clerk text, custfk text);
         insert into orders values
           ('o1', 'ali', 'c1'), ('o2', 'jo', 'c2'), ('o2', 'ali', 'c3'),
           ('o3', 'ali', 'c4'), ('o3', 'pat', 'c2'), ('o4', 'ali', 'c2'),
           ('o4', 'ali', 'c3'), ('o5', 'ali', 'c2');
         create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .unwrap();
    db
}

#[test]
fn original_q1_returns_possible_answers() {
    // Section 1: q1 on Figure 1 returns {c1, c2, c3, c3}.
    let db = figure1_db();
    let rows = db
        .query("select custkey from customer where acctbal > 1000")
        .unwrap();
    let mut vals: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
    vals.sort();
    assert_eq!(vals, vec!["c1", "c2", "c3", "c3"]);
}

#[test]
fn hand_rewritten_qc1_returns_consistent_answers() {
    // The rewriting from Section 1 of the paper, verbatim.
    let db = figure1_db();
    let rows = db
        .query(
            "select distinct custkey from customer c \
             where acctbal > 1000 and not exists (\
               select * from customer c2 \
               where c2.custkey = c.custkey and c2.acctbal <= 1000)",
        )
        .unwrap();
    let mut vals: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
    vals.sort();
    assert_eq!(vals, vec!["c2", "c3"]);
}

#[test]
fn hand_rewritten_qc2_figure3() {
    // Figure 3 of the paper: consistent answers {o2, o4, o5}.
    let db = figure2_db();
    let rows = db
        .query(
            "with candidates as (
               select distinct o.orderkey from customer c, orders o
               where c.acctbal > 1000 and o.custfk = c.custkey),
             filter as (
               select o.orderkey from candidates cand
               join orders o on cand.orderkey = o.orderkey
               left outer join customer c on o.custfk = c.custkey
               where c.custkey is null or c.acctbal <= 1000)
             select orderkey from candidates cand
             where not exists (select * from filter f where cand.orderkey = f.orderkey)",
        )
        .unwrap();
    let mut vals: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
    vals.sort();
    assert_eq!(vals, vec!["o2", "o4", "o5"]);
}

#[test]
fn hand_rewritten_qc3_figure4() {
    // Figure 4: the consistent answer to q3 is {ali, ali} (with multiplicity).
    let db = figure2_db();
    let rows = db
        .query(
            "with candidates as (
               select distinct o.orderkey, o.clerk from customer c, orders o
               where c.acctbal > 1000 and o.custfk = c.custkey),
             filter as (
               select o.orderkey from candidates cand
               join orders o on cand.orderkey = o.orderkey
               left outer join customer c on o.custfk = c.custkey
               where c.custkey is null or c.acctbal <= 1000
               union all
               select orderkey from candidates cand
               group by orderkey having count(*) > 1)
             select clerk from candidates cand
             where not exists (select * from filter f where cand.orderkey = f.orderkey)",
        )
        .unwrap();
    let vals: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(vals, vec!["ali", "ali"]);
}

#[test]
fn hand_rewritten_qc3_without_decorrelation_matches() {
    let db = figure2_db();
    let sql = "with candidates as (
                 select distinct o.orderkey, o.clerk from customer c, orders o
                 where c.acctbal > 1000 and o.custfk = c.custkey),
               filter as (
                 select o.orderkey from candidates cand
                 join orders o on cand.orderkey = o.orderkey
                 left outer join customer c on o.custfk = c.custkey
                 where c.custkey is null or c.acctbal <= 1000
                 union all
                 select orderkey from candidates cand
                 group by orderkey having count(*) > 1)
               select clerk from candidates cand
               where not exists (select * from filter f where cand.orderkey = f.orderkey)";
    let fast = db.query(sql).unwrap();
    let slow = db
        .query_with(
            sql,
            &ExecOptions {
                decorrelate_exists: false,
                ..ExecOptions::default()
            },
        )
        .unwrap();
    assert_eq!(fast.rows, slow.rows);
    let inline = db
        .query_with(
            sql,
            &ExecOptions {
                materialize_ctes: false,
                ..ExecOptions::default()
            },
        )
        .unwrap();
    assert_eq!(fast.rows, inline.rows);
}

#[test]
fn inner_join_bag_semantics() {
    let db = Database::new();
    db.run_script(
        "create table a (x integer); insert into a values (1), (1), (2);
         create table b (x integer); insert into b values (1), (1), (3);",
    )
    .unwrap();
    let rows = db.query("select a.x from a join b on a.x = b.x").unwrap();
    // 2 a-rows with x=1, each matching 2 b-rows: 4 output rows.
    assert_eq!(v_int(&rows), vec![vec![1], vec![1], vec![1], vec![1]]);
}

#[test]
fn left_outer_join_pads_nulls() {
    let db = Database::new();
    db.run_script(
        "create table a (x integer); insert into a values (1), (2);
         create table b (x integer, y integer); insert into b values (1, 10);",
    )
    .unwrap();
    let rows = db
        .query("select a.x, b.y from a left outer join b on a.x = b.x order by a.x")
        .unwrap();
    assert_eq!(
        rows.rows,
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Null]
        ]
    );
}

#[test]
fn left_outer_join_on_residual_condition() {
    // Residual ON predicates affect the match decision, not a post-filter.
    let db = Database::new();
    db.run_script(
        "create table a (x integer); insert into a values (1);
         create table b (x integer, y integer); insert into b values (1, 5);",
    )
    .unwrap();
    let rows = db
        .query("select a.x, b.y from a left outer join b on a.x = b.x and b.y > 100")
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(1), Value::Null]]);
}

#[test]
fn cross_join_via_comma() {
    let db = Database::new();
    db.run_script(
        "create table a (x integer); insert into a values (1), (2);
         create table b (y integer); insert into b values (10), (20);",
    )
    .unwrap();
    let rows = db.query("select x, y from a, b").unwrap();
    assert_eq!(rows.len(), 4);
}

#[test]
fn group_by_with_having_and_count() {
    let db = Database::new();
    db.run_script(
        "create table t (k text, v integer);
         insert into t values ('a', 1), ('a', 2), ('b', 3), ('b', 4), ('c', 5);",
    )
    .unwrap();
    let rows = db
        .query("select k, count(*), sum(v) from t group by k having count(*) > 1 order by k")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.rows[0][1], Value::Int(2));
    assert_eq!(rows.rows[0][2], Value::Int(3));
    assert_eq!(rows.rows[1][2], Value::Int(7));
}

#[test]
fn global_aggregates_over_empty_input() {
    let db = Database::new();
    db.run_script("create table t (v integer)").unwrap();
    let rows = db
        .query("select count(*), sum(v), min(v), avg(v) from t")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows[0][0], Value::Int(0));
    assert_eq!(rows.rows[0][1], Value::Null);
    assert_eq!(rows.rows[0][2], Value::Null);
    assert_eq!(rows.rows[0][3], Value::Null);
}

#[test]
fn grouped_aggregate_over_empty_input_returns_no_rows() {
    let db = Database::new();
    db.run_script("create table t (k integer, v integer)")
        .unwrap();
    let rows = db.query("select k, sum(v) from t group by k").unwrap();
    assert!(rows.is_empty());
}

#[test]
fn aggregates_skip_nulls() {
    let db = Database::new();
    db.run_script(
        "create table t (v integer);
         insert into t values (1), (null), (3);",
    )
    .unwrap();
    let rows = db
        .query("select count(*), count(v), sum(v), avg(v) from t")
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(3));
    assert_eq!(rows.rows[0][1], Value::Int(2));
    assert_eq!(rows.rows[0][2], Value::Int(4));
    assert_eq!(rows.rows[0][3], Value::Float(2.0));
}

#[test]
fn distinct_aggregates() {
    let db = Database::new();
    db.run_script(
        "create table t (v integer);
         insert into t values (1), (1), (2), (null);",
    )
    .unwrap();
    let rows = db
        .query("select count(distinct v), sum(distinct v) from t")
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(2));
    assert_eq!(rows.rows[0][1], Value::Int(3));
}

#[test]
fn group_by_expression() {
    let db = Database::new();
    db.run_script(
        "create table t (v integer);
         insert into t values (1), (2), (3), (4);",
    )
    .unwrap();
    let rows = db
        .query("select v % 2, count(*) from t group by v % 2 order by 1")
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![0, 2], vec![1, 2]]);
}

#[test]
fn sum_mixing_int_and_float_promotes() {
    let db = Database::new();
    db.run_script(
        "create table t (v float);
         insert into t values (1), (2.5);",
    )
    .unwrap();
    let rows = db.query("select sum(v) from t").unwrap();
    assert_eq!(rows.rows[0][0], Value::Float(3.5));
}

#[test]
fn union_all_keeps_duplicates() {
    let db = Database::new();
    db.run_script("create table t (v integer); insert into t values (1)")
        .unwrap();
    let rows = db
        .query("select v from t union all select v from t")
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn union_all_arity_mismatch_errors() {
    let db = Database::new();
    db.run_script("create table t (a integer, b integer); insert into t values (1, 2)")
        .unwrap();
    assert!(db
        .query("select a from t union all select a, b from t")
        .is_err());
}

#[test]
fn order_by_desc_and_nulls_last() {
    let db = Database::new();
    db.run_script(
        "create table t (v integer);
         insert into t values (2), (null), (1), (3);",
    )
    .unwrap();
    let asc = db.query("select v from t order by v").unwrap();
    assert_eq!(
        asc.rows,
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(3)],
            vec![Value::Null]
        ]
    );
    let desc = db.query("select v from t order by v desc").unwrap();
    assert_eq!(desc.rows[0], vec![Value::Int(3)]);
}

#[test]
fn order_by_alias_and_position_and_limit() {
    let db = Database::new();
    db.run_script(
        "create table t (k text, v integer);
         insert into t values ('a', 1), ('b', 5), ('c', 3);",
    )
    .unwrap();
    let rows = db
        .query("select k, v * 2 as doubled from t order by doubled desc limit 2")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.rows[0][1], Value::Int(10));
    let rows = db
        .query("select k, v from t order by 2 desc limit 1")
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::str("b"));
}

#[test]
fn correlated_exists_and_not_exists() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer); insert into t values (1), (2), (3);
         create table u (k integer); insert into u values (2), (3), (3);",
    )
    .unwrap();
    let rows = db
        .query("select k from t where exists (select * from u where u.k = t.k) order by k")
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![2], vec![3]]);
    let rows = db
        .query("select k from t where not exists (select * from u where u.k = t.k)")
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![1]]);
}

#[test]
fn not_exists_with_extra_local_predicate() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer); insert into t values (1), (2);
         create table u (k integer, flag integer); insert into u values (1, 0), (2, 1);",
    )
    .unwrap();
    let rows = db
        .query(
            "select k from t where not exists (\
               select * from u where u.k = t.k and u.flag = 1)",
        )
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![1]]);
}

#[test]
fn correlated_exists_with_inequality_falls_back_to_nested_loop() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer); insert into t values (1), (5);
         create table u (k integer); insert into u values (3);",
    )
    .unwrap();
    // Non-equality correlation cannot be hashed; must still be correct.
    let rows = db
        .query("select k from t where exists (select * from u where u.k > t.k)")
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![1]]);
}

#[test]
fn in_subquery_and_not_in_null_semantics() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer); insert into t values (1), (2);
         create table u (k integer); insert into u values (2), (null);",
    )
    .unwrap();
    let rows = db
        .query("select k from t where k in (select k from u)")
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![2]]);
    // NOT IN against a set containing NULL is never satisfied.
    let rows = db
        .query("select k from t where k not in (select k from u)")
        .unwrap();
    assert!(rows.is_empty());
}

#[test]
fn scalar_subquery() {
    let db = Database::new();
    db.run_script("create table t (v integer); insert into t values (1), (2), (3);")
        .unwrap();
    let rows = db
        .query("select v from t where v = (select max(v) from t)")
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![3]]);
}

#[test]
fn case_expression_in_aggregate() {
    let db = Database::new();
    db.run_script(
        "create table t (mode text, pri text);
         insert into t values ('MAIL', '1-URGENT'), ('MAIL', '3-LOW'), ('SHIP', '1-URGENT');",
    )
    .unwrap();
    // The shape of TPC-H Q12.
    let rows = db
        .query(
            "select mode, \
               sum(case when pri = '1-URGENT' then 1 else 0 end) as high, \
               sum(case when pri <> '1-URGENT' then 1 else 0 end) as low \
             from t group by mode order by mode",
        )
        .unwrap();
    assert_eq!(v_int(&sorted_strless(&rows)), vec![vec![1, 1], vec![1, 0]]);
}

fn sorted_strless(rows: &conquer_engine::Rows) -> conquer_engine::Rows {
    let mut out = rows.clone();
    out.rows.iter_mut().for_each(|r| {
        r.remove(0);
    });
    let mut s = out.schema.clone();
    s.columns.remove(0);
    conquer_engine::Rows {
        schema: s,
        rows: out.rows,
    }
}

#[test]
fn dates_compare_and_filter() {
    let db = Database::new();
    db.run_script(
        "create table o (d date);
         insert into o values (date '1995-01-01'), (date '1995-06-15'), (date '1996-01-01');",
    )
    .unwrap();
    let rows = db
        .query("select count(*) from o where d >= date '1995-01-01' and d < date '1996-01-01'")
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(2));
}

#[test]
fn between_and_in_list_and_like() {
    let db = Database::new();
    db.run_script(
        "create table l (disc float, mode text);
         insert into l values (0.05, 'MAIL'), (0.06, 'SHIP'), (0.09, 'RAIL');",
    )
    .unwrap();
    let rows = db
        .query("select count(*) from l where disc between 0.05 and 0.07")
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(2));
    let rows = db
        .query("select count(*) from l where mode in ('MAIL', 'SHIP')")
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(2));
    let rows = db
        .query("select count(*) from l where mode like '%AIL'")
        .unwrap();
    assert_eq!(rows.rows[0][0], Value::Int(2));
}

#[test]
fn distinct_on_multiple_columns() {
    let db = Database::new();
    db.run_script(
        "create table t (a integer, b integer);
         insert into t values (1, 1), (1, 1), (1, 2);",
    )
    .unwrap();
    let rows = db.query("select distinct a, b from t").unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn where_with_null_comparison_filters_row() {
    let db = Database::new();
    db.run_script("create table t (v integer); insert into t values (1), (null);")
        .unwrap();
    // NULL > 0 is unknown, so the NULL row is filtered out.
    let rows = db.query("select v from t where v > 0").unwrap();
    assert_eq!(rows.len(), 1);
    // ... and it does not satisfy the negation either.
    let rows = db.query("select v from t where not v > 0").unwrap();
    assert_eq!(rows.len(), 0);
    // IS NULL catches it.
    let rows = db.query("select v from t where v is null").unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn ambiguous_column_is_an_error() {
    let db = Database::new();
    db.run_script(
        "create table a (k integer); create table b (k integer);
         insert into a values (1); insert into b values (1);",
    )
    .unwrap();
    let err = db.query("select k from a, b").unwrap_err();
    assert!(err.to_string().contains("ambiguous"));
}

#[test]
fn duplicate_binding_is_an_error() {
    let db = Database::new();
    db.run_script("create table a (k integer)").unwrap();
    assert!(db.query("select * from a, a").is_err());
    assert!(db.query("select a1.k from a a1, a a2").is_ok());
}

#[test]
fn select_without_from() {
    let db = Database::new();
    let rows = db.query("select 1 + 2 as three, 'x'").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(3), Value::str("x")]]);
}

#[test]
fn cte_shadowing_and_chaining() {
    let db = Database::new();
    db.run_script("create table t (v integer); insert into t values (1), (2)")
        .unwrap();
    let rows = db
        .query(
            "with t2 as (select v + 10 as v from t),
                  t3 as (select v + 100 as v from t2)
             select v from t3 order by v",
        )
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![111], vec![112]]);
}

#[test]
fn derived_table_in_from() {
    let db = Database::new();
    db.run_script("create table t (v integer); insert into t values (1), (2), (3)")
        .unwrap();
    let rows = db
        .query("select s.total from (select sum(v) as total from t) s")
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![6]]);
}

#[test]
fn qualified_wildcard_in_join() {
    let db = Database::new();
    db.run_script(
        "create table a (x integer); insert into a values (1);
         create table b (y integer); insert into b values (2);",
    )
    .unwrap();
    let rows = db.query("select b.* from a, b").unwrap();
    assert_eq!(rows.schema.len(), 1);
    assert_eq!(v_int(&rows), vec![vec![2]]);
}

#[test]
fn arithmetic_on_projected_expressions() {
    let db = Database::new();
    db.run_script(
        "create table l (price float, disc float);
         insert into l values (100, 0.1), (200, 0.05);",
    )
    .unwrap();
    let rows = db.query("select sum(price * (1 - disc)) from l").unwrap();
    let Value::Float(total) = rows.rows[0][0] else {
        panic!()
    };
    assert!((total - 280.0).abs() < 1e-9);
}

#[test]
fn group_by_column_used_qualified_and_bare() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v integer);
         insert into t values (1, 10), (1, 20), (2, 5);",
    )
    .unwrap();
    // group by t.k, select k: structural match through binding.
    let rows = db
        .query("select k, sum(v) from t group by t.k order by k")
        .unwrap();
    assert_eq!(v_int(&rows), vec![vec![1, 30], vec![2, 5]]);
}

#[test]
fn projection_of_non_grouped_column_errors() {
    let db = Database::new();
    db.run_script("create table t (k integer, v integer); insert into t values (1, 2)")
        .unwrap();
    let err = db
        .query("select v, count(*) from t group by k")
        .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}
