//! Access-path planning with secondary indexes: the planner must pick an
//! index scan / index-backed join exactly when it is sound and cheaper,
//! and the answers must be identical to the index-blind plans.

use conquer_engine::{Database, ExecOptions, Value};

/// Canonical row order for multiset comparison (`Value` has no `Ord`;
/// `total_cmp` is its total order).
fn canon(rows: &mut [Vec<Value>]) {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn opts() -> ExecOptions {
    ExecOptions::default()
}

fn no_index_opts() -> ExecOptions {
    ExecOptions::default().with_indexes(false)
}

fn demo_db() -> Database {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v float, s text);
         insert into t values
           (1, 10.5, 'a'), (2, 20.5, 'b'), (2, 21.5, 'c'), (3, 30.5, 'd'),
           (4, 40.5, 'e'), (5, 50.5, 'f'), (5, 51.5, 'g'), (6, 60.5, 'h'),
           (7, 70.5, 'i'), (8, 80.5, 'j');",
    )
    .unwrap();
    db
}

/// Warm the scan cache so the lazy index build has a batch to attach to —
/// the first planned query does this implicitly in production.
fn warm(db: &Database) {
    db.query("select count(*) from t").unwrap();
}

#[test]
fn point_lookup_plans_an_index_scan() {
    let db = demo_db();
    db.create_index("t", &["k"]).unwrap();
    warm(&db);
    let sql = "select s from t where k = 5";
    let plan = db.explain_with(sql, &opts()).unwrap();
    assert!(
        plan.contains("access=index(k eq)"),
        "expected index access in:\n{plan}"
    );
    let blind = db.explain_with(sql, &no_index_opts()).unwrap();
    assert!(
        !blind.contains("access=index"),
        "index-blind plan:\n{blind}"
    );
    let rows = db.query_with(sql, &opts()).unwrap();
    let expect = db.query_with(sql, &no_index_opts()).unwrap();
    assert_eq!(rows, expect);
    assert_eq!(rows.rows.len(), 2);
}

#[test]
fn range_predicate_plans_an_index_scan() {
    let db = demo_db();
    db.create_index("t", &["k"]).unwrap();
    warm(&db);
    let sql = "select s from t where k > 2 and k <= 5";
    let plan = db.explain_with(sql, &opts()).unwrap();
    assert!(
        plan.contains("access=index(k range)"),
        "expected range index access in:\n{plan}"
    );
    let rows = db.query_with(sql, &opts()).unwrap();
    let expect = db.query_with(sql, &no_index_opts()).unwrap();
    assert_eq!(rows, expect);
    assert_eq!(rows.rows.len(), 4); // k in {3, 4, 5, 5}
}

#[test]
fn key_equality_self_join_probes_the_index() {
    let db = demo_db();
    db.create_index("t", &["k"]).unwrap();
    warm(&db);
    // The shape of ConQuer's rewritings: a self-join on the key columns.
    let sql = "select a.s, b.s from t a, t b where a.k = b.k and a.v < b.v";
    let plan = db.explain_with(sql, &opts()).unwrap();
    assert!(
        plan.contains("access=index(k)"),
        "expected index-backed join in:\n{plan}"
    );
    let mut rows = db.query_with(sql, &opts()).unwrap();
    let mut expect = db.query_with(sql, &no_index_opts()).unwrap();
    canon(&mut rows.rows);
    canon(&mut expect.rows);
    assert_eq!(rows, expect);
    assert_eq!(rows.rows.len(), 2); // (2,b)<(2,c) and (5,f)<(5,g)
}

#[test]
fn insert_extends_the_index_and_results_stay_correct() {
    let db = demo_db();
    db.create_index("t", &["k"]).unwrap();
    warm(&db);
    // Build the index, then append rows — the maintenance path extends
    // the postings rather than rebuilding.
    db.query_with("select s from t where k = 5", &opts())
        .unwrap();
    db.run_script("insert into t values (5, 99.5, 'z'), (11, 1.5, 'w')")
        .unwrap();
    warm(&db);
    let rows = db
        .query_with("select s from t where k = 5", &opts())
        .unwrap();
    let expect = db
        .query_with("select s from t where k = 5", &no_index_opts())
        .unwrap();
    assert_eq!(rows, expect);
    assert_eq!(rows.rows.len(), 3);
    let fresh = db
        .query_with("select s from t where k = 11", &opts())
        .unwrap();
    assert_eq!(fresh.rows, vec![vec![Value::str("w")]]);
}

#[test]
fn null_keys_are_never_matched_by_the_index() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, s text);
         insert into t values (1, 'a'), (2, 'b'), (2, 'c');
         insert into t (s) values ('n1'), ('n2');",
    )
    .unwrap();
    db.create_index("t", &["k"]).unwrap();
    db.query("select count(*) from t").unwrap();
    for sql in [
        "select s from t where k = 2",
        "select s from t where k > 0",
        "select a.s from t a, t b where a.k = b.k",
    ] {
        let mut rows = db.query_with(sql, &opts()).unwrap();
        let mut expect = db.query_with(sql, &no_index_opts()).unwrap();
        canon(&mut rows.rows);
        canon(&mut expect.rows);
        assert_eq!(rows, expect, "divergence on {sql}");
    }
}

#[test]
fn create_index_is_idempotent_ddl_and_bumps_the_epoch() {
    let db = demo_db();
    let e0 = db.catalog_epoch();
    assert!(db.create_index("t", &["k"]).unwrap());
    let e1 = db.catalog_epoch();
    assert!(e1 > e0, "declare is a catalog mutation");
    assert!(!db.create_index("t", &["k"]).unwrap());
    assert_eq!(db.catalog_epoch(), e1, "re-declare bumps nothing");
    assert!(db.create_index("missing", &["k"]).is_err());
    assert!(db.create_index("t", &["nope"]).is_err());
    assert_eq!(
        db.index_status(),
        vec![("t".to_string(), vec!["k".to_string()], false)],
        "declared but not yet built"
    );
    warm(&db);
    db.query_with("select s from t where k = 5", &opts())
        .unwrap();
    assert!(
        db.index_status()[0].2,
        "first planned query triggers the lazy build"
    );
}

#[test]
fn drop_table_removes_the_declaration() {
    let db = demo_db();
    db.create_index("t", &["k"]).unwrap();
    db.drop_table("t").unwrap();
    assert!(db.index_status().is_empty());
}

#[test]
fn unindexed_and_multi_bound_predicates_keep_residual_filters() {
    let db = demo_db();
    db.create_index("t", &["k"]).unwrap();
    warm(&db);
    for sql in [
        "select s from t where k = 5 and v > 51.0",
        "select s from t where k >= 2 and k < 7 and k > 3",
        "select s from t where v > 50.0",
        "select s from t where k + 0 = 5", // non-sargable: no index
    ] {
        let mut rows = db.query_with(sql, &opts()).unwrap();
        let mut expect = db.query_with(sql, &no_index_opts()).unwrap();
        canon(&mut rows.rows);
        canon(&mut expect.rows);
        assert_eq!(rows, expect, "divergence on {sql}");
    }
}
