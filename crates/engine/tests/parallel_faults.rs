//! Fault injection under morsel-parallel execution
//! (`--features fault-injection`): an armed fault point must surface the
//! same structured error at any thread count — no panics, no deadlocks,
//! no worker leaks — and the database must stay usable afterwards.
//!
//! Fault points fire at operator entry on the coordinating thread (the
//! fault schedule is thread-local by design), so a schedule armed by the
//! caller behaves identically whether the operator then fans out or not.

#![cfg(feature = "fault-injection")]

use conquer_engine::{faults, DataType, Database, EngineError, ExecOptions, Table, Value};

/// Fault points exercised by `QUERIES` below, on inputs large enough
/// (≥ 4 × 1024 rows) that the parallel paths actually engage at threads > 1.
const QUERIES: &[(&str, &str)] = &[
    ("filter", "select t.x from t where t.x > 10"),
    ("project", "select t.x + 1 from t"),
    ("join.build", "select t.x from t join s on t.x = s.y"),
    ("join.probe", "select t.x from t join s on t.x = s.y"),
    (
        "aggregate.group",
        "select t.g, count(*) from t group by t.g",
    ),
    ("distinct", "select distinct t.g from t"),
    ("sort", "select t.g, t.x from t order by t.g"),
];

fn fixture() -> Database {
    let db = Database::new();
    let mut t = Table::new(
        "t",
        vec![("x", DataType::Integer), ("g", DataType::Integer)],
    );
    for i in 0..6_000i64 {
        t.push(vec![Value::Int(i), Value::Int(i % 37)]).unwrap();
    }
    db.register(t).unwrap();
    let mut s = Table::new("s", vec![("y", DataType::Integer)]);
    for i in 0..5_000i64 {
        s.push(vec![Value::Int(i * 3 % 6_000)]).unwrap();
    }
    db.register(s).unwrap();
    db
}

fn is_injected(err: &EngineError, point: &str) -> bool {
    matches!(err, EngineError::Execution(msg) if msg.contains("injected fault")
        && msg.contains(point))
}

#[test]
fn armed_faults_surface_identically_at_any_thread_count() {
    let db = fixture();
    for (point, sql) in QUERIES {
        // Baseline: the query reaches the point and the serial and
        // parallel runs agree when disarmed.
        faults::disarm_all();
        let serial = db
            .query_with(sql, &ExecOptions::default().with_threads(1))
            .unwrap_or_else(|e| panic!("{point}: serial baseline failed: {e}"));
        assert!(faults::hits(point) > 0, "`{sql}` never reaches `{point}`");

        for threads in [1, 2, 8] {
            let options = ExecOptions::default().with_threads(threads);
            faults::disarm_all();
            let ok = db
                .query_with(sql, &options)
                .unwrap_or_else(|e| panic!("{point}: threads={threads} baseline failed: {e}"));
            assert_eq!(ok.rows, serial.rows, "{point}: threads={threads} diverged");

            faults::disarm_all();
            faults::arm(point, 0);
            let err = db
                .query_with(sql, &options)
                .expect_err(&format!("armed `{point}` at threads={threads} must fail"));
            assert!(
                is_injected(&err, point),
                "`{point}` threads={threads}: expected injected fault, got {err:?}"
            );
        }

        // The database answers normally after every storm.
        faults::disarm_all();
        assert!(db
            .query_with(sql, &ExecOptions::default().with_threads(8))
            .is_ok());
    }
}

#[test]
fn seeded_storm_under_parallelism_never_panics() {
    let db = fixture();
    let options = ExecOptions::default().with_threads(8);
    for round in 0..8u64 {
        faults::disarm_all();
        faults::arm_seeded(0xFA57 + round, 3);
        for (_, sql) in QUERIES {
            // Err or Ok are both fine; panics and hangs are not.
            let _ = db.query_with(sql, &options);
        }
    }
    faults::disarm_all();
    assert_eq!(
        db.query_with("select count(*) from t", &options)
            .unwrap()
            .rows
            .len(),
        1
    );
}
