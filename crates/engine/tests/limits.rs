//! Tier-2 tests for the execution governor: resource limits trip promptly
//! with structured errors, cancellation works across threads, and the
//! database stays usable after every trip.

use std::time::{Duration, Instant};

use conquer_engine::{CancellationToken, Database, EngineError, ExecOptions, ResourceLimits};

/// A database whose cross-join `select * from a, b` yields `n * n`
/// intermediate rows — enough work to observe limits tripping mid-query.
fn cross_join_db(n: usize) -> Database {
    let db = Database::new();
    let mut script = String::from("create table a (x integer);\ncreate table b (y integer);\n");
    let vals: Vec<String> = (0..n).map(|i| format!("({i})")).collect();
    script.push_str(&format!("insert into a values {};\n", vals.join(", ")));
    script.push_str(&format!("insert into b values {};\n", vals.join(", ")));
    db.run_script(&script).expect("build cross-join fixture");
    db
}

/// After a trip the same Database must answer queries normally.
fn assert_usable(db: &Database) {
    let rows = db
        .query("select count(*) from a")
        .expect("database still usable after trip");
    assert_eq!(rows.len(), 1);
}

#[test]
fn timeout_trips_mid_join_with_operator_context() {
    let db = cross_join_db(2_000); // 4M intermediate rows
    let options = ExecOptions::default()
        .with_limits(ResourceLimits::unlimited().with_timeout(Duration::from_millis(10)));
    let t0 = Instant::now();
    let err = db
        .query_with("select count(*) from a, b where a.x + b.y > 0", &options)
        .expect_err("4M-row join must not finish in 10ms");
    let elapsed = t0.elapsed();
    match &err {
        EngineError::Timeout(trip) => {
            assert!(!trip.operator.is_empty(), "trip names an operator");
            assert!(trip.elapsed_ms >= 10, "trip records elapsed time");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    // The governor checks cooperatively every few hundred rows, so the
    // trip should land well within the ~50ms budget past the deadline.
    assert!(
        elapsed < Duration::from_millis(500),
        "timeout honored promptly, took {elapsed:?}"
    );
    assert_usable(&db);
}

#[test]
fn row_limit_trips_on_cross_join() {
    let db = cross_join_db(500); // 250k intermediate rows
    let options =
        ExecOptions::default().with_limits(ResourceLimits::unlimited().with_max_rows(10_000));
    let err = db
        .query_with("select count(*) from a, b", &options)
        .expect_err("row budget far below the cross-join cardinality");
    let trip = match &err {
        EngineError::RowLimitExceeded(trip) => trip,
        other => panic!("expected RowLimitExceeded, got {other:?}"),
    };
    assert!(trip.rows >= 10_000, "trip snapshot carries the row count");
    assert_usable(&db);
}

#[test]
fn memory_limit_trips_on_cross_join() {
    let db = cross_join_db(500);
    let options = ExecOptions::default()
        .with_limits(ResourceLimits::unlimited().with_max_memory_bytes(64 * 1024));
    let err = db
        .query_with("select a.x, b.y from a, b", &options)
        .expect_err("cross-join materialization exceeds a 64 KiB budget");
    let trip = match &err {
        EngineError::MemoryExceeded(trip) => trip,
        other => panic!("expected MemoryExceeded, got {other:?}"),
    };
    assert!(trip.mem_bytes >= 64 * 1024);
    assert_usable(&db);
}

#[test]
fn memory_limit_trips_on_aggregation_build() {
    let db = cross_join_db(500);
    // High-cardinality GROUP BY: the group table itself blows the budget.
    let options = ExecOptions::default()
        .with_limits(ResourceLimits::unlimited().with_max_memory_bytes(32 * 1024));
    let err = db
        .query_with(
            "select a.x, b.y, count(*) from a, b group by a.x, b.y",
            &options,
        )
        .expect_err("group table exceeds a 32 KiB budget");
    assert!(
        matches!(
            err,
            EngineError::MemoryExceeded(_) | EngineError::RowLimitExceeded(_)
        ),
        "expected a resource trip, got {err:?}"
    );
    assert_usable(&db);
}

#[test]
fn cancellation_from_another_thread_stops_promptly() {
    let db = cross_join_db(2_000);
    let token = CancellationToken::new();
    let options = ExecOptions::default().with_cancellation(token.clone());

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        })
    };

    let t0 = Instant::now();
    let err = db
        .query_with("select count(*) from a, b where a.x + b.y > 0", &options)
        .expect_err("cancelled mid-join");
    let elapsed = t0.elapsed();
    canceller.join().expect("canceller thread");

    assert!(
        matches!(err, EngineError::Cancelled(_)),
        "expected Cancelled, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_millis(500),
        "cancellation honored promptly, took {elapsed:?}"
    );
    assert_usable(&db);

    // A fresh token runs the workload-free query fine; the cancelled token
    // stays cancelled for reuse detection.
    assert!(token.is_cancelled());
    let fresh = ExecOptions::default().with_cancellation(CancellationToken::new());
    db.query_with("select count(*) from a", &fresh)
        .expect("fresh token executes");
}

#[test]
fn pre_cancelled_token_fails_before_any_work() {
    let db = cross_join_db(50);
    let token = CancellationToken::new();
    token.cancel();
    let options = ExecOptions::default().with_cancellation(token);
    let err = db
        .query_with("select count(*) from a, b", &options)
        .expect_err("pre-cancelled token");
    assert!(matches!(err, EngineError::Cancelled(_)));
    assert_usable(&db);
}

#[test]
fn limits_cover_cte_materialization() {
    let db = cross_join_db(500);
    let options =
        ExecOptions::default().with_limits(ResourceLimits::unlimited().with_max_rows(10_000));
    // The cross join materializes inside the CTE at plan time; the governor
    // must already be attached there.
    let err = db
        .query_with(
            "with big as (select a.x as x, b.y as y from a, b) select count(*) from big",
            &options,
        )
        .expect_err("CTE materialization must respect the row budget");
    assert!(
        matches!(err, EngineError::RowLimitExceeded(_)),
        "expected RowLimitExceeded, got {err:?}"
    );
    assert_usable(&db);
}

#[test]
fn unlimited_options_do_not_interfere() {
    let db = cross_join_db(40);
    let rows = db
        .query_with(
            "select count(*) from a, b",
            &ExecOptions::default().with_limits(ResourceLimits::unlimited()),
        )
        .expect("unlimited run succeeds");
    assert_eq!(rows.rows[0][0].to_string(), "1600");
}
