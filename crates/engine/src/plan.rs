//! The planner/binder: turns a parsed [`Query`] into an executable [`Plan`].
//!
//! CTEs are materialized at plan time (the paper materializes its
//! `Candidates`/`Filter` subexpressions explicitly, Section 6.1); an
//! [`ExecOptions`] flag re-inlines them instead, for the ablation study.
//! Equality-correlated `EXISTS`/`NOT EXISTS` predicates are decorrelated
//! into hash semi/anti joins; a second flag disables that and falls back to
//! per-row nested-loop evaluation.

use std::collections::HashMap;
use std::sync::Arc;

use conquer_sql::ast::{
    self, is_aggregate_function, BinaryOp, Cte, Expr, Query, Select, SelectItem, SetExpr, TableRef,
    UnaryOp,
};
use conquer_sql::Literal;

use crate::col::ColBatch;
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::exec;
use crate::expr::{BoundExpr, ScalarFunc, SubqueryKind};
use crate::faults;
use crate::governor::{CancellationToken, Governor, ResourceLimits};
use crate::schema::{Column, DataType, Schema};
use crate::value::Value;

/// Planner/executor options; the defaults match the paper's configuration.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Materialize `WITH` subexpressions once per query (Section 6.1 of the
    /// paper found this essential for the rewritings). When `false`, each
    /// CTE reference re-plans and re-executes the CTE body.
    pub materialize_ctes: bool,
    /// Rewrite equality-correlated `EXISTS`/`NOT EXISTS` into hash
    /// semi/anti joins. When `false`, they run as per-row nested loops.
    pub decorrelate_exists: bool,
    /// Push filter conjuncts below joins after planning (the host-optimizer
    /// behaviour Section 5 of the paper relies on for the `conscand` guard).
    pub pushdown_filters: bool,
    /// Use table statistics for cost-based planning: greedy join ordering,
    /// hash build-side selection, selectivity-gated right-side filter
    /// pushes, and CTE projection pruning. When `false`, planning is purely
    /// syntactic (the pre-statistics behaviour, kept for ablation and
    /// differential testing).
    pub use_stats: bool,
    /// Resource budget for the query (unlimited by default). Covers plan
    /// time too: CTE materialization runs under the same governor.
    pub limits: ResourceLimits,
    /// Cooperative cancellation: keep a clone, call `cancel()` from any
    /// thread, and the running query unwinds with
    /// [`EngineError::Cancelled`](crate::EngineError).
    pub cancellation: Option<CancellationToken>,
    /// Worker threads for morsel-parallel execution. `1` is the serial
    /// path (the oracle the differential tests compare against); the
    /// default is [`std::thread::available_parallelism`], overridable via
    /// the `CONQUER_THREADS` environment variable (which lets CI run the
    /// whole test suite at a fixed thread count).
    pub threads: usize,
    /// Per-query trace context. When set, the engine installs it for the
    /// duration of each public entry point, so every span the query closes
    /// — including spans closed by morsel worker threads, which adopt the
    /// installing thread's collectors — accumulates under one
    /// [`QueryId`](conquer_obs::QueryId). `None` (the default) traces
    /// nothing beyond the always-on histograms.
    pub trace: Option<conquer_obs::TraceContext>,
    /// Use the vectorized columnar kernels (selection bitmaps, fused
    /// column projection, typed aggregate loops) where an operator
    /// qualifies. When `false`, every operator runs the row-at-a-time
    /// reference path — the oracle the batch-vs-row differential suite
    /// compares against. Results are bit-identical either way; this flag
    /// only switches the execution strategy.
    pub columnar: bool,
    /// Consider secondary indexes when choosing access paths (index point
    /// and range scans, index-backed hash-join build sides). Requires
    /// `use_stats`; when `false`, plans are identical to the pre-index
    /// planner — the oracle the index differential suite compares
    /// against. Answers are the same either way.
    pub use_indexes: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            materialize_ctes: true,
            decorrelate_exists: true,
            pushdown_filters: true,
            use_stats: true,
            limits: ResourceLimits::default(),
            cancellation: None,
            threads: default_threads(),
            trace: None,
            columnar: true,
            use_indexes: true,
        }
    }
}

/// Default worker-thread count: `CONQUER_THREADS` when set, otherwise the
/// machine's available parallelism (1 when that cannot be determined).
fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("CONQUER_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl ExecOptions {
    /// Builder-style resource budget.
    pub fn with_limits(mut self, limits: ResourceLimits) -> ExecOptions {
        self.limits = limits;
        self
    }

    /// Builder-style cancellation token.
    pub fn with_cancellation(mut self, token: CancellationToken) -> ExecOptions {
        self.cancellation = Some(token);
        self
    }

    /// Builder-style worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> ExecOptions {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style trace context.
    pub fn with_trace(mut self, trace: conquer_obs::TraceContext) -> ExecOptions {
        self.trace = Some(trace);
        self
    }

    /// Builder-style columnar-kernel switch.
    pub fn with_columnar(mut self, columnar: bool) -> ExecOptions {
        self.columnar = columnar;
        self
    }

    /// Builder-style secondary-index switch.
    pub fn with_indexes(mut self, use_indexes: bool) -> ExecOptions {
        self.use_indexes = use_indexes;
        self
    }
}

/// Join flavours of the physical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    LeftOuter,
    /// Emit left rows with at least one match (output schema = left).
    Semi,
    /// Emit left rows with no match (output schema = left).
    Anti,
}

/// One aggregate computation.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    /// `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    pub distinct: bool,
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn by_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// An executable operator tree.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan of a pre-materialized column batch (base table or materialized
    /// CTE). The schema carries the binding qualifier; the batch is shared
    /// (column chunks are `Arc`s, so a scan never copies table data).
    Scan {
        cols: Arc<ColBatch>,
        schema: Schema,
    },
    /// Index point/range scan: probe a secondary index for a selection
    /// vector and gather the matching rows from the same shared batch a
    /// full [`Plan::Scan`] would read. The plan holds the built
    /// [`Index`] directly (snapshot semantics, like `Scan` holds its
    /// batch): execution never consults the catalog, so concurrent
    /// `INSERT`/`DROP` cannot skew a running query. The planner only
    /// attaches an index whose stamp `Arc::ptr_eq`s `cols`.
    IndexScan {
        cols: Arc<ColBatch>,
        schema: Schema,
        index: Arc<crate::index::Index>,
        access: crate::index::IndexAccess,
    },
    /// A single empty row — the input of `SELECT` without `FROM`.
    Unit,
    Filter {
        input: Box<Plan>,
        predicate: BoundExpr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<BoundExpr>,
        schema: Schema,
    },
    /// Rename/requalify the input schema without touching rows.
    Rename {
        input: Box<Plan>,
        schema: Schema,
    },
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinType,
        left_keys: Vec<BoundExpr>,
        right_keys: Vec<BoundExpr>,
        /// Extra join condition over the concatenated row, part of the ON
        /// clause (affects match decisions for outer joins).
        residual: Option<BoundExpr>,
        /// When set, the build side (always `right`) is served by this
        /// prebuilt index's postings instead of a per-query hash build —
        /// the "IndexLookupJoin" access path. The optimizer only attaches
        /// an index whose stamp `Arc::ptr_eq`s the right child's scan
        /// batch and whose key columns match `right_keys` exactly; probing
        /// and row emission are byte-identical to the built table.
        build_index: Option<Arc<crate::index::Index>>,
        schema: Schema,
    },
    /// Fallback join for non-equi or missing ON conditions.
    NestedLoopJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinType,
        on: Option<BoundExpr>,
        schema: Schema,
    },
    Aggregate {
        input: Box<Plan>,
        group_exprs: Vec<BoundExpr>,
        aggs: Vec<AggSpec>,
        schema: Schema,
    },
    Distinct {
        input: Box<Plan>,
    },
    UnionAll {
        left: Box<Plan>,
        right: Box<Plan>,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<(BoundExpr, bool)>,
    },
    Limit {
        input: Box<Plan>,
        n: u64,
    },
}

impl Plan {
    /// Output schema of this operator.
    pub fn schema(&self) -> &Schema {
        match self {
            Plan::Scan { schema, .. } => schema,
            Plan::Unit => {
                static EMPTY: Schema = Schema {
                    columns: Vec::new(),
                };
                &EMPTY
            }
            Plan::Filter { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.schema(),
            Plan::IndexScan { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::Rename { schema, .. }
            | Plan::HashJoin { schema, .. }
            | Plan::NestedLoopJoin { schema, .. }
            | Plan::Aggregate { schema, .. } => schema,
            Plan::UnionAll { left, .. } => left.schema(),
        }
    }

    /// Total rows embedded in this plan's scan leaves — the base-table
    /// (and materialized-CTE) input the plan reads, i.e. its "rows in"
    /// for trace summaries.
    pub fn base_rows(&self) -> u64 {
        match self {
            Plan::Scan { cols, .. } | Plan::IndexScan { cols, .. } => cols.len() as u64,
            _ => self.children().iter().map(|c| c.base_rows()).sum(),
        }
    }

    /// The operator's inputs, in execution order (left before right).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit => Vec::new(),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Rename { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => vec![input],
            Plan::HashJoin { left, right, .. }
            | Plan::NestedLoopJoin { left, right, .. }
            | Plan::UnionAll { left, right } => vec![left, right],
        }
    }

    /// Maximum outer-scope depth referenced by any expression in the plan,
    /// from the perspective of rows flowing through this plan (0 = no
    /// correlation).
    pub fn max_outer_depth(&self) -> usize {
        // Expressions inside a plan evaluate against that plan's own rows at
        // depth 0; anything deeper refers to enclosing query scopes.
        match self {
            Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit => 0,
            Plan::Filter { input, predicate } => input.max_outer_depth().max(predicate.max_depth()),
            Plan::Project { input, exprs, .. } => input
                .max_outer_depth()
                .max(exprs.iter().map(BoundExpr::max_depth).max().unwrap_or(0)),
            Plan::Rename { input, .. } | Plan::Distinct { input } | Plan::Limit { input, .. } => {
                input.max_outer_depth()
            }
            Plan::Sort { input, keys } => input
                .max_outer_depth()
                .max(keys.iter().map(|(e, _)| e.max_depth()).max().unwrap_or(0)),
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                ..
            } => left
                .max_outer_depth()
                .max(right.max_outer_depth())
                .max(
                    left_keys
                        .iter()
                        .map(BoundExpr::max_depth)
                        .max()
                        .unwrap_or(0),
                )
                .max(
                    right_keys
                        .iter()
                        .map(BoundExpr::max_depth)
                        .max()
                        .unwrap_or(0),
                )
                .max(residual.as_ref().map(|e| e.max_depth()).unwrap_or(0)),
            Plan::NestedLoopJoin {
                left, right, on, ..
            } => left
                .max_outer_depth()
                .max(right.max_outer_depth())
                .max(on.as_ref().map(|e| e.max_depth()).unwrap_or(0)),
            Plan::Aggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => input
                .max_outer_depth()
                .max(
                    group_exprs
                        .iter()
                        .map(BoundExpr::max_depth)
                        .max()
                        .unwrap_or(0),
                )
                .max(
                    aggs.iter()
                        .filter_map(|a| a.arg.as_ref())
                        .map(BoundExpr::max_depth)
                        .max()
                        .unwrap_or(0),
                ),
            Plan::UnionAll { left, right } => left.max_outer_depth().max(right.max_outer_depth()),
        }
    }

    /// Visit every expression embedded in this plan tree (immutably).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&BoundExpr)) {
        match self {
            Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit => {}
            Plan::Filter { input, predicate } => {
                f(predicate);
                input.visit_exprs(f);
            }
            Plan::Project { input, exprs, .. } => {
                exprs.iter().for_each(&mut *f);
                input.visit_exprs(f);
            }
            Plan::Rename { input, .. } | Plan::Distinct { input } | Plan::Limit { input, .. } => {
                input.visit_exprs(f)
            }
            Plan::Sort { input, keys } => {
                keys.iter().for_each(|(e, _)| f(e));
                input.visit_exprs(f);
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                left_keys.iter().chain(right_keys).for_each(&mut *f);
                if let Some(r) = residual {
                    f(r);
                }
                left.visit_exprs(f);
                right.visit_exprs(f);
            }
            Plan::NestedLoopJoin {
                left, right, on, ..
            } => {
                if let Some(o) = on {
                    f(o);
                }
                left.visit_exprs(f);
                right.visit_exprs(f);
            }
            Plan::Aggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                group_exprs.iter().for_each(&mut *f);
                aggs.iter().filter_map(|a| a.arg.as_ref()).for_each(&mut *f);
                input.visit_exprs(f);
            }
            Plan::UnionAll { left, right } => {
                left.visit_exprs(f);
                right.visit_exprs(f);
            }
        }
    }

    /// Visit every expression embedded in this plan tree (mutably).
    pub fn visit_exprs_mut(&mut self, f: &mut impl FnMut(&mut BoundExpr)) {
        match self {
            Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit => {}
            Plan::Filter { input, predicate } => {
                f(predicate);
                input.visit_exprs_mut(f);
            }
            Plan::Project { input, exprs, .. } => {
                exprs.iter_mut().for_each(&mut *f);
                input.visit_exprs_mut(f);
            }
            Plan::Rename { input, .. } | Plan::Distinct { input } | Plan::Limit { input, .. } => {
                input.visit_exprs_mut(f)
            }
            Plan::Sort { input, keys } => {
                keys.iter_mut().for_each(|(e, _)| f(e));
                input.visit_exprs_mut(f);
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                left_keys
                    .iter_mut()
                    .chain(right_keys.iter_mut())
                    .for_each(&mut *f);
                if let Some(r) = residual {
                    f(r);
                }
                left.visit_exprs_mut(f);
                right.visit_exprs_mut(f);
            }
            Plan::NestedLoopJoin {
                left, right, on, ..
            } => {
                if let Some(o) = on {
                    f(o);
                }
                left.visit_exprs_mut(f);
                right.visit_exprs_mut(f);
            }
            Plan::Aggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                group_exprs.iter_mut().for_each(&mut *f);
                aggs.iter_mut()
                    .filter_map(|a| a.arg.as_mut())
                    .for_each(&mut *f);
                input.visit_exprs_mut(f);
            }
            Plan::UnionAll { left, right } => {
                left.visit_exprs_mut(f);
                right.visit_exprs_mut(f);
            }
        }
    }

    /// Shift every outer-scope reference in the plan by `delta`.
    pub fn shift_outer_depths(&mut self, delta: usize) {
        match self {
            Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit => {}
            Plan::Filter { input, predicate } => {
                input.shift_outer_depths(delta);
                shift_if_outer(predicate, delta);
            }
            Plan::Project { input, exprs, .. } => {
                input.shift_outer_depths(delta);
                for e in exprs {
                    shift_if_outer(e, delta);
                }
            }
            Plan::Rename { input, .. } | Plan::Distinct { input } | Plan::Limit { input, .. } => {
                input.shift_outer_depths(delta)
            }
            Plan::Sort { input, keys } => {
                input.shift_outer_depths(delta);
                for (e, _) in keys {
                    shift_if_outer(e, delta);
                }
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                left.shift_outer_depths(delta);
                right.shift_outer_depths(delta);
                for e in left_keys.iter_mut().chain(right_keys.iter_mut()) {
                    shift_if_outer(e, delta);
                }
                if let Some(e) = residual {
                    shift_if_outer(e, delta);
                }
            }
            Plan::NestedLoopJoin {
                left, right, on, ..
            } => {
                left.shift_outer_depths(delta);
                right.shift_outer_depths(delta);
                if let Some(e) = on {
                    shift_if_outer(e, delta);
                }
            }
            Plan::Aggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                input.shift_outer_depths(delta);
                for e in group_exprs {
                    shift_if_outer(e, delta);
                }
                for a in aggs {
                    if let Some(e) = &mut a.arg {
                        shift_if_outer(e, delta);
                    }
                }
            }
            Plan::UnionAll { left, right } => {
                left.shift_outer_depths(delta);
                right.shift_outer_depths(delta);
            }
        }
    }
}

/// Shift only references that escape the current plan scope (depth >= 1).
fn shift_if_outer(e: &mut BoundExpr, delta: usize) {
    shift_above(e, 1, delta);
}

fn shift_above(e: &mut BoundExpr, min_depth: usize, delta: usize) {
    use BoundExpr::*;
    match e {
        Column { depth, .. } => {
            if *depth >= min_depth {
                *depth += delta;
            }
        }
        Literal(_) | AggRef { .. } => {}
        Binary { left, right, .. } => {
            shift_above(left, min_depth, delta);
            shift_above(right, min_depth, delta);
        }
        Not(x) | Neg(x) => shift_above(x, min_depth, delta),
        IsNull { expr, .. } => shift_above(expr, min_depth, delta),
        InList { expr, list, .. } => {
            shift_above(expr, min_depth, delta);
            for x in list {
                shift_above(x, min_depth, delta);
            }
        }
        Like { expr, pattern, .. } => {
            shift_above(expr, min_depth, delta);
            shift_above(pattern, min_depth, delta);
        }
        Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                shift_above(c, min_depth, delta);
                shift_above(v, min_depth, delta);
            }
            if let Some(x) = else_expr {
                shift_above(x, min_depth, delta);
            }
        }
        Func { args, .. } => {
            for x in args {
                shift_above(x, min_depth, delta);
            }
        }
        Subquery { plan, kind } => {
            // Inside the subquery plan, our depth-1 is its depth-2, etc.
            shift_plan_above(plan, min_depth + 1, delta);
            if let SubqueryKind::In { expr, .. } = kind {
                shift_above(expr, min_depth, delta);
            }
        }
    }
}

fn shift_plan_above(plan: &mut Plan, min_depth: usize, delta: usize) {
    match plan {
        Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit => {}
        Plan::Filter { input, predicate } => {
            shift_plan_above(input, min_depth, delta);
            shift_above(predicate, min_depth, delta);
        }
        Plan::Project { input, exprs, .. } => {
            shift_plan_above(input, min_depth, delta);
            for e in exprs {
                shift_above(e, min_depth, delta);
            }
        }
        Plan::Rename { input, .. } | Plan::Distinct { input } | Plan::Limit { input, .. } => {
            shift_plan_above(input, min_depth, delta)
        }
        Plan::Sort { input, keys } => {
            shift_plan_above(input, min_depth, delta);
            for (e, _) in keys {
                shift_above(e, min_depth, delta);
            }
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            ..
        } => {
            shift_plan_above(left, min_depth, delta);
            shift_plan_above(right, min_depth, delta);
            for e in left_keys.iter_mut().chain(right_keys.iter_mut()) {
                shift_above(e, min_depth, delta);
            }
            if let Some(e) = residual {
                shift_above(e, min_depth, delta);
            }
        }
        Plan::NestedLoopJoin {
            left, right, on, ..
        } => {
            shift_plan_above(left, min_depth, delta);
            shift_plan_above(right, min_depth, delta);
            if let Some(e) = on {
                shift_above(e, min_depth, delta);
            }
        }
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            ..
        } => {
            shift_plan_above(input, min_depth, delta);
            for e in group_exprs {
                shift_above(e, min_depth, delta);
            }
            for a in aggs {
                if let Some(e) = &mut a.arg {
                    shift_above(e, min_depth, delta);
                }
            }
        }
        Plan::UnionAll { left, right } => {
            shift_plan_above(left, min_depth, delta);
            shift_plan_above(right, min_depth, delta);
        }
    }
}

/// CTE bindings visible while planning a query.
#[derive(Debug, Clone, Default)]
struct CteEnv {
    /// Materialized CTE results: the output schema (unqualified) plus the
    /// shared column batch each reference scans.
    materialized: HashMap<String, (Schema, Arc<ColBatch>)>,
    /// Inline CTE definitions (when materialization is disabled).
    inline: HashMap<String, Arc<Query>>,
}

/// Binding scope chain used during name resolution.
#[derive(Debug, Clone, Copy)]
struct BindScope<'a> {
    schema: &'a Schema,
    parent: Option<&'a BindScope<'a>>,
}

impl<'a> BindScope<'a> {
    fn root(schema: &'a Schema) -> BindScope<'a> {
        BindScope {
            schema,
            parent: None,
        }
    }

    /// Resolve a column to (depth, index).
    fn resolve(&self, col: &ast::ColumnRef) -> Result<(usize, usize)> {
        let mut scope = Some(self);
        let mut depth = 0;
        let mut last_err = EngineError::UnknownColumn(col.name.clone());
        while let Some(s) = scope {
            match s.schema.resolve(col) {
                Ok(i) => return Ok((depth, i)),
                Err(e @ EngineError::AmbiguousColumn(_)) => return Err(e),
                Err(e) => last_err = e,
            }
            scope = s.parent;
            depth += 1;
        }
        Err(last_err)
    }
}

/// The planner: holds the database catalog and options.
pub struct Planner<'a> {
    db: &'a Database,
    options: &'a ExecOptions,
    /// Resource governor for the enclosing query, if any. CTE
    /// materialization executes at plan time, so planning is governed by
    /// the same budget as execution.
    gov: Option<&'a Governor>,
}

impl<'a> Planner<'a> {
    pub fn new(db: &'a Database, options: &'a ExecOptions) -> Planner<'a> {
        Planner {
            db,
            options,
            gov: None,
        }
    }

    /// A planner whose plan-time work (CTE materialization) runs under
    /// `gov`.
    pub fn with_governor(
        db: &'a Database,
        options: &'a ExecOptions,
        gov: Option<&'a Governor>,
    ) -> Planner<'a> {
        Planner { db, options, gov }
    }

    /// The cost estimator the options call for: index-aware when
    /// secondary indexes are enabled, plain statistics otherwise.
    fn estimator(&self) -> crate::cost::Estimator<'a> {
        if self.options.use_indexes {
            crate::cost::Estimator::from_db_with_indexes(self.db)
        } else {
            crate::cost::Estimator::from_db(self.db)
        }
    }

    /// Plan (and, for CTEs, partially execute) a full query.
    pub fn plan_query(&self, query: &Query) -> Result<Plan> {
        let env = CteEnv::default();
        self.plan_query_in(query, &env, None)
    }

    fn plan_query_in(
        &self,
        query: &Query,
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        let mut env = env.clone();
        for (i, cte) in query.ctes.iter().enumerate() {
            // Projection pruning: a materialized CTE only needs to carry
            // the columns the rest of the query (later CTEs, body, ORDER
            // BY) can reference. Matching is by column name, which is
            // conservative — any name mentioned anywhere downstream keeps
            // the column — and a wildcard anywhere keeps everything.
            let prune = if self.options.use_stats && self.options.materialize_ctes {
                let mut scan = ColRefScan::default();
                for later in &query.ctes[i + 1..] {
                    scan.query(&later.query);
                }
                scan.set_expr(&query.body);
                for item in &query.order_by {
                    scan.expr(&item.expr);
                }
                (!scan.wildcard).then_some(scan.names)
            } else {
                None
            };
            self.register_cte(cte, &mut env, prune.as_ref())?;
        }
        let mut plan = self.plan_set_expr(&query.body, &env, outer)?;
        if !query.order_by.is_empty() {
            let schema = plan.schema().clone();
            let mut keys = Vec::new();
            for item in &query.order_by {
                let bound = self.bind_order_key(&item.expr, &schema, outer)?;
                keys.push((bound, item.desc));
            }
            plan = Plan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = query.limit {
            plan = Plan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    fn register_cte(
        &self,
        cte: &Cte,
        env: &mut CteEnv,
        keep: Option<&std::collections::HashSet<String>>,
    ) -> Result<()> {
        if self.options.materialize_ctes {
            faults::trip("cte.materialize")?;
            // CTEs cannot be correlated: plan and run with no outer scope.
            let mut plan = self.plan_query_in(&cte.query, env, None)?;
            if self.options.pushdown_filters {
                if self.options.use_stats {
                    let est = self.estimator();
                    plan = crate::opt::optimize_with(plan, Some(&est));
                } else {
                    plan = crate::opt::optimize(plan);
                }
            }
            if let Some(keep) = keep {
                plan = prune_projection(plan, keep);
            }
            // Execute to a batch: a columnar output (scan pass-throughs,
            // kernel-filtered scans) is adopted as-is; row-shaped outputs
            // are pivoted into a fresh batch once, here, so every reference
            // scans columns.
            let batch = exec::execute_columnar_threads(
                &plan,
                None,
                self.gov,
                self.options.threads,
                self.options.columnar,
            )?;
            let (schema, cols) = batch.into_schema_cols();
            if let Some(gov) = self.gov {
                gov.reserve_mem(cols.byte_size() as u64, "cte.materialize")?;
            }
            env.materialized.insert(cte.name.clone(), (schema, cols));
        } else {
            env.inline
                .insert(cte.name.clone(), Arc::new(cte.query.clone()));
        }
        Ok(())
    }

    /// ORDER BY keys resolve against the output schema; an integer literal
    /// is a 1-based output column position (SQL positional ordering).
    fn bind_order_key(
        &self,
        expr: &Expr,
        output: &Schema,
        outer: Option<&BindScope<'_>>,
    ) -> Result<BoundExpr> {
        if let Expr::Literal(Literal::Integer(k)) = expr {
            let idx = usize::try_from(*k - 1)
                .ok()
                .filter(|i| *i < output.len())
                .ok_or_else(|| {
                    EngineError::Execution(format!("ORDER BY position {k} out of range"))
                })?;
            return Ok(BoundExpr::column(idx));
        }
        let scope = BindScope {
            schema: output,
            parent: outer,
        };
        match self.bind_expr(expr, &scope, &CteEnv::default()) {
            Ok(bound) => Ok(bound),
            // `ORDER BY t.col` over a projection that exposes the column as
            // bare `col`: retry with the qualifier stripped.
            Err(EngineError::UnknownColumn(_)) => {
                if let Expr::Column(c) = expr {
                    if c.qualifier.is_some() {
                        let bare = Expr::Column(ast::ColumnRef::bare(c.name.clone()));
                        return self.bind_expr(&bare, &scope, &CteEnv::default());
                    }
                }
                Err(EngineError::UnknownColumn(format!(
                    "ORDER BY expression `{expr}`"
                )))
            }
            Err(e) => Err(e),
        }
    }

    fn plan_set_expr(
        &self,
        body: &SetExpr,
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        match body {
            SetExpr::Select(select) => self.plan_select(select, env, outer),
            SetExpr::UnionAll(l, r) => {
                let left = self.plan_set_expr(l, env, outer)?;
                let right = self.plan_set_expr(r, env, outer)?;
                if left.schema().len() != right.schema().len() {
                    return Err(EngineError::Execution(format!(
                        "UNION ALL arity mismatch: {} vs {} columns",
                        left.schema().len(),
                        right.schema().len()
                    )));
                }
                Ok(Plan::UnionAll {
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
        }
    }

    fn plan_select(
        &self,
        select: &Select,
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        // 1 + 2. FROM and WHERE are planned together: equality conjuncts
        // between two FROM factors become hash-join keys and single-factor
        // conjuncts are pushed below the joins, so comma-style joins never
        // materialize cross products.
        let plan = self.plan_from_where(select, env, outer)?;

        // 3. Grouping / aggregation, projection, DISTINCT.
        let has_aggregates = !select.group_by.is_empty()
            || select.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            || select.having.as_ref().is_some_and(Expr::contains_aggregate);

        let mut plan = if has_aggregates {
            self.plan_aggregate(plan, select, env, outer)?
        } else {
            if select.having.is_some() {
                return Err(EngineError::Unsupported(
                    "HAVING without GROUP BY or aggregates".into(),
                ));
            }
            self.plan_projection(plan, &select.projection, env, outer)?
        };

        if select.distinct {
            plan = Plan::Distinct {
                input: Box::new(plan),
            };
        }
        Ok(plan)
    }

    fn plan_table_ref(
        &self,
        table_ref: &TableRef,
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
        bindings: &mut Vec<String>,
    ) -> Result<Plan> {
        match table_ref {
            TableRef::Table { name, alias } => {
                let binding = alias.as_deref().unwrap_or(name);
                self.check_binding(binding, bindings)?;
                // CTEs shadow base tables.
                if let Some((cte_schema, cols)) = env.materialized.get(name) {
                    let schema = cte_schema.qualified(binding);
                    return Ok(Plan::Scan {
                        cols: Arc::clone(cols),
                        schema,
                    });
                }
                if let Some(query) = env.inline.get(name) {
                    // Re-plan the CTE body at each reference (ablation mode).
                    let inner = self.plan_query_in(query, env, None)?;
                    let schema = inner.schema().qualified(binding);
                    return Ok(Plan::Rename {
                        input: Box::new(inner),
                        schema,
                    });
                }
                let table = self.db.table(name)?;
                let schema = table.schema().qualified(binding);
                let cols = self.db.table_cols(name)?;
                Ok(Plan::Scan { cols, schema })
            }
            TableRef::Subquery { query, alias } => {
                self.check_binding(alias, bindings)?;
                let inner = self.plan_query_in(query, env, None)?;
                let schema = inner.schema().qualified(alias);
                Ok(Plan::Rename {
                    input: Box::new(inner),
                    schema,
                })
            }
            TableRef::Join {
                left,
                kind,
                right,
                on,
            } => {
                let left_plan = self.plan_table_ref(left, env, outer, bindings)?;
                let right_plan = self.plan_table_ref(right, env, outer, bindings)?;
                self.plan_join(left_plan, right_plan, *kind, on.as_ref(), outer)
            }
        }
    }

    fn check_binding(&self, binding: &str, bindings: &mut Vec<String>) -> Result<()> {
        if bindings.iter().any(|b| b == binding) {
            return Err(EngineError::Execution(format!(
                "duplicate table binding `{binding}` in FROM clause (use aliases)"
            )));
        }
        bindings.push(binding.to_string());
        Ok(())
    }

    fn plan_join(
        &self,
        left: Plan,
        right: Plan,
        kind: ast::JoinKind,
        on: Option<&Expr>,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        let schema = left.schema().join(right.schema());
        let join_type = match kind {
            ast::JoinKind::Inner => JoinType::Inner,
            ast::JoinKind::LeftOuter => JoinType::LeftOuter,
            ast::JoinKind::Cross => {
                return Ok(Plan::NestedLoopJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: JoinType::Inner,
                    on: None,
                    schema,
                })
            }
        };
        let on = on.ok_or_else(|| EngineError::Unsupported("join without ON".into()))?;
        let conjuncts: Vec<Expr> = on.split_conjuncts().into_iter().cloned().collect();
        self.make_join(left, right, join_type, &conjuncts, outer)
    }

    /// Bind an expression strictly against one schema with no outer scopes
    /// and no subqueries (used for join-key extraction).
    fn bind_local(&self, expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
        let scope = BindScope::root(schema);
        let bound = self.bind_expr(expr, &scope, &CteEnv::default())?;
        if bound.max_depth() > 0 {
            return Err(EngineError::UnknownColumn("outer reference".into()));
        }
        Ok(bound)
    }

    fn bind_with_outer(
        &self,
        expr: &Expr,
        schema: &Schema,
        outer: Option<&BindScope<'_>>,
    ) -> Result<BoundExpr> {
        let scope = match outer {
            Some(parent) => BindScope {
                schema,
                parent: Some(parent),
            },
            None => BindScope::root(schema),
        };
        self.bind_expr(expr, &scope, &CteEnv::default())
    }

    /// Plan FROM and WHERE together. Equality conjuncts spanning exactly two
    /// FROM factors become hash-join keys, single-factor conjuncts are
    /// pushed below the joins, and everything else (multi-factor residuals,
    /// correlated predicates, subquery conjuncts) is applied above.
    fn plan_from_where(
        &self,
        select: &Select,
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        // Plan each FROM factor independently.
        let mut bindings = Vec::new();
        let mut factors: Vec<Plan> = Vec::new();
        for factor in &select.from {
            factors.push(self.plan_table_ref(factor, env, outer, &mut bindings)?);
        }
        if factors.is_empty() {
            let mut plan = Plan::Unit;
            if let Some(w) = &select.selection {
                plan = self.apply_post_conjuncts(
                    plan,
                    &w.split_conjuncts().into_iter().cloned().collect::<Vec<_>>(),
                    env,
                    outer,
                )?;
            }
            return Ok(plan);
        }
        let factor_schemas: Vec<Schema> = factors.iter().map(|f| f.schema().clone()).collect();

        // Classify WHERE conjuncts by the factors they reference.
        let conjuncts: Vec<Expr> = select
            .selection
            .iter()
            .flat_map(|w| w.split_conjuncts().into_iter().cloned())
            .collect();
        let mut single: Vec<Vec<Expr>> = vec![Vec::new(); factors.len()];
        // (factor set, conjunct) pairs awaiting a join.
        let mut pending: Vec<(std::collections::BTreeSet<usize>, Expr)> = Vec::new();
        let mut post: Vec<Expr> = Vec::new();
        for conjunct in conjuncts {
            if contains_subquery(&conjunct) {
                post.push(conjunct);
                continue;
            }
            match self.conjunct_factors(&conjunct, &factor_schemas)? {
                Some(set) if set.len() == 1 => match set.iter().next() {
                    Some(&factor) => single[factor].push(conjunct),
                    None => post.push(conjunct),
                },
                Some(set) if set.len() >= 2 => pending.push((set, conjunct)),
                // Constant or outer-correlated predicate: apply at the top.
                _ => post.push(conjunct),
            }
        }

        // Push single-factor selections below the joins.
        for (factor, preds) in factors.iter_mut().zip(single) {
            if let Some(pred) = Expr::conjoin(preds) {
                let schema = factor.schema().clone();
                let bound = self.bind_with_outer(&pred, &schema, outer)?;
                let input = std::mem::replace(factor, Plan::Unit);
                *factor = Plan::Filter {
                    input: Box::new(input),
                    predicate: bound,
                };
            }
        }

        // Greedy join ordering: repeatedly merge two components connected by
        // a pending conjunct; fall back to a cross join when none connects.
        // With statistics, every connected pair is tried (estimated-smaller
        // side oriented as the hash-build input, i.e. the right child) and
        // the merge with the smallest estimated output wins; without, the
        // first connected pair in factor order merges, left-to-right.
        let est = self.options.use_stats.then(|| self.estimator());
        let mut components: Vec<(std::collections::BTreeSet<usize>, Plan)> = factors
            .into_iter()
            .enumerate()
            .map(|(i, p)| (std::collections::BTreeSet::from([i]), p))
            .collect();
        while components.len() > 1 {
            // Component pairs joinable via a pending conjunct.
            let connected: Vec<(usize, usize)> = pending
                .iter()
                .filter_map(|(set, _)| {
                    let touching: Vec<usize> = components
                        .iter()
                        .enumerate()
                        .filter(|(_, (fs, _))| !fs.is_disjoint(set))
                        .map(|(ci, _)| ci)
                        .collect();
                    (touching.len() == 2
                        && set.iter().all(|f| {
                            components[touching[0]].0.contains(f)
                                || components[touching[1]].0.contains(f)
                        }))
                    .then_some((touching[0], touching[1]))
                })
                .collect();
            let (left_idx, right_idx) = match &est {
                None => match connected.first() {
                    Some(&(a, b)) => (a.min(b), a.max(b)),
                    None => (0, 1),
                },
                Some(est) => {
                    // Candidate pool: connected pairs, else (cross join
                    // unavoidable) every pair.
                    let pool: Vec<(usize, usize)> = if connected.is_empty() {
                        let n = components.len();
                        (0..n)
                            .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
                            .collect()
                    } else {
                        connected
                    };
                    let mut best: Option<(usize, usize, f64)> = None;
                    for &(a, b) in &pool {
                        // Orient the estimated-smaller component as the
                        // right (hash-build) side.
                        let (li, ri) =
                            if est.est_rows(&components[a].1) >= est.est_rows(&components[b].1) {
                                (a, b)
                            } else {
                                (b, a)
                            };
                        let mut union = components[li].0.clone();
                        union.extend(components[ri].0.iter().copied());
                        let join_conjuncts: Vec<Expr> = pending
                            .iter()
                            .filter(|(set, _)| set.is_subset(&union))
                            .map(|(_, c)| c.clone())
                            .collect();
                        let trial = self.make_join(
                            components[li].1.clone(),
                            components[ri].1.clone(),
                            JoinType::Inner,
                            &join_conjuncts,
                            outer,
                        )?;
                        let out = est.est_rows(&trial);
                        if best.is_none_or(|(_, _, c)| out < c) {
                            best = Some((li, ri, out));
                        }
                    }
                    match best {
                        Some((li, ri, _)) => (li, ri),
                        None => (0, 1),
                    }
                }
            };
            let first = components.remove(left_idx.max(right_idx));
            let second = components.remove(left_idx.min(right_idx));
            let ((fl, left), (fr, right)) = if left_idx > right_idx {
                (first, second)
            } else {
                (second, first)
            };
            let mut merged_factors = fl;
            merged_factors.extend(fr);
            // All pending conjuncts now fully contained in the merged pair
            // become join conditions.
            let mut join_conjuncts = Vec::new();
            pending.retain(|(set, conjunct)| {
                if set.is_subset(&merged_factors) {
                    join_conjuncts.push(conjunct.clone());
                    false
                } else {
                    true
                }
            });
            let joined = self.make_join(left, right, JoinType::Inner, &join_conjuncts, outer)?;
            components.push((merged_factors, joined));
        }
        let Some((_, plan)) = components.pop() else {
            return Err(EngineError::Execution(
                "join ordering produced no components".into(),
            ));
        };

        // Anything left in `pending` spans the (single) remaining component.
        post.extend(pending.into_iter().map(|(_, c)| c));
        self.apply_post_conjuncts(plan, &post, env, outer)
    }

    /// Apply post-join conjuncts: plain ones as a Filter, subquery ones via
    /// decorrelation or per-row evaluation.
    fn apply_post_conjuncts(
        &self,
        input: Plan,
        conjuncts: &[Expr],
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        let mut plain = Vec::new();
        let mut subquery_conjuncts = Vec::new();
        for c in conjuncts {
            if contains_subquery(c) {
                subquery_conjuncts.push(c);
            } else {
                plain.push(c.clone());
            }
        }
        let mut plan = input;
        if let Some(pred) = Expr::conjoin(plain) {
            let schema = plan.schema().clone();
            let bound = self.bind_with_outer(&pred, &schema, outer)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate: bound,
            };
        }
        for conjunct in subquery_conjuncts {
            plan = self.plan_subquery_conjunct(plan, conjunct, env, outer)?;
        }
        Ok(plan)
    }

    /// The set of FROM factors a conjunct's columns resolve into, or `None`
    /// when some column resolves in no factor (outer correlation — handled
    /// later with the full scope chain).
    fn conjunct_factors(
        &self,
        conjunct: &Expr,
        schemas: &[Schema],
    ) -> Result<Option<std::collections::BTreeSet<usize>>> {
        let mut set = std::collections::BTreeSet::new();
        for col in conjunct.column_refs() {
            let mut found = None;
            for (i, schema) in schemas.iter().enumerate() {
                match schema.resolve(col) {
                    Ok(_) => {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(col.name.clone()));
                        }
                        found = Some(i);
                    }
                    Err(EngineError::AmbiguousColumn(name)) => {
                        return Err(EngineError::AmbiguousColumn(name))
                    }
                    Err(_) => {}
                }
            }
            match found {
                Some(i) => {
                    set.insert(i);
                }
                None => return Ok(None),
            }
        }
        Ok(Some(set))
    }

    /// Build a join between two plans from a list of AST conjuncts: equality
    /// conjuncts splitting cleanly across the sides become hash keys, the
    /// rest become the residual ON condition.
    fn make_join(
        &self,
        left: Plan,
        right: Plan,
        kind: JoinType,
        conjuncts: &[Expr],
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        let schema = left.schema().join(right.schema());
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual_parts: Vec<&Expr> = Vec::new();
        for conjunct in conjuncts {
            if let Expr::BinaryOp {
                left: a,
                op: BinaryOp::Eq,
                right: b,
            } = conjunct
            {
                if let (Ok(ka), Ok(kb)) = (
                    self.bind_local(a, left.schema()),
                    self.bind_local(b, right.schema()),
                ) {
                    left_keys.push(ka);
                    right_keys.push(kb);
                    continue;
                }
                if let (Ok(kb), Ok(ka)) = (
                    self.bind_local(b, left.schema()),
                    self.bind_local(a, right.schema()),
                ) {
                    left_keys.push(kb);
                    right_keys.push(ka);
                    continue;
                }
            }
            residual_parts.push(conjunct);
        }

        if left_keys.is_empty() {
            let on = match Expr::conjoin(residual_parts.into_iter().cloned()) {
                Some(e) => Some(self.bind_with_outer(&e, &schema, outer)?),
                None => None,
            };
            return Ok(Plan::NestedLoopJoin {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                schema,
            });
        }
        let residual = match Expr::conjoin(residual_parts.into_iter().cloned()) {
            Some(e) => Some(self.bind_with_outer(&e, &schema, outer)?),
            None => None,
        };
        Ok(Plan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            kind,
            left_keys,
            right_keys,
            residual,
            build_index: None,
            schema,
        })
    }

    fn plan_subquery_conjunct(
        &self,
        input: Plan,
        conjunct: &Expr,
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        if self.options.decorrelate_exists {
            if let Expr::Exists { subquery, negated } = conjunct {
                if let Some(plan) = self.try_decorrelate_exists(&input, subquery, *negated, env)? {
                    return Ok(plan);
                }
            }
            if let Expr::InSubquery {
                expr,
                subquery,
                negated: false,
            } = conjunct
            {
                if let Some(plan) = self.try_decorrelate_in(&input, expr, subquery, env)? {
                    return Ok(plan);
                }
            }
        }
        // Fallback: evaluate the subquery per row.
        let schema = input.schema().clone();
        let bound = self.bind_subquery_aware(conjunct, &schema, env, outer)?;
        Ok(Plan::Filter {
            input: Box::new(input),
            predicate: bound,
        })
    }

    /// Attempt to turn `[NOT] EXISTS (SELECT ... FROM F WHERE W)` into a
    /// hash semi/anti join. Succeeds when every correlated conjunct of `W`
    /// is an equality between an outer column (depth 1) and a local
    /// expression, and everything else in the subquery is local.
    fn try_decorrelate_exists(
        &self,
        input: &Plan,
        subquery: &Query,
        negated: bool,
        env: &CteEnv,
    ) -> Result<Option<Plan>> {
        // Only simple selects: no CTEs of their own with correlation, no
        // grouping, no distinct needed (existential semantics).
        if !subquery.ctes.is_empty() || !subquery.order_by.is_empty() || subquery.limit.is_some() {
            return Ok(None);
        }
        let Some(select) = subquery.as_select() else {
            return Ok(None);
        };
        if !select.group_by.is_empty() || select.having.is_some() {
            return Ok(None);
        }

        // Plan the subquery FROM clause (must be uncorrelated itself).
        let mut bindings = Vec::new();
        let mut sub_plan = match select.from.split_first() {
            None => return Ok(None),
            Some((first, rest)) => {
                let mut p = self.plan_table_ref(first, env, None, &mut bindings)?;
                for factor in rest {
                    let right = self.plan_table_ref(factor, env, None, &mut bindings)?;
                    let schema = p.schema().join(right.schema());
                    p = Plan::NestedLoopJoin {
                        left: Box::new(p),
                        right: Box::new(right),
                        kind: JoinType::Inner,
                        on: None,
                        schema,
                    };
                }
                p
            }
        };

        let outer_schema = input.schema().clone();
        let inner_schema = sub_plan.schema().clone();

        let mut outer_keys = Vec::new();
        let mut inner_keys = Vec::new();
        let mut local: Vec<Expr> = Vec::new();
        if let Some(w) = &select.selection {
            for conjunct in w.split_conjuncts() {
                if !contains_subquery(conjunct) {
                    if let Ok(bound) = self.bind_local(conjunct, &inner_schema) {
                        local.push(conjunct.clone());
                        let _ = bound;
                        continue;
                    }
                }
                // Correlated equality?
                if let Expr::BinaryOp {
                    left: a,
                    op: BinaryOp::Eq,
                    right: b,
                } = conjunct
                {
                    let inner_a = self.bind_local(a, &inner_schema);
                    let outer_b = self.bind_local(b, &outer_schema);
                    if let (Ok(ia), Ok(ob)) = (inner_a, outer_b) {
                        inner_keys.push(ia);
                        outer_keys.push(ob);
                        continue;
                    }
                    let inner_b = self.bind_local(b, &inner_schema);
                    let outer_a = self.bind_local(a, &outer_schema);
                    if let (Ok(ib), Ok(oa)) = (inner_b, outer_a) {
                        inner_keys.push(ib);
                        outer_keys.push(oa);
                        continue;
                    }
                }
                // Some conjunct is neither local nor a simple correlated
                // equality: give up on decorrelation.
                return Ok(None);
            }
        }
        if outer_keys.is_empty() {
            // Uncorrelated EXISTS: cheap to evaluate once via the fallback.
            return Ok(None);
        }

        if let Some(pred) = Expr::conjoin(local) {
            let bound = self.bind_local(&pred, &inner_schema)?;
            sub_plan = Plan::Filter {
                input: Box::new(sub_plan),
                predicate: bound,
            };
        }

        let kind = if negated {
            JoinType::Anti
        } else {
            JoinType::Semi
        };
        Ok(Some(Plan::HashJoin {
            left: Box::new(input.clone()),
            right: Box::new(sub_plan),
            kind,
            left_keys: outer_keys,
            right_keys: inner_keys,
            residual: None,
            build_index: None,
            schema: outer_schema,
        }))
    }

    /// Attempt `expr IN (uncorrelated subquery)` as a hash semi join.
    fn try_decorrelate_in(
        &self,
        input: &Plan,
        expr: &Expr,
        subquery: &Query,
        env: &CteEnv,
    ) -> Result<Option<Plan>> {
        let outer_schema = input.schema().clone();
        let Ok(outer_key) = self.bind_local(expr, &outer_schema) else {
            return Ok(None);
        };
        // The subquery must be fully uncorrelated.
        let Ok(sub_plan) = self.plan_query_in(subquery, env, None) else {
            return Ok(None);
        };
        if sub_plan.schema().len() != 1 || sub_plan.max_outer_depth() > 0 {
            return Ok(None);
        }
        Ok(Some(Plan::HashJoin {
            left: Box::new(input.clone()),
            right: Box::new(sub_plan),
            kind: JoinType::Semi,
            left_keys: vec![outer_key],
            right_keys: vec![BoundExpr::column(0)],
            residual: None,
            build_index: None,
            schema: outer_schema,
        }))
    }

    fn plan_projection(
        &self,
        input: Plan,
        projection: &[SelectItem],
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        let input_schema = input.schema().clone();
        let mut exprs = Vec::new();
        let mut columns = Vec::new();
        for (i, item) in projection.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (idx, col) in input_schema.columns.iter().enumerate() {
                        exprs.push(BoundExpr::column(idx));
                        columns.push(col.clone());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let indices = input_schema.indices_for_qualifier(q);
                    if indices.is_empty() {
                        return Err(EngineError::UnknownTable(q.clone()));
                    }
                    for idx in indices {
                        exprs.push(BoundExpr::column(idx));
                        columns.push(input_schema.columns[idx].clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_subquery_aware(expr, &input_schema, env, outer)?;
                    let name = output_name(expr, alias.as_deref(), i);
                    let ty = infer_type(&bound, &input_schema);
                    exprs.push(bound);
                    columns.push(Column::bare(&name, ty));
                }
            }
        }
        let schema = Schema::new(columns);
        Ok(Plan::Project {
            input: Box::new(input),
            exprs,
            schema,
        })
    }

    /// Bind an expression that may contain subqueries: the current schema
    /// becomes the innermost scope, and subquery plans are built with this
    /// scope (plus enclosing ones) available for correlation.
    fn bind_subquery_aware(
        &self,
        expr: &Expr,
        schema: &Schema,
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<BoundExpr> {
        let scope = match outer {
            Some(parent) => BindScope {
                schema,
                parent: Some(parent),
            },
            None => BindScope::root(schema),
        };
        self.bind_expr_env(expr, &scope, env)
    }

    fn bind_expr(&self, expr: &Expr, scope: &BindScope<'_>, env: &CteEnv) -> Result<BoundExpr> {
        self.bind_expr_env(expr, scope, env)
    }

    fn bind_expr_env(&self, expr: &Expr, scope: &BindScope<'_>, env: &CteEnv) -> Result<BoundExpr> {
        Ok(match expr {
            Expr::Column(col) => {
                let (depth, index) = scope.resolve(col)?;
                BoundExpr::Column { depth, index }
            }
            Expr::Literal(l) => BoundExpr::Literal(literal_value(l)),
            Expr::BinaryOp { left, op, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind_expr_env(left, scope, env)?),
                right: Box::new(self.bind_expr_env(right, scope, env)?),
            },
            Expr::UnaryOp {
                op: UnaryOp::Not,
                expr,
            } => BoundExpr::Not(Box::new(self.bind_expr_env(expr, scope, env)?)),
            Expr::UnaryOp {
                op: UnaryOp::Neg,
                expr,
            } => BoundExpr::Neg(Box::new(self.bind_expr_env(expr, scope, env)?)),
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(self.bind_expr_env(expr, scope, env)?),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // Desugar: e BETWEEN a AND b  ==  e >= a AND e <= b.
                let e = self.bind_expr_env(expr, scope, env)?;
                let lo = self.bind_expr_env(low, scope, env)?;
                let hi = self.bind_expr_env(high, scope, env)?;
                let ge = BoundExpr::Binary {
                    op: BinaryOp::GtEq,
                    left: Box::new(e.clone()),
                    right: Box::new(lo),
                };
                let le = BoundExpr::Binary {
                    op: BinaryOp::LtEq,
                    left: Box::new(e),
                    right: Box::new(hi),
                };
                let both = BoundExpr::Binary {
                    op: BinaryOp::And,
                    left: Box::new(ge),
                    right: Box::new(le),
                };
                if *negated {
                    BoundExpr::Not(Box::new(both))
                } else {
                    both
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(self.bind_expr_env(expr, scope, env)?),
                list: list
                    .iter()
                    .map(|e| self.bind_expr_env(e, scope, env))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(self.bind_expr_env(expr, scope, env)?),
                pattern: Box::new(self.bind_expr_env(pattern, scope, env)?),
                negated: *negated,
            },
            Expr::Case {
                branches,
                else_expr,
            } => BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| {
                        Ok((
                            self.bind_expr_env(c, scope, env)?,
                            self.bind_expr_env(v, scope, env)?,
                        ))
                    })
                    .collect::<Result<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.bind_expr_env(e, scope, env)?)),
                    None => None,
                },
            },
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                if is_aggregate_function(name) {
                    return Err(EngineError::Execution(format!(
                        "aggregate `{name}` not allowed here"
                    )));
                }
                if *distinct {
                    return Err(EngineError::Unsupported(
                        "DISTINCT in scalar function".into(),
                    ));
                }
                let func = ScalarFunc::by_name(name).ok_or_else(|| {
                    EngineError::Unsupported(format!("unknown function `{name}`"))
                })?;
                let min_args = match func {
                    ScalarFunc::Abs => 1,
                    _ => 1,
                };
                if args.len() < min_args || (func == ScalarFunc::Abs && args.len() != 1) {
                    return Err(EngineError::Execution(format!(
                        "wrong number of arguments to `{name}`"
                    )));
                }
                BoundExpr::Func {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.bind_expr_env(a, scope, env))
                        .collect::<Result<_>>()?,
                }
            }
            Expr::Exists { subquery, negated } => {
                let plan = self.plan_query_in(subquery, env, Some(scope))?;
                BoundExpr::Subquery {
                    plan: Box::new(plan),
                    kind: SubqueryKind::Exists { negated: *negated },
                }
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let needle = self.bind_expr_env(expr, scope, env)?;
                let plan = self.plan_query_in(subquery, env, Some(scope))?;
                BoundExpr::Subquery {
                    plan: Box::new(plan),
                    kind: SubqueryKind::In {
                        expr: Box::new(needle),
                        negated: *negated,
                    },
                }
            }
            Expr::ScalarSubquery(subquery) => {
                let plan = self.plan_query_in(subquery, env, Some(scope))?;
                BoundExpr::Subquery {
                    plan: Box::new(plan),
                    kind: SubqueryKind::Scalar,
                }
            }
            Expr::Wildcard => {
                return Err(EngineError::Execution(
                    "`*` is only valid in SELECT lists and COUNT(*)".into(),
                ))
            }
        })
    }
}

/// `true` when the expression contains any subquery node outside nested
/// subquery scopes.
/// Deep column-name scan over an AST fragment, descending into subqueries
/// (unlike `Expr::visit_columns`). Drives CTE projection pruning: any
/// column *name* seen anywhere downstream of a CTE keeps the same-named CTE
/// column; any `*` / `t.*` in a projection keeps everything. `COUNT(*)`'s
/// bare `Expr::Wildcard` is ignored — it needs rows, not columns, and
/// pruning always keeps at least one column.
#[derive(Default)]
struct ColRefScan {
    names: std::collections::HashSet<String>,
    wildcard: bool,
}

impl ColRefScan {
    fn query(&mut self, q: &Query) {
        for cte in &q.ctes {
            self.query(&cte.query);
        }
        self.set_expr(&q.body);
        for item in &q.order_by {
            self.expr(&item.expr);
        }
    }

    fn set_expr(&mut self, s: &SetExpr) {
        for sel in s.selects() {
            self.select(sel);
        }
    }

    fn select(&mut self, sel: &Select) {
        for item in &sel.projection {
            match item {
                SelectItem::Expr { expr, .. } => self.expr(expr),
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    self.wildcard = true;
                }
            }
        }
        for factor in &sel.from {
            self.table_ref(factor);
        }
        if let Some(w) = &sel.selection {
            self.expr(w);
        }
        for g in &sel.group_by {
            self.expr(g);
        }
        if let Some(h) = &sel.having {
            self.expr(h);
        }
    }

    fn table_ref(&mut self, t: &TableRef) {
        match t {
            TableRef::Table { .. } => {}
            TableRef::Subquery { query, .. } => self.query(query),
            TableRef::Join {
                left, right, on, ..
            } => {
                self.table_ref(left);
                self.table_ref(right);
                if let Some(on) = on {
                    self.expr(on);
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Column(c) => {
                self.names.insert(c.name.clone());
            }
            Expr::Literal(_) | Expr::Wildcard => {}
            Expr::BinaryOp { left, right, .. } => {
                self.expr(left);
                self.expr(right);
            }
            Expr::UnaryOp { expr, .. } | Expr::IsNull { expr, .. } => self.expr(expr),
            Expr::Between {
                expr, low, high, ..
            } => {
                self.expr(expr);
                self.expr(low);
                self.expr(high);
            }
            Expr::InList { expr, list, .. } => {
                self.expr(expr);
                for x in list {
                    self.expr(x);
                }
            }
            Expr::InSubquery { expr, subquery, .. } => {
                self.expr(expr);
                self.query(subquery);
            }
            Expr::Like { expr, pattern, .. } => {
                self.expr(expr);
                self.expr(pattern);
            }
            Expr::Exists { subquery, .. } => self.query(subquery),
            Expr::ScalarSubquery(subquery) => self.query(subquery),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    self.expr(c);
                    self.expr(v);
                }
                if let Some(x) = else_expr {
                    self.expr(x);
                }
            }
            Expr::Function { args, .. } => {
                for x in args {
                    self.expr(x);
                }
            }
        }
    }
}

/// Narrow a materialized CTE plan to the columns named in `keep`: the
/// stored rows then only carry what the rest of the query can reference.
/// Keeps column order, and always at least one column so row counts
/// (`COUNT(*)` over the CTE) survive.
fn prune_projection(plan: Plan, keep: &std::collections::HashSet<String>) -> Plan {
    let schema = plan.schema();
    let mut kept: Vec<usize> = (0..schema.len())
        .filter(|&i| keep.contains(&schema.columns[i].name))
        .collect();
    if kept.len() == schema.len() {
        return plan;
    }
    if kept.is_empty() {
        kept.push(0);
    }
    let columns = kept.iter().map(|&i| schema.columns[i].clone()).collect();
    let exprs = kept.iter().map(|&i| BoundExpr::column(i)).collect();
    let schema = Schema::new(columns);
    Plan::Project {
        input: Box::new(plan),
        exprs,
        schema,
    }
}

fn contains_subquery(e: &Expr) -> bool {
    match e {
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => true,
        Expr::BinaryOp { left, right, .. } => contains_subquery(left) || contains_subquery(right),
        Expr::UnaryOp { expr, .. } | Expr::IsNull { expr, .. } => contains_subquery(expr),
        Expr::Between {
            expr, low, high, ..
        } => contains_subquery(expr) || contains_subquery(low) || contains_subquery(high),
        Expr::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
        Expr::Like { expr, pattern, .. } => contains_subquery(expr) || contains_subquery(pattern),
        Expr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .any(|(c, v)| contains_subquery(c) || contains_subquery(v))
                || else_expr.as_deref().is_some_and(contains_subquery)
        }
        Expr::Function { args, .. } => args.iter().any(contains_subquery),
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => false,
    }
}

/// Convert an AST literal to a runtime value.
pub fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Bool(*b),
        Literal::Integer(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::String(s) => Value::str(s),
        Literal::Date(d) => Value::Date(*d),
    }
}

/// Output column name for a projected expression.
fn output_name(expr: &Expr, alias: Option<&str>, position: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        Expr::Column(c) => c.name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => format!("_col{}", position + 1),
    }
}

/// Best-effort output type inference for projections.
fn infer_type(bound: &BoundExpr, input: &Schema) -> DataType {
    match bound {
        BoundExpr::Column { depth: 0, index } => input.columns[*index].ty,
        BoundExpr::Literal(Value::Int(_)) => DataType::Integer,
        BoundExpr::Literal(Value::Float(_)) => DataType::Float,
        BoundExpr::Literal(Value::Str(_)) => DataType::Text,
        BoundExpr::Literal(Value::Date(_)) => DataType::Date,
        BoundExpr::Literal(Value::Bool(_)) => DataType::Boolean,
        _ => DataType::Any,
    }
}

// ---------------------------------------------------------------------------
// Aggregation planning
// ---------------------------------------------------------------------------

impl<'a> Planner<'a> {
    fn plan_aggregate(
        &self,
        input: Plan,
        select: &Select,
        env: &CteEnv,
        outer: Option<&BindScope<'_>>,
    ) -> Result<Plan> {
        let input_schema = input.schema().clone();

        // Bind group expressions over the input.
        let mut group_exprs = Vec::new();
        let mut group_cols = Vec::new();
        for (i, g) in select.group_by.iter().enumerate() {
            let bound = self.bind_subquery_aware(g, &input_schema, env, outer)?;
            let (name, qualifier) = match g {
                Expr::Column(c) => (c.name.clone(), c.qualifier.clone()),
                _ => (format!("_g{}", i + 1), None),
            };
            let ty = infer_type(&bound, &input_schema);
            group_cols.push(Column {
                qualifier,
                name,
                ty,
            });
            group_exprs.push(bound);
        }

        // Collect aggregate specs from projection + having; build the
        // rewritten (post-aggregation) expressions.
        let mut ctx = GroupContext {
            planner: self,
            input_schema: &input_schema,
            env,
            group_exprs: &group_exprs,
            aggs: Vec::new(),
        };

        let mut out_exprs = Vec::new();
        let mut out_cols = Vec::new();
        for (i, item) in select.projection.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(EngineError::Unsupported(
                    "wildcard projection with GROUP BY".into(),
                ));
            };
            let rewritten = ctx.bind(expr)?;
            let name = output_name(expr, alias.as_deref(), i);
            out_cols.push(Column::bare(&name, DataType::Any));
            out_exprs.push(rewritten);
        }
        let having = match &select.having {
            Some(h) => Some(ctx.bind(h)?),
            None => None,
        };

        let aggs = ctx.aggs;
        // Aggregate output: group columns then aggregate slots.
        let mut agg_schema_cols = group_cols.clone();
        for (i, _) in aggs.iter().enumerate() {
            agg_schema_cols.push(Column::bare(&format!("_agg{}", i + 1), DataType::Any));
        }
        let n_groups = group_exprs.len();
        let agg_plan = Plan::Aggregate {
            input: Box::new(input),
            group_exprs,
            aggs,
            schema: Schema::new(agg_schema_cols),
        };

        // Resolve AggRef slots to plain columns above the Aggregate node.
        let resolve = |mut e: BoundExpr| {
            resolve_agg_refs(&mut e, n_groups);
            e
        };
        let mut plan = agg_plan;
        if let Some(h) = having {
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate: resolve(h),
            };
        }
        let exprs: Vec<BoundExpr> = out_exprs.into_iter().map(resolve).collect();
        Ok(Plan::Project {
            input: Box::new(plan),
            exprs,
            schema: Schema::new(out_cols),
        })
    }
}

/// Replace `AggRef { index }` with a column reference at
/// `n_groups + index` (the slot layout of the Aggregate operator output).
fn resolve_agg_refs(e: &mut BoundExpr, n_groups: usize) {
    use BoundExpr::*;
    match e {
        AggRef { index } => {
            *e = BoundExpr::Column {
                depth: 0,
                index: n_groups + *index,
            }
        }
        Column { .. } | Literal(_) => {}
        Binary { left, right, .. } => {
            resolve_agg_refs(left, n_groups);
            resolve_agg_refs(right, n_groups);
        }
        Not(x) | Neg(x) => resolve_agg_refs(x, n_groups),
        IsNull { expr, .. } => resolve_agg_refs(expr, n_groups),
        InList { expr, list, .. } => {
            resolve_agg_refs(expr, n_groups);
            for x in list {
                resolve_agg_refs(x, n_groups);
            }
        }
        Like { expr, pattern, .. } => {
            resolve_agg_refs(expr, n_groups);
            resolve_agg_refs(pattern, n_groups);
        }
        Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                resolve_agg_refs(c, n_groups);
                resolve_agg_refs(v, n_groups);
            }
            if let Some(x) = else_expr {
                resolve_agg_refs(x, n_groups);
            }
        }
        Func { args, .. } => {
            for x in args {
                resolve_agg_refs(x, n_groups);
            }
        }
        Subquery { .. } => {}
    }
}

/// Binder for expressions evaluated *after* aggregation: matches whole
/// subtrees against GROUP BY expressions, turns aggregate calls into slots,
/// and rejects stray column references.
struct GroupContext<'p, 'a> {
    planner: &'p Planner<'a>,
    input_schema: &'p Schema,
    env: &'p CteEnv,
    group_exprs: &'p [BoundExpr],
    aggs: Vec<AggSpec>,
}

impl GroupContext<'_, '_> {
    fn bind(&mut self, expr: &Expr) -> Result<BoundExpr> {
        // An aggregate call becomes (or reuses) a slot.
        if let Expr::Function {
            name,
            args,
            distinct,
        } = expr
        {
            if let Some(func) = AggFunc::by_name(name) {
                return self.bind_aggregate(func, args, *distinct);
            }
        }
        // A subtree structurally equal to a GROUP BY expression becomes a
        // reference to the corresponding group column.
        if !expr.contains_aggregate() {
            let scope = BindScope::root(self.input_schema);
            if let Ok(bound) = self.planner.bind_expr(expr, &scope, self.env) {
                if let Some(i) = self.group_exprs.iter().position(|g| *g == bound) {
                    return Ok(BoundExpr::column(i));
                }
            }
        }
        // Otherwise recurse into the expression's children.
        Ok(match expr {
            Expr::Column(c) => {
                return Err(EngineError::Execution(format!(
                    "column `{c}` must appear in the GROUP BY clause or be used in an aggregate"
                )))
            }
            Expr::Literal(l) => BoundExpr::Literal(literal_value(l)),
            Expr::BinaryOp { left, op, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind(left)?),
                right: Box::new(self.bind(right)?),
            },
            Expr::UnaryOp {
                op: UnaryOp::Not,
                expr,
            } => BoundExpr::Not(Box::new(self.bind(expr)?)),
            Expr::UnaryOp {
                op: UnaryOp::Neg,
                expr,
            } => BoundExpr::Neg(Box::new(self.bind(expr)?)),
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(self.bind(expr)?),
                negated: *negated,
            },
            Expr::Case {
                branches,
                else_expr,
            } => BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((self.bind(c)?, self.bind(v)?)))
                    .collect::<Result<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.bind(e)?)),
                    None => None,
                },
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(self.bind(expr)?),
                list: list.iter().map(|e| self.bind(e)).collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.bind(expr)?;
                let lo = self.bind(low)?;
                let hi = self.bind(high)?;
                let ge = BoundExpr::Binary {
                    op: BinaryOp::GtEq,
                    left: Box::new(e.clone()),
                    right: Box::new(lo),
                };
                let le = BoundExpr::Binary {
                    op: BinaryOp::LtEq,
                    left: Box::new(e),
                    right: Box::new(hi),
                };
                let both = BoundExpr::Binary {
                    op: BinaryOp::And,
                    left: Box::new(ge),
                    right: Box::new(le),
                };
                if *negated {
                    BoundExpr::Not(Box::new(both))
                } else {
                    both
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(self.bind(expr)?),
                pattern: Box::new(self.bind(pattern)?),
                negated: *negated,
            },
            Expr::Function { name, args, .. } => {
                let func = ScalarFunc::by_name(name).ok_or_else(|| {
                    EngineError::Unsupported(format!("unknown function `{name}`"))
                })?;
                BoundExpr::Func {
                    func,
                    args: args.iter().map(|a| self.bind(a)).collect::<Result<_>>()?,
                }
            }
            Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {
                return Err(EngineError::Unsupported(
                    "subqueries above aggregation".into(),
                ))
            }
            Expr::Wildcard => {
                return Err(EngineError::Execution(
                    "stray `*` in aggregate query".into(),
                ))
            }
        })
    }

    fn bind_aggregate(
        &mut self,
        func: AggFunc,
        args: &[Expr],
        distinct: bool,
    ) -> Result<BoundExpr> {
        let spec = match (func, args) {
            (AggFunc::Count, [Expr::Wildcard]) => AggSpec {
                func,
                arg: None,
                distinct: false,
            },
            (_, [arg]) => {
                if arg.contains_aggregate() {
                    return Err(EngineError::Execution("nested aggregate call".into()));
                }
                let scope = BindScope::root(self.input_schema);
                let bound = self.planner.bind_expr(arg, &scope, self.env)?;
                AggSpec {
                    func,
                    arg: Some(bound),
                    distinct,
                }
            }
            _ => {
                return Err(EngineError::Execution(format!(
                    "aggregate {func:?} takes exactly one argument"
                )))
            }
        };
        let index = match self.aggs.iter().position(|a| *a == spec) {
            Some(i) => i,
            None => {
                self.aggs.push(spec);
                self.aggs.len() - 1
            }
        };
        Ok(BoundExpr::AggRef { index })
    }
}
