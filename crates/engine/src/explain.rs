//! Plan pretty-printing: `EXPLAIN` and `EXPLAIN ANALYZE`.
//!
//! `EXPLAIN` renders the operator tree one indented line per node.
//! `EXPLAIN ANALYZE` runs the plan first (via
//! [`exec::execute_traced`](crate::exec::execute_traced)) and annotates
//! each line with the measured [`NodeStats`]: rows out, inclusive wall
//! time, and operator-specific counters. [`stats_json`] renders the same
//! tree as a JSON object for machine consumers (the bench harness).

use conquer_obs::Json;

use crate::plan::{JoinType, Plan};
use crate::stats::NodeStats;

/// Render a plan as an indented operator tree.
pub fn explain(plan: &Plan) -> String {
    let mut out = String::new();
    walk(plan, None, false, 0, &mut out);
    out
}

/// Render a plan with the planner's cardinality estimates
/// (`est_rows=` per operator, from [`crate::cost::annotate`]) but no
/// runtime measurements — this is what plain `EXPLAIN` shows when table
/// statistics are available.
pub fn explain_estimated(plan: &Plan, stats: &NodeStats) -> String {
    let mut out = String::new();
    walk(plan, Some(stats), false, 0, &mut out);
    out
}

/// Render a plan annotated with the runtime stats collected by
/// [`execute_traced`](crate::exec::execute_traced). The stats tree must
/// mirror the plan's shape. When the stats carry planner estimates,
/// `est_rows=` prints next to the measured `rows=` so the estimation
/// error is visible per operator.
pub fn explain_analyze(plan: &Plan, stats: &NodeStats) -> String {
    let mut out = String::new();
    walk(plan, Some(stats), true, 0, &mut out);
    out
}

fn walk(plan: &Plan, stats: Option<&NodeStats>, analyze: bool, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&node_label(plan));
    if let Some(s) = stats {
        if analyze {
            out.push_str(&format!("  (rows={}", s.rows_out));
            if let Some(est) = s.est_rows {
                out.push_str(&format!(" est_rows={est}"));
            }
            out.push_str(&format!(" wall={:.3}ms", s.wall.as_secs_f64() * 1e3));
            if s.invocations > 1 {
                out.push_str(&format!(" runs={}", s.invocations));
            }
            if s.build_rows > 0 {
                out.push_str(&format!(" build={}", s.build_rows));
            }
            if s.probe_rows > 0 {
                out.push_str(&format!(" probe={}", s.probe_rows));
            }
            if s.comparisons > 0 {
                out.push_str(&format!(" cmp={}", s.comparisons));
            }
            if s.est_mem_bytes > 0 {
                out.push_str(&format!(" mem~{}", human_bytes(s.est_mem_bytes)));
            }
            if s.threads_used > 1 {
                out.push_str(&format!(" threads={}", s.threads_used));
            }
            out.push(')');
        } else if let Some(est) = s.est_rows {
            out.push_str(&format!("  (est_rows={est})"));
        }
    }
    out.push('\n');
    for (i, child) in plan.children().into_iter().enumerate() {
        walk(
            child,
            stats.and_then(|s| s.children.get(i)),
            analyze,
            depth + 1,
            out,
        );
    }
}

/// A structural one-line label for an operator. Expressions are summarized
/// by count, not printed (bound expressions carry column indices, not
/// source names).
pub fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { cols, schema } => {
            let name = schema
                .columns
                .first()
                .and_then(|c| c.qualifier.as_deref())
                .unwrap_or("?");
            format!("Scan {name} [{} rows, {} cols]", cols.len(), schema.len())
        }
        Plan::IndexScan {
            cols,
            schema,
            index,
            access,
        } => {
            let name = schema
                .columns
                .first()
                .and_then(|c| c.qualifier.as_deref())
                .unwrap_or("?");
            format!(
                "Scan {name} [{} rows, {} cols] access=index({} {})",
                cols.len(),
                schema.len(),
                index.col_names().join(","),
                access.label(),
            )
        }
        Plan::Unit => "Unit".to_string(),
        Plan::Filter { .. } => "Filter".to_string(),
        Plan::Project { exprs, .. } => format!("Project [{} exprs]", exprs.len()),
        Plan::Rename { schema, .. } => {
            let name = schema
                .columns
                .first()
                .and_then(|c| c.qualifier.as_deref())
                .unwrap_or("?");
            format!("Rename -> {name}")
        }
        Plan::HashJoin {
            kind,
            left_keys,
            residual,
            build_index,
            ..
        } => {
            let access = match build_index {
                Some(idx) => format!(" access=index({})", idx.col_names().join(",")),
                None => String::new(),
            };
            format!(
                "HashJoin {} [{} keys{}]{access}",
                join_kind(*kind),
                left_keys.len(),
                if residual.is_some() { " +residual" } else { "" },
            )
        }
        Plan::NestedLoopJoin { kind, on, .. } => format!(
            "NestedLoopJoin {}{}",
            join_kind(*kind),
            if on.is_some() { " [on]" } else { " [cross]" },
        ),
        Plan::Aggregate {
            group_exprs, aggs, ..
        } => {
            format!(
                "Aggregate [{} group keys, {} aggs]",
                group_exprs.len(),
                aggs.len()
            )
        }
        Plan::Distinct { .. } => "Distinct".to_string(),
        Plan::UnionAll { .. } => "UnionAll".to_string(),
        Plan::Sort { keys, .. } => format!("Sort [{} keys]", keys.len()),
        Plan::Limit { n, .. } => format!("Limit {n}"),
    }
}

fn join_kind(kind: JoinType) -> &'static str {
    match kind {
        JoinType::Inner => "Inner",
        JoinType::LeftOuter => "LeftOuter",
        JoinType::Semi => "Semi",
        JoinType::Anti => "Anti",
    }
}

fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}

/// The annotated plan as a JSON tree:
/// `{"op", "rows_out", "rows_in", "wall_us", ..., "children": [...]}`.
pub fn stats_json(plan: &Plan, stats: &NodeStats) -> Json {
    let mut obj = Json::obj([
        ("op", Json::from(node_label(plan))),
        ("rows_out", Json::UInt(stats.rows_out)),
        ("rows_in", Json::UInt(stats.rows_in())),
        ("wall_us", Json::UInt(stats.wall.as_micros() as u64)),
        ("self_us", Json::UInt(stats.self_wall().as_micros() as u64)),
        ("invocations", Json::UInt(stats.invocations)),
    ]);
    if let Some(est) = stats.est_rows {
        obj.push("est_rows", Json::UInt(est));
    }
    if stats.build_rows > 0 {
        obj.push("build_rows", Json::UInt(stats.build_rows));
    }
    if stats.probe_rows > 0 {
        obj.push("probe_rows", Json::UInt(stats.probe_rows));
    }
    if stats.comparisons > 0 {
        obj.push("comparisons", Json::UInt(stats.comparisons));
    }
    if stats.est_mem_bytes > 0 {
        obj.push("est_mem_bytes", Json::UInt(stats.est_mem_bytes));
    }
    if stats.threads_used > 1 {
        obj.push("threads", Json::UInt(stats.threads_used));
    }
    let children: Vec<Json> = plan
        .children()
        .into_iter()
        .zip(&stats.children)
        .map(|(p, s)| stats_json(p, s))
        .collect();
    if !children.is_empty() {
        obj.push("children", Json::Arr(children));
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn demo_db() -> Database {
        let db = Database::new();
        db.run_script(
            "create table emp (id integer, dept text, salary integer);
             insert into emp values (1, 'eng', 100), (2, 'eng', 120), (3, 'ops', 90);",
        )
        .unwrap();
        db
    }

    #[test]
    fn explain_renders_operator_tree() {
        let db = demo_db();
        let text = db
            .explain("select dept, count(*) from emp where salary > 95 group by dept")
            .unwrap();
        assert!(text.contains("Aggregate"), "missing aggregate in:\n{text}");
        assert!(text.contains("Filter"), "missing filter in:\n{text}");
        assert!(
            text.contains("Scan emp [3 rows"),
            "missing scan in:\n{text}"
        );
        // Indentation reflects the tree: the scan is the deepest line.
        let scan_line = text.lines().find(|l| l.contains("Scan")).unwrap();
        assert!(scan_line.starts_with("  "), "scan not indented in:\n{text}");
    }

    #[test]
    fn explain_analyze_reports_cardinalities() {
        let db = demo_db();
        let (rows, text) = db
            .explain_analyze("select dept, count(*) from emp where salary > 95 group by dept")
            .unwrap();
        assert_eq!(rows.rows.len(), 1); // only 'eng' survives the filter
        let root = text.lines().next().unwrap();
        assert!(
            root.contains("rows=1"),
            "root cardinality wrong in:\n{text}"
        );
        let filter = text
            .lines()
            .find(|l| l.trim_start().starts_with("Filter"))
            .unwrap();
        assert!(
            filter.contains("rows=2"),
            "filter cardinality wrong in:\n{text}"
        );
    }

    #[test]
    fn stats_json_tree_matches_plan_shape() {
        let db = demo_db();
        let query =
            conquer_sql::parse_query("select e.id from emp e, emp f where e.id = f.id").unwrap();
        let plan = db.plan(&query, &Default::default()).unwrap();
        let (rows, stats) = crate::exec::execute_traced(&plan, None, None).unwrap();
        assert_eq!(rows.rows.len(), 3);
        let json = stats_json(&plan, &stats);
        assert_eq!(json.get("rows_out"), Some(&Json::UInt(3)));
        let rendered = json.render();
        assert!(rendered.contains("\"op\""), "missing op labels: {rendered}");
        assert!(
            rendered.contains("HashJoin"),
            "missing join label: {rendered}"
        );
    }
}
