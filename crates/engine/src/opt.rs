//! Post-planning optimizations: filter pushdown through joins and renames.
//!
//! ConQuer's Section 5 relies on the host optimizer evaluating the
//! `conscand > 0` guard *before* the Filter's joins ("it is up to the query
//! optimizer to perform this selection before the joins; the results ...
//! show that it consistently chooses the appropriate strategy"). This pass
//! plays that role: conjuncts of a `Filter` that reference only one side of
//! a join move below it, eventually fusing with the base-table scan.

use crate::expr::{BoundExpr, SubqueryKind};
use crate::plan::{JoinType, Plan};

/// Optimize a plan tree. Currently: pushes filter conjuncts through
/// `Rename`, `Filter`, inner `HashJoin`/`NestedLoopJoin` (both sides),
/// left-outer joins (left side only), and semi/anti joins (left side).
pub fn optimize(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = optimize(*input);
            let conjuncts = split_bound_conjuncts(predicate);
            push_filter(input, conjuncts)
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(optimize(*input)),
            exprs,
            schema,
        },
        Plan::Rename { input, schema } => Plan::Rename {
            input: Box::new(optimize(*input)),
            schema,
        },
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => Plan::HashJoin {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => Plan::NestedLoopJoin {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
            kind,
            on,
            schema,
        },
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => Plan::Aggregate {
            input: Box::new(optimize(*input)),
            group_exprs,
            aggs,
            schema,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(optimize(*input)),
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(optimize(*input)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(optimize(*input)),
            n,
        },
        leaf @ (Plan::Scan { .. } | Plan::Unit) => leaf,
    }
}

/// Push a set of conjuncts as deep as possible above `input`, rebuilding a
/// `Filter` for whatever cannot sink further.
fn push_filter(input: Plan, conjuncts: Vec<BoundExpr>) -> Plan {
    if conjuncts.is_empty() {
        return input;
    }
    match input {
        Plan::Filter {
            input: inner,
            predicate,
        } => {
            // Merge with the existing filter and retry on its input.
            let mut all = split_bound_conjuncts(predicate);
            all.extend(conjuncts);
            push_filter(*inner, all)
        }
        Plan::Rename {
            input: inner,
            schema,
        } => {
            // Renames keep column positions; conjuncts pass through intact.
            let pushed = push_filter(*inner, conjuncts);
            Plan::Rename {
                input: Box::new(pushed),
                schema,
            }
        }
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let left_width = left.schema().len();
            let (sink_left, sink_right, keep) = split_by_side(conjuncts, left_width, kind);
            let left = push_filter(*left, sink_left);
            let right = push_filter(*right, sink_right);
            let joined = Plan::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                left_keys,
                right_keys,
                residual,
                schema,
            };
            wrap_filter(joined, keep)
        }
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left_width = left.schema().len();
            let (sink_left, sink_right, keep) = split_by_side(conjuncts, left_width, kind);
            let left = push_filter(*left, sink_left);
            let right = push_filter(*right, sink_right);
            let joined = Plan::NestedLoopJoin {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                schema,
            };
            wrap_filter(joined, keep)
        }
        other => wrap_filter(other, conjuncts),
    }
}

/// Partition conjuncts into (push-left, push-right, keep-above) for a join
/// of the given type. Right-side conjuncts are re-indexed.
fn split_by_side(
    conjuncts: Vec<BoundExpr>,
    left_width: usize,
    kind: JoinType,
) -> (Vec<BoundExpr>, Vec<BoundExpr>, Vec<BoundExpr>) {
    let mut left = Vec::new();
    let right = Vec::new();
    let mut keep = Vec::new();
    let _ = kind;
    for conjunct in conjuncts {
        let mut refs = Vec::new();
        collect_row_refs(&conjunct, 0, &mut refs);
        let all_left = refs.iter().all(|i| *i < left_width);
        // Only left-side conjuncts sink. For any join type this is safe: a
        // conjunct over left columns sees identical values above and below
        // the join. Right-side pushes would also be *correct* for inner
        // joins, but without cardinality estimates they are a bad bet: in
        // ConQuer's Filter CTEs the right side is a base table and the
        // right-side conjunct is the low-selectivity NSC disjunction, which
        // is far cheaper to evaluate on the join's (small) output. The
        // conscand guard of Section 5 — the case this pass exists for —
        // always lands on the left (candidates) side.
        if all_left {
            left.push(conjunct);
        } else {
            keep.push(conjunct);
        }
    }
    // Semi/anti join outputs only left columns; the planner never produces
    // right-referencing filters above them, so `keep` handles any residue.
    (left, right, keep)
}

fn wrap_filter(plan: Plan, conjuncts: Vec<BoundExpr>) -> Plan {
    match conjoin_bound(conjuncts) {
        None => plan,
        Some(predicate) => Plan::Filter {
            input: Box::new(plan),
            predicate,
        },
    }
}

/// Split a bound predicate into its top-level AND conjuncts.
fn split_bound_conjuncts(e: BoundExpr) -> Vec<BoundExpr> {
    match e {
        BoundExpr::Binary {
            op: conquer_sql::BinaryOp::And,
            left,
            right,
        } => {
            let mut out = split_bound_conjuncts(*left);
            out.extend(split_bound_conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

fn conjoin_bound(conjuncts: Vec<BoundExpr>) -> Option<BoundExpr> {
    conjuncts.into_iter().reduce(|a, b| BoundExpr::Binary {
        op: conquer_sql::BinaryOp::And,
        left: Box::new(a),
        right: Box::new(b),
    })
}

/// Collect the row-level column indices an expression references: columns at
/// `depth == level`, including references from inside nested subquery plans
/// (where the row sits one scope deeper per nesting level).
fn collect_row_refs(e: &BoundExpr, level: usize, out: &mut Vec<usize>) {
    use BoundExpr::*;
    match e {
        Column { depth, index } => {
            if *depth == level {
                out.push(*index);
            }
        }
        Literal(_) | AggRef { .. } => {}
        Binary { left, right, .. } => {
            collect_row_refs(left, level, out);
            collect_row_refs(right, level, out);
        }
        Not(x) | Neg(x) => collect_row_refs(x, level, out),
        IsNull { expr, .. } => collect_row_refs(expr, level, out),
        InList { expr, list, .. } => {
            collect_row_refs(expr, level, out);
            for x in list {
                collect_row_refs(x, level, out);
            }
        }
        Like { expr, pattern, .. } => {
            collect_row_refs(expr, level, out);
            collect_row_refs(pattern, level, out);
        }
        Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_row_refs(c, level, out);
                collect_row_refs(v, level, out);
            }
            if let Some(x) = else_expr {
                collect_row_refs(x, level, out);
            }
        }
        Func { args, .. } => {
            for x in args {
                collect_row_refs(x, level, out);
            }
        }
        Subquery { plan, kind } => {
            collect_plan_row_refs(plan, level + 1, out);
            if let SubqueryKind::In { expr, .. } = kind {
                collect_row_refs(expr, level, out);
            }
        }
    }
}

fn collect_plan_row_refs(plan: &Plan, level: usize, out: &mut Vec<usize>) {
    plan.visit_exprs(&mut |e| collect_row_refs(e, level, out));
}

/// Subtract `delta` from every row-level (depth == level) column index —
/// needed if a conjunct ever moves to the right side of a join (currently
/// unused by the pass itself: right-side pushes are disabled pending
/// cardinality estimation; see `split_by_side`).
#[allow(dead_code)]
fn remap_row_refs(e: &mut BoundExpr, level: usize, delta: usize) {
    use BoundExpr::*;
    match e {
        Column { depth, index } => {
            if *depth == level {
                *index -= delta;
            }
        }
        Literal(_) | AggRef { .. } => {}
        Binary { left, right, .. } => {
            remap_row_refs(left, level, delta);
            remap_row_refs(right, level, delta);
        }
        Not(x) | Neg(x) => remap_row_refs(x, level, delta),
        IsNull { expr, .. } => remap_row_refs(expr, level, delta),
        InList { expr, list, .. } => {
            remap_row_refs(expr, level, delta);
            for x in list {
                remap_row_refs(x, level, delta);
            }
        }
        Like { expr, pattern, .. } => {
            remap_row_refs(expr, level, delta);
            remap_row_refs(pattern, level, delta);
        }
        Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                remap_row_refs(c, level, delta);
                remap_row_refs(v, level, delta);
            }
            if let Some(x) = else_expr {
                remap_row_refs(x, level, delta);
            }
        }
        Func { args, .. } => {
            for x in args {
                remap_row_refs(x, level, delta);
            }
        }
        Subquery { plan, kind } => {
            plan.visit_exprs_mut(&mut |ex| remap_row_refs(ex, level + 1, delta));
            if let SubqueryKind::In { expr, .. } = kind {
                remap_row_refs(expr, level, delta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::column(i)
    }

    fn gt(l: BoundExpr, v: i64) -> BoundExpr {
        BoundExpr::Binary {
            op: conquer_sql::BinaryOp::Gt,
            left: Box::new(l),
            right: Box::new(BoundExpr::Literal(Value::Int(v))),
        }
    }

    fn and(l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op: conquer_sql::BinaryOp::And,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn splits_and_rejoins_conjuncts() {
        let e = and(gt(col(0), 1), and(gt(col(1), 2), gt(col(2), 3)));
        let parts = split_bound_conjuncts(e);
        assert_eq!(parts.len(), 3);
        let back = conjoin_bound(parts).unwrap();
        assert_eq!(split_bound_conjuncts(back).len(), 3);
    }

    #[test]
    fn side_split_classifies_by_column_range() {
        let conjuncts = vec![gt(col(0), 1), gt(col(5), 2), gt(and(col(0), col(5)), 0)];
        let (l, r, keep) = split_by_side(conjuncts, 3, JoinType::Inner);
        assert_eq!(l.len(), 1);
        // Right-side pushes are disabled (no cardinality estimation).
        assert!(r.is_empty());
        assert_eq!(keep.len(), 2);
    }

    #[test]
    fn left_outer_join_keeps_right_conjuncts_above() {
        let conjuncts = vec![gt(col(0), 1), gt(col(5), 2)];
        let (l, r, keep) = split_by_side(conjuncts, 3, JoinType::LeftOuter);
        assert_eq!(l.len(), 1);
        assert!(r.is_empty());
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn remap_subtracts_at_level() {
        let mut e = gt(col(5), 2);
        remap_row_refs(&mut e, 0, 3);
        let mut refs = Vec::new();
        collect_row_refs(&e, 0, &mut refs);
        assert_eq!(refs, vec![2]);
    }
}
