//! Post-planning optimizations: filter pushdown through joins and renames,
//! plus cost-based build-side selection.
//!
//! ConQuer's Section 5 relies on the host optimizer evaluating the
//! `conscand > 0` guard *before* the Filter's joins ("it is up to the query
//! optimizer to perform this selection before the joins; the results ...
//! show that it consistently chooses the appropriate strategy"). This pass
//! plays that role: conjuncts of a `Filter` that reference only one side of
//! a join move below it, eventually fusing with the base-table scan.
//!
//! With a cost [`Estimator`] (the default; see [`crate::cost`]) the pass
//! additionally:
//!
//! * pushes *right-side* conjuncts below inner joins when their estimated
//!   selectivity is at most [`RIGHT_PUSH_MAX_SEL`] — re-indexing them with
//!   `remap_row_refs`. Unselective right-side predicates (ConQuer's NSC
//!   disjunctions) stay above the join, where they run over far fewer rows;
//! * swaps the sides of inner hash joins *with residuals* so the estimated
//!   smaller input becomes the hash-build side, restoring the original
//!   column order with a projection. (Residual-free inner joins are swapped
//!   at runtime on actual sizes, which is strictly better information, so
//!   the pass leaves them alone.)
//!
//! Without an estimator (`ExecOptions::use_stats = false`) the pass reduces
//! to the original left-side-only pushdown.

use crate::cost::Estimator;
use crate::expr::{BoundExpr, SubqueryKind};
use crate::index::{Index, IndexAccess};
use crate::plan::{JoinType, Plan};
use crate::value::Value;

/// Push a conjunct below the right side of an inner join only when its
/// estimated selectivity is at most this: filtering predicates go down,
/// pass-through predicates stay above the (smaller) join output.
pub const RIGHT_PUSH_MAX_SEL: f64 = 0.75;

/// Optimize a plan tree without statistics: left-side filter pushdown only.
pub fn optimize(plan: Plan) -> Plan {
    optimize_with(plan, None)
}

/// Optimize a plan tree: filter pushdown (both sides when an estimator
/// deems it profitable), then cost-based build-side selection.
pub fn optimize_with(plan: Plan, est: Option<&Estimator<'_>>) -> Plan {
    let pushed = pushdown(plan, est);
    match est {
        Some(est) => select_access_paths(orient_build_sides(pushed, est), est),
        None => pushed,
    }
}

/// Filter-pushdown walk. Currently: pushes filter conjuncts through
/// `Rename`, `Filter`, inner `HashJoin`/`NestedLoopJoin` (both sides),
/// left-outer joins (left side only), and semi/anti joins (left side).
fn pushdown(plan: Plan, est: Option<&Estimator<'_>>) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = pushdown(*input, est);
            let conjuncts = split_bound_conjuncts(predicate);
            push_filter(input, conjuncts, est)
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(pushdown(*input, est)),
            exprs,
            schema,
        },
        Plan::Rename { input, schema } => Plan::Rename {
            input: Box::new(pushdown(*input, est)),
            schema,
        },
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            build_index,
            schema,
        } => Plan::HashJoin {
            left: Box::new(pushdown(*left, est)),
            right: Box::new(pushdown(*right, est)),
            kind,
            left_keys,
            right_keys,
            residual,
            build_index,
            schema,
        },
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => Plan::NestedLoopJoin {
            left: Box::new(pushdown(*left, est)),
            right: Box::new(pushdown(*right, est)),
            kind,
            on,
            schema,
        },
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => Plan::Aggregate {
            input: Box::new(pushdown(*input, est)),
            group_exprs,
            aggs,
            schema,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(pushdown(*input, est)),
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(pushdown(*left, est)),
            right: Box::new(pushdown(*right, est)),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(pushdown(*input, est)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(pushdown(*input, est)),
            n,
        },
        leaf @ (Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit) => leaf,
    }
}

/// Push a set of conjuncts as deep as possible above `input`, rebuilding a
/// `Filter` for whatever cannot sink further.
fn push_filter(input: Plan, conjuncts: Vec<BoundExpr>, est: Option<&Estimator<'_>>) -> Plan {
    if conjuncts.is_empty() {
        return input;
    }
    match input {
        Plan::Filter {
            input: inner,
            predicate,
        } => {
            // Merge with the existing filter and retry on its input.
            let mut all = split_bound_conjuncts(predicate);
            all.extend(conjuncts);
            push_filter(*inner, all, est)
        }
        Plan::Rename {
            input: inner,
            schema,
        } => {
            // Renames keep column positions; conjuncts pass through intact.
            let pushed = push_filter(*inner, conjuncts, est);
            Plan::Rename {
                input: Box::new(pushed),
                schema,
            }
        }
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            build_index,
            schema,
        } => {
            let left_width = left.schema().len();
            let (sink_left, sink_right, keep) =
                split_by_side(conjuncts, left_width, kind, est, &right);
            let left = push_filter(*left, sink_left, est);
            let right = push_filter(*right, sink_right, est);
            let joined = Plan::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                left_keys,
                right_keys,
                residual,
                build_index,
                schema,
            };
            wrap_filter(joined, keep)
        }
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left_width = left.schema().len();
            let (sink_left, sink_right, keep) =
                split_by_side(conjuncts, left_width, kind, est, &right);
            let left = push_filter(*left, sink_left, est);
            let right = push_filter(*right, sink_right, est);
            let joined = Plan::NestedLoopJoin {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                schema,
            };
            wrap_filter(joined, keep)
        }
        other => wrap_filter(other, conjuncts),
    }
}

/// Partition conjuncts into (push-left, push-right, keep-above) for a join
/// of the given type. Right-side conjuncts are re-indexed to the right
/// child's columns with [`remap_row_refs`].
fn split_by_side(
    conjuncts: Vec<BoundExpr>,
    left_width: usize,
    kind: JoinType,
    est: Option<&Estimator<'_>>,
    right_child: &Plan,
) -> (Vec<BoundExpr>, Vec<BoundExpr>, Vec<BoundExpr>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut keep = Vec::new();
    // Lazily derived right-child stats, shared across conjuncts.
    let mut right_derived = None;
    for conjunct in conjuncts {
        let mut refs = Vec::new();
        collect_row_refs(&conjunct, 0, &mut refs);
        // Left-side conjuncts sink for any join type: a conjunct over left
        // columns sees identical values above and below the join, and
        // semi/anti/left-outer joins pass every left row through unchanged
        // or extended.
        if refs.iter().all(|i| *i < left_width) {
            left.push(conjunct);
            continue;
        }
        // Right-side conjuncts may sink below *inner* joins only (an outer
        // join would null-extend rows the pushed filter removed; semi/anti
        // outputs have no right columns, so the case cannot arise). Pushing
        // is correct whenever it applies, but only *profitable* when the
        // predicate actually filters: in ConQuer's Filter CTEs the right
        // side is a base table and the right-side conjunct is the
        // low-selectivity NSC disjunction, far cheaper to evaluate on the
        // join's (small) output. The estimator arbitrates: no estimator, no
        // right pushes.
        let all_right = refs.iter().all(|i| *i >= left_width);
        if all_right && kind == JoinType::Inner {
            if let Some(est) = est {
                let mut remapped = conjunct.clone();
                remap_row_refs(&mut remapped, 0, left_width);
                let derived = right_derived.get_or_insert_with(|| est.derive(right_child));
                if est.selectivity(&remapped, derived) <= RIGHT_PUSH_MAX_SEL {
                    right.push(remapped);
                    continue;
                }
            }
        }
        keep.push(conjunct);
    }
    (left, right, keep)
}

/// Build-side selection: for every inner hash join *with a residual* (the
/// runtime swaps residual-free inner joins itself, on actual sizes), make
/// the estimated-smaller side the build (right) input. The swap reverses
/// the output column order, so the join is wrapped in a projection
/// restoring the original layout; row order changes, which the engine
/// already permits for inner joins (the runtime swap does the same).
fn orient_build_sides(plan: Plan, est: &Estimator<'_>) -> Plan {
    // Recurse first so child estimates reflect final child shapes.
    let plan = match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(orient_build_sides(*input, est)),
            predicate,
        },
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(orient_build_sides(*input, est)),
            exprs,
            schema,
        },
        Plan::Rename { input, schema } => Plan::Rename {
            input: Box::new(orient_build_sides(*input, est)),
            schema,
        },
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            build_index,
            schema,
        } => Plan::HashJoin {
            left: Box::new(orient_build_sides(*left, est)),
            right: Box::new(orient_build_sides(*right, est)),
            kind,
            left_keys,
            right_keys,
            residual,
            build_index,
            schema,
        },
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => Plan::NestedLoopJoin {
            left: Box::new(orient_build_sides(*left, est)),
            right: Box::new(orient_build_sides(*right, est)),
            kind,
            on,
            schema,
        },
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => Plan::Aggregate {
            input: Box::new(orient_build_sides(*input, est)),
            group_exprs,
            aggs,
            schema,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(orient_build_sides(*input, est)),
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(orient_build_sides(*left, est)),
            right: Box::new(orient_build_sides(*right, est)),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(orient_build_sides(*input, est)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(orient_build_sides(*input, est)),
            n,
        },
        leaf @ (Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit) => leaf,
    };
    maybe_swap_build(plan, est)
}

/// If `plan` is an inner hash join with a residual whose left side is
/// estimated smaller than its right (build) side, swap the sides and wrap
/// a projection restoring the original column order.
fn maybe_swap_build(plan: Plan, est: &Estimator<'_>) -> Plan {
    let Plan::HashJoin {
        left,
        right,
        kind: JoinType::Inner,
        left_keys,
        right_keys,
        residual: Some(mut residual),
        build_index,
        schema,
    } = plan
    else {
        return plan;
    };
    let l_rows = est.est_rows(&left);
    let r_rows = est.est_rows(&right);
    if l_rows >= r_rows {
        // Build side (right) already the smaller estimate: keep as-is.
        return Plan::HashJoin {
            left,
            right,
            kind: JoinType::Inner,
            left_keys,
            right_keys,
            residual: Some(residual),
            build_index,
            schema,
        };
    }
    let w_l = left.schema().len();
    let w_r = right.schema().len();
    // The residual is bound over [L, R]; the swapped join concatenates
    // [R, L].
    map_row_refs(&mut residual, 0, &mut |i| {
        if i < w_l {
            i + w_r
        } else {
            i - w_l
        }
    });
    let swapped_schema = right.schema().join(left.schema());
    // Projection restoring the original [L, R] column order.
    let exprs: Vec<BoundExpr> = (0..w_l)
        .map(|i| BoundExpr::column(w_r + i))
        .chain((0..w_r).map(BoundExpr::column))
        .collect();
    Plan::Project {
        input: Box::new(Plan::HashJoin {
            left: right,
            right: left,
            kind: JoinType::Inner,
            left_keys: right_keys,
            right_keys: left_keys,
            residual: Some(residual),
            // Sides flipped: a build index for the old right no longer
            // describes the build input. (None in practice — the attach
            // pass runs after build-side orientation.)
            build_index: None,
            schema: swapped_schema,
        }),
        exprs,
        schema,
    }
}

/// Access-path selection over the final plan shape: rewrite
/// `Filter`-over-`Scan` into an `IndexScan` (plus a residual `Filter` for
/// conjuncts the index cannot answer) when a secondary index covers the
/// filter's key-equality or range conjuncts *and* the cost model prices
/// the probe below the sequential scan, and serve hash-join build sides
/// from a prebuilt index whenever the build keys are exactly the index's
/// key columns. Only runs with an estimator (`use_stats`), and only sees
/// indexes the estimator carries (`use_indexes`) — without either, plans
/// are untouched.
fn select_access_paths(plan: Plan, est: &Estimator<'_>) -> Plan {
    let plan = match plan {
        Plan::Filter { input, predicate } => {
            let input = select_access_paths(*input, est);
            if let Plan::Scan { cols, schema } = &input {
                if let Some(index) = est.index_for(cols) {
                    if let Some(rewritten) = try_index_scan(cols, schema, index, &predicate, est) {
                        return rewritten;
                    }
                }
            }
            Plan::Filter {
                input: Box::new(input),
                predicate,
            }
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(select_access_paths(*input, est)),
            exprs,
            schema,
        },
        Plan::Rename { input, schema } => Plan::Rename {
            input: Box::new(select_access_paths(*input, est)),
            schema,
        },
        Plan::HashJoin {
            left,
            right,
            kind,
            mut left_keys,
            mut right_keys,
            residual,
            mut build_index,
            schema,
        } => {
            let left = Box::new(select_access_paths(*left, est));
            let right = Box::new(select_access_paths(*right, est));
            if build_index.is_none() {
                if let Plan::Scan { cols, .. } = &*right {
                    if let Some(index) = est.index_for(cols) {
                        if let Some(perm) = key_permutation(index, &right_keys) {
                            // Reorder both key vectors into the index's
                            // column order so probe keys hash exactly the
                            // keys the postings were built from.
                            left_keys = perm.iter().map(|&j| left_keys[j].clone()).collect();
                            right_keys = perm.iter().map(|&j| right_keys[j].clone()).collect();
                            build_index = Some(std::sync::Arc::clone(index));
                        }
                    }
                }
            }
            // ConQuer's rewriting shape: an *inner* join whose build side
            // is a filtered base table (the Filter rewriting joins the
            // candidates back against `σ(R)`). Hoisting the filter into
            // the join residual is sound for inner joins — every emitted
            // pair must satisfy it either way — and frees the prebuilt
            // key index to serve the build. Priced against building from
            // the filtered scan, so a very selective build filter keeps
            // the sequential build.
            if build_index.is_none() && matches!(kind, JoinType::Inner) {
                if let Plan::Filter { input, predicate } = &*right {
                    if let Plan::Scan {
                        cols,
                        schema: scan_schema,
                    } = &**input
                    {
                        if let Some(index) = est.index_for(cols) {
                            if let Some(perm) = key_permutation(index, &right_keys) {
                                let mut hoisted = predicate.clone();
                                let w_l = left.schema().len();
                                map_row_refs(&mut hoisted, 0, &mut |i| i + w_l);
                                let mut conjuncts = vec![hoisted];
                                if let Some(r) = residual.clone() {
                                    conjuncts.extend(split_bound_conjuncts(r));
                                }
                                let candidate = Plan::HashJoin {
                                    left: left.clone(),
                                    right: Box::new(Plan::Scan {
                                        cols: std::sync::Arc::clone(cols),
                                        schema: scan_schema.clone(),
                                    }),
                                    kind,
                                    left_keys: perm.iter().map(|&j| left_keys[j].clone()).collect(),
                                    right_keys: perm
                                        .iter()
                                        .map(|&j| right_keys[j].clone())
                                        .collect(),
                                    residual: conjoin_bound(conjuncts),
                                    build_index: Some(std::sync::Arc::clone(index)),
                                    schema: schema.clone(),
                                };
                                let original = Plan::HashJoin {
                                    left: left.clone(),
                                    right: right.clone(),
                                    kind,
                                    left_keys: left_keys.clone(),
                                    right_keys: right_keys.clone(),
                                    residual: residual.clone(),
                                    build_index: None,
                                    schema: schema.clone(),
                                };
                                if est.cost(&candidate) < est.cost(&original) {
                                    return candidate;
                                }
                            }
                        }
                    }
                }
            }
            Plan::HashJoin {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                residual,
                build_index,
                schema,
            }
        }
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => Plan::NestedLoopJoin {
            left: Box::new(select_access_paths(*left, est)),
            right: Box::new(select_access_paths(*right, est)),
            kind,
            on,
            schema,
        },
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => Plan::Aggregate {
            input: Box::new(select_access_paths(*input, est)),
            group_exprs,
            aggs,
            schema,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(select_access_paths(*input, est)),
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(select_access_paths(*left, est)),
            right: Box::new(select_access_paths(*right, est)),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(select_access_paths(*input, est)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(select_access_paths(*input, est)),
            n,
        },
        leaf @ (Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::Unit) => leaf,
    };
    plan
}

/// Attempt to serve a filtered scan through `index`, pricing the candidate
/// against the sequential plan. Returns the rewritten subtree only when
/// the index answers part of the predicate *and* costs less.
fn try_index_scan(
    cols: &std::sync::Arc<crate::col::ColBatch>,
    schema: &crate::schema::Schema,
    index: &std::sync::Arc<Index>,
    predicate: &BoundExpr,
    est: &Estimator<'_>,
) -> Option<Plan> {
    let conjuncts = split_bound_conjuncts(predicate.clone());
    let (access, residual) = index_access_for(index, schema, conjuncts)?;
    let candidate = wrap_filter(
        Plan::IndexScan {
            cols: std::sync::Arc::clone(cols),
            schema: schema.clone(),
            index: std::sync::Arc::clone(index),
            access,
        },
        residual,
    );
    let original = Plan::Filter {
        input: Box::new(Plan::Scan {
            cols: std::sync::Arc::clone(cols),
            schema: schema.clone(),
        }),
        predicate: predicate.clone(),
    };
    (est.cost(&candidate) < est.cost(&original)).then_some(candidate)
}

/// Carve an [`IndexAccess`] out of a filter's conjuncts: a full equality
/// cover of the index's key columns (one typed literal per column), or —
/// for single-column ordered indexes — the first lower and upper range
/// bounds. Everything unconsumed comes back as the residual.
fn index_access_for(
    index: &Index,
    schema: &crate::schema::Schema,
    conjuncts: Vec<BoundExpr>,
) -> Option<(IndexAccess, Vec<BoundExpr>)> {
    // Full equality cover first: the cheapest probe an index offers.
    let mut used = vec![false; conjuncts.len()];
    let mut values = Vec::new();
    for &c in index.cols() {
        let hit = conjuncts
            .iter()
            .enumerate()
            .find(|(j, conj)| !used[*j] && eq_on_col(conj, schema, c).is_some());
        match hit {
            Some((j, conj)) => {
                used[j] = true;
                values.push(eq_on_col(conj, schema, c)?);
            }
            None => {
                values.clear();
                break;
            }
        }
    }
    if values.len() == index.cols().len() {
        let residual = conjuncts
            .into_iter()
            .zip(used)
            .filter_map(|(conj, u)| (!u).then_some(conj))
            .collect();
        return Some((IndexAccess::Eq(values), residual));
    }
    // Range probe over the single ordered key column: consume the first
    // lower and first upper bound; further bounds stay in the residual
    // (re-applied exactly, so tightness is a cost question, not a
    // correctness one).
    if index.supports_range() {
        let c = index.cols()[0];
        let (mut lo, mut hi) = (None, None);
        let mut residual = Vec::new();
        for conj in conjuncts {
            match range_on_col(&conj, schema, c) {
                Some((true, v, inclusive)) if lo.is_none() => lo = Some((v, inclusive)),
                Some((false, v, inclusive)) if hi.is_none() => hi = Some((v, inclusive)),
                _ => residual.push(conj),
            }
        }
        if lo.is_some() || hi.is_some() {
            return Some((IndexAccess::Range { lo, hi }, residual));
        }
    }
    None
}

/// `col = literal` (either side) on column `c`, with the literal's type
/// compatible with the column's — the shapes where an index equality
/// probe provably agrees with SQL equality.
fn eq_on_col(conj: &BoundExpr, schema: &crate::schema::Schema, c: usize) -> Option<Value> {
    let BoundExpr::Binary {
        op: conquer_sql::BinaryOp::Eq,
        left,
        right,
    } = conj
    else {
        return None;
    };
    let (i, v) = col_and_literal(left, right)?;
    (i == c && literal_type_ok(v, schema.columns.get(c)?.ty)).then(|| v.clone())
}

/// `col OP literal` / `literal OP col` comparison on column `c` with a
/// typed numeric-comparable literal. Returns `(is_lower_bound, literal,
/// inclusive)` from the column's point of view.
fn range_on_col(
    conj: &BoundExpr,
    schema: &crate::schema::Schema,
    c: usize,
) -> Option<(bool, Value, bool)> {
    use conquer_sql::BinaryOp::{Gt, GtEq, Lt, LtEq};
    let BoundExpr::Binary { op, left, right } = conj else {
        return None;
    };
    let (i, v, col_on_left) = match (&**left, &**right) {
        (BoundExpr::Column { depth: 0, index }, BoundExpr::Literal(v)) => (*index, v, true),
        (BoundExpr::Literal(v), BoundExpr::Column { depth: 0, index }) => (*index, v, false),
        _ => return None,
    };
    if i != c
        || !literal_type_ok(v, schema.columns.get(c)?.ty)
        || crate::stats::numeric_of(v).is_none()
    {
        return None;
    }
    let (is_lo, inclusive) = match (op, col_on_left) {
        (Gt, true) | (Lt, false) => (true, false),
        (GtEq, true) | (LtEq, false) => (true, true),
        (Lt, true) | (Gt, false) => (false, false),
        (LtEq, true) | (GtEq, false) => (false, true),
        _ => return None,
    };
    Some((is_lo, v.clone(), inclusive))
}

fn col_and_literal<'e>(left: &'e BoundExpr, right: &'e BoundExpr) -> Option<(usize, &'e Value)> {
    match (left, right) {
        (BoundExpr::Column { depth: 0, index }, BoundExpr::Literal(v))
        | (BoundExpr::Literal(v), BoundExpr::Column { depth: 0, index }) => Some((*index, v)),
        _ => None,
    }
}

/// Literal/column pairings where the index key normalization (integral
/// floats fold into ints) provably agrees with SQL equality and ordering.
/// NULL and NaN literals never qualify (`= NULL` matches nothing, and the
/// filter kernel would agree).
fn literal_type_ok(lit: &Value, ty: crate::schema::DataType) -> bool {
    use crate::schema::DataType;
    match (lit, ty) {
        (Value::Int(_), DataType::Integer | DataType::Float) => true,
        (Value::Float(f), DataType::Integer | DataType::Float) => f.is_finite(),
        (Value::Str(_), DataType::Text) => true,
        (Value::Bool(_), DataType::Boolean) => true,
        (Value::Date(_), DataType::Date) => true,
        _ => false,
    }
}

/// If every build key is a plain depth-0 column and the key set is
/// exactly a permutation of the index's key columns, return the
/// permutation `perm` with `keys[perm[p]]` covering `index.cols()[p]`.
fn key_permutation(index: &Index, right_keys: &[BoundExpr]) -> Option<Vec<usize>> {
    if right_keys.len() != index.cols().len() {
        return None;
    }
    let key_cols: Vec<usize> = right_keys
        .iter()
        .map(|k| match k {
            BoundExpr::Column { depth: 0, index } => Some(*index),
            _ => None,
        })
        .collect::<Option<_>>()?;
    let mut used = vec![false; key_cols.len()];
    let mut perm = Vec::with_capacity(key_cols.len());
    for &c in index.cols() {
        let j = key_cols
            .iter()
            .enumerate()
            .find(|(j, &kc)| !used[*j] && kc == c)?
            .0;
        used[j] = true;
        perm.push(j);
    }
    Some(perm)
}

fn wrap_filter(plan: Plan, conjuncts: Vec<BoundExpr>) -> Plan {
    match conjoin_bound(conjuncts) {
        None => plan,
        Some(predicate) => Plan::Filter {
            input: Box::new(plan),
            predicate,
        },
    }
}

/// Split a bound predicate into its top-level AND conjuncts.
fn split_bound_conjuncts(e: BoundExpr) -> Vec<BoundExpr> {
    match e {
        BoundExpr::Binary {
            op: conquer_sql::BinaryOp::And,
            left,
            right,
        } => {
            let mut out = split_bound_conjuncts(*left);
            out.extend(split_bound_conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

fn conjoin_bound(conjuncts: Vec<BoundExpr>) -> Option<BoundExpr> {
    conjuncts.into_iter().reduce(|a, b| BoundExpr::Binary {
        op: conquer_sql::BinaryOp::And,
        left: Box::new(a),
        right: Box::new(b),
    })
}

/// Collect the row-level column indices an expression references: columns at
/// `depth == level`, including references from inside nested subquery plans
/// (where the row sits one scope deeper per nesting level).
fn collect_row_refs(e: &BoundExpr, level: usize, out: &mut Vec<usize>) {
    use BoundExpr::*;
    match e {
        Column { depth, index } => {
            if *depth == level {
                out.push(*index);
            }
        }
        Literal(_) | AggRef { .. } => {}
        Binary { left, right, .. } => {
            collect_row_refs(left, level, out);
            collect_row_refs(right, level, out);
        }
        Not(x) | Neg(x) => collect_row_refs(x, level, out),
        IsNull { expr, .. } => collect_row_refs(expr, level, out),
        InList { expr, list, .. } => {
            collect_row_refs(expr, level, out);
            for x in list {
                collect_row_refs(x, level, out);
            }
        }
        Like { expr, pattern, .. } => {
            collect_row_refs(expr, level, out);
            collect_row_refs(pattern, level, out);
        }
        Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_row_refs(c, level, out);
                collect_row_refs(v, level, out);
            }
            if let Some(x) = else_expr {
                collect_row_refs(x, level, out);
            }
        }
        Func { args, .. } => {
            for x in args {
                collect_row_refs(x, level, out);
            }
        }
        Subquery { plan, kind } => {
            collect_plan_row_refs(plan, level + 1, out);
            if let SubqueryKind::In { expr, .. } = kind {
                collect_row_refs(expr, level, out);
            }
        }
    }
}

fn collect_plan_row_refs(plan: &Plan, level: usize, out: &mut Vec<usize>) {
    plan.visit_exprs(&mut |e| collect_row_refs(e, level, out));
}

/// Rewrite every row-level (depth == level) column index through `f`,
/// including references from inside nested subquery plans (where the row
/// sits one scope deeper per nesting level).
fn map_row_refs(e: &mut BoundExpr, level: usize, f: &mut dyn FnMut(usize) -> usize) {
    use BoundExpr::*;
    match e {
        Column { depth, index } => {
            if *depth == level {
                *index = f(*index);
            }
        }
        Literal(_) | AggRef { .. } => {}
        Binary { left, right, .. } => {
            map_row_refs(left, level, f);
            map_row_refs(right, level, f);
        }
        Not(x) | Neg(x) => map_row_refs(x, level, f),
        IsNull { expr, .. } => map_row_refs(expr, level, f),
        InList { expr, list, .. } => {
            map_row_refs(expr, level, f);
            for x in list {
                map_row_refs(x, level, f);
            }
        }
        Like { expr, pattern, .. } => {
            map_row_refs(expr, level, f);
            map_row_refs(pattern, level, f);
        }
        Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                map_row_refs(c, level, f);
                map_row_refs(v, level, f);
            }
            if let Some(x) = else_expr {
                map_row_refs(x, level, f);
            }
        }
        Func { args, .. } => {
            for x in args {
                map_row_refs(x, level, f);
            }
        }
        Subquery { plan, kind } => {
            plan.visit_exprs_mut(&mut |ex| map_row_refs(ex, level + 1, f));
            if let SubqueryKind::In { expr, .. } = kind {
                map_row_refs(expr, level, f);
            }
        }
    }
}

/// Subtract `delta` from every row-level (depth == level) column index —
/// the re-indexing a conjunct needs when it moves to the right side of a
/// join.
fn remap_row_refs(e: &mut BoundExpr, level: usize, delta: usize) {
    map_row_refs(e, level, &mut |i| i - delta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::column(i)
    }

    fn gt(l: BoundExpr, v: i64) -> BoundExpr {
        BoundExpr::Binary {
            op: conquer_sql::BinaryOp::Gt,
            left: Box::new(l),
            right: Box::new(BoundExpr::Literal(Value::Int(v))),
        }
    }

    fn and(l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op: conquer_sql::BinaryOp::And,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// A 6-wide dummy right child for side-splitting tests.
    fn right_child() -> Plan {
        use crate::col::ColBatch;
        use crate::schema::{Column, DataType, Schema};
        use std::sync::Arc;
        let schema = Schema::new(
            (0..6)
                .map(|i| Column::bare(&format!("c{i}"), DataType::Integer))
                .collect(),
        );
        let rows = (0..10)
            .map(|i| (0..6).map(|_| Value::Int(i)).collect())
            .collect();
        Plan::Scan {
            cols: Arc::new(ColBatch::from_rows(&schema, rows)),
            schema,
        }
    }

    #[test]
    fn splits_and_rejoins_conjuncts() {
        let e = and(gt(col(0), 1), and(gt(col(1), 2), gt(col(2), 3)));
        let parts = split_bound_conjuncts(e);
        assert_eq!(parts.len(), 3);
        let back = conjoin_bound(parts).unwrap();
        assert_eq!(split_bound_conjuncts(back).len(), 3);
    }

    #[test]
    fn side_split_classifies_by_column_range() {
        let conjuncts = vec![gt(col(0), 1), gt(col(5), 2), gt(and(col(0), col(5)), 0)];
        // Without an estimator, right-side pushes stay disabled.
        let (l, r, keep) = split_by_side(conjuncts, 3, JoinType::Inner, None, &right_child());
        assert_eq!(l.len(), 1);
        assert!(r.is_empty());
        assert_eq!(keep.len(), 2);
    }

    #[test]
    fn selective_right_conjunct_sinks_with_estimator() {
        let est = Estimator::standalone();
        // col(5) maps to right column 2: `c2 > 8` keeps ~1 of 10 rows.
        let conjuncts = vec![gt(col(5), 8), gt(and(col(0), col(5)), 0)];
        let (l, r, keep) = split_by_side(conjuncts, 3, JoinType::Inner, Some(&est), &right_child());
        assert!(l.is_empty());
        assert_eq!(r.len(), 1, "selective right conjunct must sink");
        assert_eq!(keep.len(), 1);
        // The pushed conjunct is re-indexed to the right child's columns.
        let mut refs = Vec::new();
        collect_row_refs(&r[0], 0, &mut refs);
        assert_eq!(refs, vec![2]);
    }

    #[test]
    fn unselective_right_conjunct_stays_above() {
        let est = Estimator::standalone();
        // `c2 > 0` keeps ~9 of 10 rows: pushing buys nothing.
        let conjuncts = vec![gt(col(5), 0)];
        let (l, r, keep) = split_by_side(conjuncts, 3, JoinType::Inner, Some(&est), &right_child());
        assert!(l.is_empty());
        assert!(r.is_empty());
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn left_outer_join_keeps_right_conjuncts_above() {
        let est = Estimator::standalone();
        let conjuncts = vec![gt(col(0), 1), gt(col(5), 8)];
        let (l, r, keep) = split_by_side(
            conjuncts,
            3,
            JoinType::LeftOuter,
            Some(&est),
            &right_child(),
        );
        assert_eq!(l.len(), 1);
        assert!(r.is_empty(), "outer joins must never sink right conjuncts");
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn remap_subtracts_at_level() {
        let mut e = gt(col(5), 2);
        remap_row_refs(&mut e, 0, 3);
        let mut refs = Vec::new();
        collect_row_refs(&e, 0, &mut refs);
        assert_eq!(refs, vec![2]);
    }

    /// `EXISTS (SELECT ... WHERE local = outer[index])`: the outer
    /// reference sits at depth 1 *inside* the subquery plan, which is
    /// depth 0 relative to the conjunct that owns it.
    fn correlated_exists(outer_index: usize) -> BoundExpr {
        use crate::col::ColBatch;
        use crate::schema::{Column, DataType, Schema};
        use std::sync::Arc;
        let schema = Schema::new(vec![Column::bare("inner0", DataType::Integer)]);
        let rows = (0..3).map(|i| vec![Value::Int(i)]).collect();
        let scan = Plan::Scan {
            cols: Arc::new(ColBatch::from_rows(&schema, rows)),
            schema,
        };
        let predicate = BoundExpr::Binary {
            op: conquer_sql::BinaryOp::Eq,
            left: Box::new(col(0)),
            right: Box::new(BoundExpr::Column {
                depth: 1,
                index: outer_index,
            }),
        };
        BoundExpr::Subquery {
            plan: Box::new(Plan::Filter {
                input: Box::new(scan),
                predicate,
            }),
            kind: SubqueryKind::Exists { negated: false },
        }
    }

    #[test]
    fn correlated_exists_conjunct_sinks_and_remaps_the_outer_ref() {
        let est = Estimator::standalone();
        // The EXISTS correlates on combined column 5 — a right-side column
        // for left_width 3 — so the whole conjunct may sink, but only if
        // the depth-1 reference inside the subquery plan is remapped too.
        let conjuncts = vec![correlated_exists(5)];
        let (l, r, keep) = split_by_side(conjuncts, 3, JoinType::Inner, Some(&est), &right_child());
        assert!(l.is_empty());
        assert!(keep.is_empty());
        assert_eq!(r.len(), 1, "correlated EXISTS on the right side must sink");
        let mut refs = Vec::new();
        collect_row_refs(&r[0], 0, &mut refs);
        assert_eq!(refs, vec![2], "outer ref inside the subquery must remap");
    }

    #[test]
    fn exists_correlated_on_both_sides_stays_above_the_join() {
        let est = Estimator::standalone();
        // A single conjunct touching columns 1 (left) and 5 (right,
        // through the EXISTS): not pushable to either side.
        let mixed = vec![BoundExpr::Binary {
            op: conquer_sql::BinaryOp::Or,
            left: Box::new(correlated_exists(5)),
            right: Box::new(gt(col(1), 0)),
        }];
        let (l, r, keep) = split_by_side(mixed, 3, JoinType::Inner, Some(&est), &right_child());
        assert!(l.is_empty());
        assert!(r.is_empty());
        assert_eq!(keep.len(), 1, "mixed-side conjunct must stay above");
    }

    fn has_subquery(e: &BoundExpr) -> bool {
        match e {
            BoundExpr::Subquery { .. } => true,
            BoundExpr::Binary { left, right, .. } => has_subquery(left) || has_subquery(right),
            BoundExpr::Not(x) | BoundExpr::Neg(x) => has_subquery(x),
            _ => false,
        }
    }

    /// Does any Filter in the Project/Filter chain *above* the first join
    /// still hold a subquery predicate?
    fn subquery_filter_above_join(plan: &Plan) -> bool {
        match plan {
            Plan::Project { input, .. } => subquery_filter_above_join(input),
            Plan::Filter { input, predicate } => {
                has_subquery(predicate) || subquery_filter_above_join(input)
            }
            _ => false,
        }
    }

    /// End-to-end regression for the audit in ISSUE 5: a pushed right-side
    /// conjunct containing an `EXISTS` that references the outer row. The
    /// push happens (plan shape) and the depth-1 remap is correct (results
    /// match the unoptimized plan exactly).
    #[test]
    fn pushed_exists_conjunct_is_correct_end_to_end() {
        let db = crate::Database::new();
        db.run_script(
            "create table big (lk integer, lv integer);
             insert into big values (1, 10), (2, 20), (3, 30), (4, 40),
                                    (5, 50), (6, 60), (7, 70), (8, 80);
             create table small (rk integer, ry integer);
             insert into small values (1, 100), (2, 200), (3, 999);
             create table lookup (cx integer);
             insert into lookup values (100), (999);",
        )
        .unwrap();
        let sql = "select big.lk, small.ry from big, small \
                   where big.lk = small.rk \
                   and exists (select 1 from lookup where lookup.cx = small.ry)";
        let query = conquer_sql::parse_query(sql).unwrap();

        // Keep the EXISTS a per-row subquery (no semi-join decorrelation)
        // so the optimizer sees a pushable subquery conjunct.
        let mut stats_on = crate::ExecOptions::default().with_threads(1);
        stats_on.decorrelate_exists = false;
        let mut stats_off = stats_on.clone();
        stats_off.use_stats = false;
        let mut unoptimized = stats_off.clone();
        unoptimized.pushdown_filters = false;

        // Plan shape: with statistics, `small` is the build (right) side
        // (3 rows vs 8) and the EXISTS sinks below the join, so no
        // subquery filter remains above it. Without statistics the seed
        // behaviour keeps right-side conjuncts above the join.
        let optimized = db.plan(&query, &stats_on).unwrap();
        assert!(
            !subquery_filter_above_join(&optimized),
            "EXISTS must sink below the join with statistics: {optimized:?}"
        );
        let seed = db.plan(&query, &stats_off).unwrap();
        assert!(
            subquery_filter_above_join(&seed),
            "without statistics the EXISTS must stay above the join"
        );

        // Results: identical across all three plans. A wrong remap of the
        // depth-1 outer reference would read the wrong column (or fall out
        // of bounds) in the pushed plan.
        let expected = vec![
            vec![Value::Int(1), Value::Int(100)],
            vec![Value::Int(3), Value::Int(999)],
        ];
        for options in [&stats_on, &stats_off, &unoptimized] {
            let mut rows = db.query_with(sql, options).unwrap().rows;
            rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            assert_eq!(rows, expected, "use_stats={}", options.use_stats);
        }
    }
}
