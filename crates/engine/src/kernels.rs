//! Vectorized predicate kernels over [`ColBatch`].
//!
//! A bound predicate is *compiled* against a specific batch (column chunk
//! layouts are runtime properties — a demoted `Any` column compiles to
//! nothing) into a small tree of typed comparison nodes. Evaluation runs
//! tight per-column loops producing a three-state mask — true / null /
//! error bits packed in `u64` words — and the filter turns the true bits
//! into a selection vector of row indices.
//!
//! Semantics are bit-identical to the row-at-a-time path, including
//! errors: AND/OR reproduce SQL short-circuit reachability (a row whose
//! left conjunct is `false` never observes an error in the right
//! conjunct), and when an error bit survives to the top the original
//! expression is re-evaluated on that single pivoted row so the error
//! message is the row path's own. Compilation returns `None` for any
//! shape it can't reproduce exactly — subqueries, arithmetic, `Any`
//! columns, cross-type comparisons — and the executor falls back to rows.

use std::ops::Range;
use std::sync::Arc;

use conquer_sql::ast::BinaryOp;

use crate::col::{ColBatch, ColumnData};
use crate::error::{EngineError, Result};
use crate::expr::{like_match, BoundExpr, Env};
use crate::value::{cmp_i64_f64, Value};

/// Extract plain current-row column indices from expressions, or `None`
/// if any expression is not a depth-0 column reference. Used to route
/// projections, join keys, and aggregate arguments to columnar paths.
pub fn column_indices(exprs: &[BoundExpr]) -> Option<Vec<usize>> {
    exprs
        .iter()
        .map(|e| match e {
            BoundExpr::Column { depth: 0, index } => Some(*index),
            _ => None,
        })
        .collect()
}

/// A comparison operator normalized to `column op literal` form.
#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn from_ast(op: BinaryOp) -> Option<CmpOp> {
        Some(match op {
            BinaryOp::Eq => CmpOp::Eq,
            BinaryOp::NotEq => CmpOp::Ne,
            BinaryOp::Lt => CmpOp::Lt,
            BinaryOp::LtEq => CmpOp::Le,
            BinaryOp::Gt => CmpOp::Gt,
            BinaryOp::GtEq => CmpOp::Ge,
            _ => return None,
        })
    }

    /// Mirror the operator across the comparison (`lit op col` becomes
    /// `col flip(op) lit`).
    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    #[inline]
    fn passes(self, ord: std::cmp::Ordering) -> bool {
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => !ord.is_eq(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

/// Compiled predicate node. Every variant's evaluation is either
/// infallible or records failures as error bits with row-path parity.
#[derive(Debug)]
enum Node {
    /// A bare boolean column used as the predicate.
    BoolCol {
        col: usize,
    },
    IsNull {
        col: usize,
        negated: bool,
    },
    /// Int column vs int literal.
    CmpII {
        col: usize,
        op: CmpOp,
        lit: i64,
    },
    /// Int column vs (non-NaN) float literal.
    CmpIF {
        col: usize,
        op: CmpOp,
        lit: f64,
    },
    /// Float column vs (non-NaN) float literal; NaN cells error.
    CmpFF {
        col: usize,
        op: CmpOp,
        lit: f64,
    },
    /// Float column vs int literal; NaN cells error.
    CmpFI {
        col: usize,
        op: CmpOp,
        lit: i64,
    },
    CmpDD {
        col: usize,
        op: CmpOp,
        lit: i32,
    },
    CmpBB {
        col: usize,
        op: CmpOp,
        lit: bool,
    },
    /// Text column: per-dictionary-code verdicts precomputed at compile
    /// time (covers comparisons and LIKE). NULL cells stay null.
    TextPass {
        col: usize,
        pass: Vec<bool>,
    },
    /// `col [NOT] IN (int literals)`.
    InInt {
        col: usize,
        items: Vec<i64>,
        has_null: bool,
        negated: bool,
    },
    /// `col [NOT] IN (date literals)`.
    InDate {
        col: usize,
        items: Vec<i32>,
        has_null: bool,
        negated: bool,
    },
    /// `col [NOT] IN (text literals)` with per-code membership.
    InText {
        col: usize,
        pass: Vec<bool>,
        has_null: bool,
        negated: bool,
    },
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Not(Box<Node>),
}

/// Three-state result mask over a row range: `t` = predicate true,
/// `n` = unknown (NULL), `e` = evaluation error reached this row. Bits
/// not covered by `t | n | e` mean false. Bit `k` is row `start + k`.
struct TriMask {
    t: Vec<u64>,
    n: Vec<u64>,
    e: Vec<u64>,
    len: usize,
}

impl TriMask {
    fn new(len: usize) -> TriMask {
        let words = len.div_ceil(64);
        TriMask {
            t: vec![0; words],
            n: vec![0; words],
            e: vec![0; words],
            len,
        }
    }

    #[inline]
    fn set_t(&mut self, k: usize) {
        self.t[k / 64] |= 1 << (k % 64);
    }

    #[inline]
    fn set_n(&mut self, k: usize) {
        self.n[k / 64] |= 1 << (k % 64);
    }

    #[inline]
    fn set_e(&mut self, k: usize) {
        self.e[k / 64] |= 1 << (k % 64);
    }

    /// All-ones mask for word `w` restricted to valid bit positions.
    #[inline]
    fn word_mask(&self, w: usize) -> u64 {
        let last = self.len.div_ceil(64).saturating_sub(1);
        if w == last && !self.len.is_multiple_of(64) {
            (1u64 << (self.len % 64)) - 1
        } else {
            u64::MAX
        }
    }

    /// SQL three-valued AND with short-circuit error reachability: a row
    /// whose left side is `false` (or already failed) never reaches the
    /// right side.
    fn and(mut self, r: TriMask) -> TriMask {
        for w in 0..self.t.len() {
            let (tl, nl, el) = (self.t[w], self.n[w], self.e[w]);
            let (tr, nr, er) = (r.t[w], r.n[w], r.e[w]);
            let reach_r = (tl | nl) & !el;
            let e = el | (reach_r & er);
            self.e[w] = e;
            self.t[w] = tl & tr & !e;
            self.n[w] = ((nl & (nr | tr)) | (tl & nr)) & !e;
        }
        self
    }

    /// SQL three-valued OR; a row whose left side is `true` never
    /// reaches the right side.
    fn or(mut self, r: TriMask) -> TriMask {
        for w in 0..self.t.len() {
            let (tl, nl, el) = (self.t[w], self.n[w], self.e[w]);
            let (tr, nr, er) = (r.t[w], r.n[w], r.e[w]);
            let reach_r = !tl & !el & self.word_mask(w);
            let e = el | (reach_r & er);
            self.e[w] = e;
            let t = (tl | (reach_r & tr)) & !e;
            self.t[w] = t;
            self.n[w] = (nl | nr) & !t & !e & self.word_mask(w);
        }
        self
    }

    fn not(mut self) -> TriMask {
        for w in 0..self.t.len() {
            let mask = self.word_mask(w);
            let f = !self.t[w] & !self.n[w] & !self.e[w] & mask;
            self.t[w] = f;
        }
        self
    }

    #[inline]
    fn get(&self, words: &[u64], k: usize) -> bool {
        words[k / 64] & (1 << (k % 64)) != 0
    }
}

/// A predicate compiled for one specific batch. Holds the source
/// expression so error rows can be re-evaluated for exact messages.
pub struct Pred<'a> {
    root: Node,
    expr: &'a BoundExpr,
}

/// Compile `expr` against `batch`'s column layout. `None` means the
/// expression (or the data it touches) can't be vectorized faithfully.
pub fn compile_predicate<'a>(expr: &'a BoundExpr, batch: &ColBatch) -> Option<Pred<'a>> {
    compile_node(expr, batch).map(|root| Pred { root, expr })
}

fn col_index(e: &BoundExpr) -> Option<usize> {
    match e {
        BoundExpr::Column { depth: 0, index } => Some(*index),
        _ => None,
    }
}

fn literal(e: &BoundExpr) -> Option<&Value> {
    match e {
        BoundExpr::Literal(v) => Some(v),
        _ => None,
    }
}

fn compile_node(e: &BoundExpr, batch: &ColBatch) -> Option<Node> {
    match e {
        BoundExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => Some(Node::And(
            Box::new(compile_node(left, batch)?),
            Box::new(compile_node(right, batch)?),
        )),
        BoundExpr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => Some(Node::Or(
            Box::new(compile_node(left, batch)?),
            Box::new(compile_node(right, batch)?),
        )),
        BoundExpr::Not(inner) => Some(Node::Not(Box::new(compile_node(inner, batch)?))),
        BoundExpr::Binary { op, left, right } => {
            let op = CmpOp::from_ast(*op)?;
            // Normalize to `col op lit`.
            let (col, lit, op) = if let (Some(c), Some(l)) = (col_index(left), literal(right)) {
                (c, l, op)
            } else if let (Some(c), Some(l)) = (col_index(right), literal(left)) {
                (c, l, op.flip())
            } else {
                return None;
            };
            compile_cmp(col, op, lit, batch)
        }
        BoundExpr::IsNull { expr, negated } => {
            let col = col_index(expr)?;
            if matches!(batch.col(col).data, ColumnData::Any(_)) {
                return None;
            }
            Some(Node::IsNull {
                col,
                negated: *negated,
            })
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let col = col_index(expr)?;
            compile_in_list(col, list, *negated, batch)
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let col = col_index(expr)?;
            let Value::Str(pat) = literal(pattern)? else {
                return None;
            };
            let ColumnData::Text { dict, .. } = &batch.col(col).data else {
                return None;
            };
            let pass = dict
                .strings()
                .iter()
                .map(|s| like_match(s, pat) != *negated)
                .collect();
            Some(Node::TextPass { col, pass })
        }
        BoundExpr::Column { depth: 0, index } => {
            // A boolean column used directly as the predicate.
            if matches!(batch.col(*index).data, ColumnData::Bool(_)) {
                Some(Node::BoolCol { col: *index })
            } else {
                None
            }
        }
        _ => None,
    }
}

fn compile_cmp(col: usize, op: CmpOp, lit: &Value, batch: &ColBatch) -> Option<Node> {
    match (&batch.col(col).data, lit) {
        (ColumnData::Int(_), Value::Int(x)) => Some(Node::CmpII { col, op, lit: *x }),
        (ColumnData::Int(_), Value::Float(x)) if !x.is_nan() => {
            Some(Node::CmpIF { col, op, lit: *x })
        }
        (ColumnData::Float(_), Value::Float(x)) if !x.is_nan() => {
            Some(Node::CmpFF { col, op, lit: *x })
        }
        (ColumnData::Float(_), Value::Int(x)) => Some(Node::CmpFI { col, op, lit: *x }),
        (ColumnData::Date(_), Value::Date(x)) => Some(Node::CmpDD { col, op, lit: *x }),
        (ColumnData::Bool(_), Value::Bool(x)) => Some(Node::CmpBB { col, op, lit: *x }),
        (ColumnData::Text { dict, .. }, Value::Str(lit)) => {
            let pass = dict
                .strings()
                .iter()
                .map(|s| op.passes(s.as_ref().cmp(lit.as_ref())))
                .collect();
            Some(Node::TextPass { col, pass })
        }
        // NULL literals, NaN literals, and cross-type comparisons keep
        // their row-path semantics via fallback.
        _ => None,
    }
}

fn compile_in_list(
    col: usize,
    list: &[BoundExpr],
    negated: bool,
    batch: &ColBatch,
) -> Option<Node> {
    let mut has_null = false;
    let mut values: Vec<&Value> = Vec::with_capacity(list.len());
    for item in list {
        match literal(item)? {
            Value::Null => has_null = true,
            v => values.push(v),
        }
    }
    match &batch.col(col).data {
        ColumnData::Int(_) => {
            let items: Option<Vec<i64>> = values
                .iter()
                .map(|v| match v {
                    Value::Int(x) => Some(*x),
                    _ => None,
                })
                .collect();
            Some(Node::InInt {
                col,
                items: items?,
                has_null,
                negated,
            })
        }
        ColumnData::Date(_) => {
            let items: Option<Vec<i32>> = values
                .iter()
                .map(|v| match v {
                    Value::Date(x) => Some(*x),
                    _ => None,
                })
                .collect();
            Some(Node::InDate {
                col,
                items: items?,
                has_null,
                negated,
            })
        }
        ColumnData::Text { dict, .. } => {
            let strs: Option<Vec<&Arc<str>>> = values
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Some(s),
                    _ => None,
                })
                .collect();
            let strs = strs?;
            let pass = dict
                .strings()
                .iter()
                .map(|s| strs.iter().any(|item| item.as_ref() == s.as_ref()))
                .collect();
            Some(Node::InText {
                col,
                pass,
                has_null,
                negated,
            })
        }
        _ => None,
    }
}

/// Fold IN-list three-valued semantics (found / unknown / not found)
/// plus negation into (t, n) bits.
#[inline]
fn in_verdict(found: bool, has_null: bool, negated: bool) -> (bool, bool) {
    let raw = if found {
        Some(true)
    } else if has_null {
        None
    } else {
        Some(false)
    };
    let v = if negated { raw.map(|b| !b) } else { raw };
    (v == Some(true), v.is_none())
}

impl Node {
    /// Evaluate over the range. `None` means the batch's chunk layout
    /// did not match the compiled node (cannot happen for a batch the
    /// predicate was compiled against; kept panic-free regardless), and
    /// the caller falls back to row-at-a-time evaluation.
    fn eval(&self, batch: &ColBatch, range: Range<usize>) -> Option<TriMask> {
        let len = range.len();
        let mut m = TriMask::new(len);
        match self {
            Node::And(l, r) => {
                return Some(l.eval(batch, range.clone())?.and(r.eval(batch, range)?))
            }
            Node::Or(l, r) => return Some(l.eval(batch, range.clone())?.or(r.eval(batch, range)?)),
            Node::Not(x) => return Some(x.eval(batch, range)?.not()),
            Node::BoolCol { col } => {
                let chunk = batch.col(*col);
                if let ColumnData::Bool(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else if xs[i] {
                            m.set_t(k);
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::IsNull { col, negated } => {
                let chunk = batch.col(*col);
                for (k, i) in range.enumerate() {
                    if chunk.is_null(i) != *negated {
                        m.set_t(k);
                    }
                }
            }
            Node::CmpII { col, op, lit } => {
                let chunk = batch.col(*col);
                if let ColumnData::Int(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else if op.passes(xs[i].cmp(lit)) {
                            m.set_t(k);
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::CmpIF { col, op, lit } => {
                let chunk = batch.col(*col);
                if let ColumnData::Int(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else {
                            // lit is non-NaN, so this cannot fail.
                            match cmp_i64_f64(xs[i], *lit) {
                                Ok(ord) if op.passes(ord) => m.set_t(k),
                                Ok(_) => {}
                                Err(_) => m.set_e(k),
                            }
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::CmpFF { col, op, lit } => {
                let chunk = batch.col(*col);
                if let ColumnData::Float(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else {
                            match xs[i].partial_cmp(lit) {
                                Some(ord) if op.passes(ord) => m.set_t(k),
                                Some(_) => {}
                                None => m.set_e(k), // NaN cell
                            }
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::CmpFI { col, op, lit } => {
                let chunk = batch.col(*col);
                if let ColumnData::Float(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else {
                            match cmp_i64_f64(*lit, xs[i]) {
                                Ok(ord) if op.passes(ord.reverse()) => m.set_t(k),
                                Ok(_) => {}
                                Err(_) => m.set_e(k), // NaN cell
                            }
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::CmpDD { col, op, lit } => {
                let chunk = batch.col(*col);
                if let ColumnData::Date(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else if op.passes(xs[i].cmp(lit)) {
                            m.set_t(k);
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::CmpBB { col, op, lit } => {
                let chunk = batch.col(*col);
                if let ColumnData::Bool(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else if op.passes(xs[i].cmp(lit)) {
                            m.set_t(k);
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::TextPass { col, pass } => {
                let chunk = batch.col(*col);
                if let ColumnData::Text { codes, .. } = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else if pass[codes[i] as usize] {
                            m.set_t(k);
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::InInt {
                col,
                items,
                has_null,
                negated,
            } => {
                let chunk = batch.col(*col);
                if let ColumnData::Int(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else {
                            let found = items.contains(&xs[i]);
                            let (t, n) = in_verdict(found, *has_null, *negated);
                            if t {
                                m.set_t(k);
                            } else if n {
                                m.set_n(k);
                            }
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::InDate {
                col,
                items,
                has_null,
                negated,
            } => {
                let chunk = batch.col(*col);
                if let ColumnData::Date(xs) = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else {
                            let found = items.contains(&xs[i]);
                            let (t, n) = in_verdict(found, *has_null, *negated);
                            if t {
                                m.set_t(k);
                            } else if n {
                                m.set_n(k);
                            }
                        }
                    }
                } else {
                    return None;
                }
            }
            Node::InText {
                col,
                pass,
                has_null,
                negated,
            } => {
                let chunk = batch.col(*col);
                if let ColumnData::Text { codes, .. } = &chunk.data {
                    for (k, i) in range.enumerate() {
                        if chunk.is_null(i) {
                            m.set_n(k);
                        } else {
                            let found = pass[codes[i] as usize];
                            let (t, n) = in_verdict(found, *has_null, *negated);
                            if t {
                                m.set_t(k);
                            } else if n {
                                m.set_n(k);
                            }
                        }
                    }
                } else {
                    return None;
                }
            }
        }
        Some(m)
    }
}

impl<'a> Pred<'a> {
    /// Evaluate over `[range)` and append the passing row indices
    /// (absolute, ascending) to `out`. On the first row whose evaluation
    /// the row path would abort on, returns that row's exact error.
    pub fn select_into(
        &self,
        batch: &ColBatch,
        range: Range<usize>,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        let start = range.start;
        let Some(m) = self.root.eval(batch, range.clone()) else {
            // Layout mismatch (defensive): exact row-at-a-time fallback.
            for i in range {
                let row = batch.row_at(i);
                if self.expr.eval_predicate(&Env::root(&row))? == Some(true) {
                    out.push(i as u32);
                }
            }
            return Ok(());
        };
        for k in 0..m.len {
            if m.get(&m.e, k) {
                return Err(self.row_error(batch, start + k));
            }
            if m.get(&m.t, k) {
                out.push((start + k) as u32);
            }
        }
        Ok(())
    }

    /// Reproduce the row path's error for row `i` by evaluating the
    /// original expression on the pivoted row.
    fn row_error(&self, batch: &ColBatch, i: usize) -> EngineError {
        let row = batch.row_at(i);
        let env = Env::root(&row);
        match self.expr.eval_predicate(&env) {
            Err(e) => e,
            Ok(_) => EngineError::Execution(
                "vectorized predicate flagged an error the row path does not reproduce".into(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, Schema};
    use crate::table::Row;

    fn schema(tys: &[DataType]) -> Schema {
        Schema::new(
            tys.iter()
                .enumerate()
                .map(|(i, &ty)| Column::bare(&format!("c{i}"), ty))
                .collect(),
        )
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::column(i)
    }

    fn lit(v: Value) -> BoundExpr {
        BoundExpr::Literal(v)
    }

    fn cmp(op: BinaryOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Row-path reference: indices where eval_predicate == Some(true),
    /// or the first error in row order.
    fn row_reference(expr: &BoundExpr, rows: &[Row]) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if expr.eval_predicate(&Env::root(row))? == Some(true) {
                out.push(i as u32);
            }
        }
        Ok(out)
    }

    /// Assert the kernel agrees with the row path on `expr` over `rows`
    /// (same selection, or same error message). Panics if the predicate
    /// does not compile.
    fn assert_kernel_matches(expr: &BoundExpr, sch: &Schema, rows: Vec<Row>) {
        let batch = ColBatch::from_rows(sch, rows.clone());
        let pred = compile_predicate(expr, &batch).expect("predicate should compile");
        let mut got = Vec::new();
        let kernel = pred
            .select_into(&batch, 0..batch.len(), &mut got)
            .map(|()| got);
        let reference = row_reference(expr, &rows);
        match (kernel, reference) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("kernel {a:?} vs row path {b:?}"),
        }
    }

    fn int_rows() -> (Schema, Vec<Row>) {
        let s = schema(&[DataType::Integer]);
        let rows = (0..200)
            .map(|i| {
                vec![if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i - 100)
                }]
            })
            .collect();
        (s, rows)
    }

    #[test]
    fn int_comparisons_match_row_path() {
        let (s, rows) = int_rows();
        for op in [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            let e = cmp(op, col(0), lit(Value::Int(3)));
            assert_kernel_matches(&e, &s, rows.clone());
            // Literal on the left flips the operator.
            let e = cmp(op, lit(Value::Int(3)), col(0));
            assert_kernel_matches(&e, &s, rows.clone());
            // Int column vs float literal.
            let e = cmp(op, col(0), lit(Value::Float(2.5)));
            assert_kernel_matches(&e, &s, rows.clone());
        }
    }

    #[test]
    fn float_comparisons_and_nan_error_parity() {
        let s = schema(&[DataType::Float]);
        let rows: Vec<Row> = vec![
            vec![Value::Float(1.5)],
            vec![Value::Null],
            vec![Value::Float(-0.0)],
            vec![Value::Float(100.25)],
        ];
        let e = cmp(BinaryOp::Lt, col(0), lit(Value::Float(1.0)));
        assert_kernel_matches(&e, &s, rows.clone());
        let e = cmp(BinaryOp::GtEq, col(0), lit(Value::Int(1)));
        assert_kernel_matches(&e, &s, rows);

        // A NaN cell must produce the row path's exact error.
        let rows = vec![vec![Value::Float(0.5)], vec![Value::Float(f64::NAN)]];
        let e = cmp(BinaryOp::Lt, col(0), lit(Value::Float(1.0)));
        assert_kernel_matches(&e, &s, rows);
    }

    #[test]
    fn short_circuit_suppresses_right_side_errors() {
        // WHERE a < 0 AND b < 1.0 — rows where a >= 0 must not observe
        // the NaN in b, exactly like the row path's short-circuit.
        let s = schema(&[DataType::Integer, DataType::Float]);
        let rows = vec![
            vec![Value::Int(5), Value::Float(f64::NAN)], // a<0 false: NaN skipped
            vec![Value::Int(-1), Value::Float(0.5)],
        ];
        let e = cmp(
            BinaryOp::And,
            cmp(BinaryOp::Lt, col(0), lit(Value::Int(0))),
            cmp(BinaryOp::Lt, col(1), lit(Value::Float(1.0))),
        );
        assert_kernel_matches(&e, &s, rows);

        // And the error shows when the left side passes.
        let rows = vec![vec![Value::Int(-2), Value::Float(f64::NAN)]];
        let e = cmp(
            BinaryOp::And,
            cmp(BinaryOp::Lt, col(0), lit(Value::Int(0))),
            cmp(BinaryOp::Lt, col(1), lit(Value::Float(1.0))),
        );
        assert_kernel_matches(&e, &s, rows);

        // OR: a true left side skips the right.
        let rows = vec![
            vec![Value::Int(-3), Value::Float(f64::NAN)], // true OR err → true
            vec![Value::Int(9), Value::Float(2.0)],
        ];
        let e = cmp(
            BinaryOp::Or,
            cmp(BinaryOp::Lt, col(0), lit(Value::Int(0))),
            cmp(BinaryOp::Lt, col(1), lit(Value::Float(1.0))),
        );
        assert_kernel_matches(&e, &s, rows);
    }

    #[test]
    fn three_valued_and_or_not() {
        let s = schema(&[DataType::Integer, DataType::Integer]);
        let mut rows = Vec::new();
        for a in [Some(1i64), Some(5), None] {
            for b in [Some(2i64), Some(9), None] {
                rows.push(vec![
                    a.map_or(Value::Null, Value::Int),
                    b.map_or(Value::Null, Value::Int),
                ]);
            }
        }
        let left = cmp(BinaryOp::Lt, col(0), lit(Value::Int(3)));
        let right = cmp(BinaryOp::Gt, col(1), lit(Value::Int(5)));
        for e in [
            cmp(BinaryOp::And, left.clone(), right.clone()),
            cmp(BinaryOp::Or, left.clone(), right.clone()),
            BoundExpr::Not(Box::new(cmp(BinaryOp::And, left.clone(), right.clone()))),
            BoundExpr::Not(Box::new(left.clone())),
        ] {
            assert_kernel_matches(&e, &s, rows.clone());
        }
    }

    #[test]
    fn text_compare_like_and_in() {
        let s = schema(&[DataType::Text]);
        let words = ["BUILDING", "AUTOMOBILE", "FURNITURE", "building"];
        let rows: Vec<Row> = (0..40)
            .map(|i| {
                vec![if i % 9 == 0 {
                    Value::Null
                } else {
                    Value::str(words[i % words.len()])
                }]
            })
            .collect();
        let e = cmp(BinaryOp::Eq, col(0), lit(Value::str("BUILDING")));
        assert_kernel_matches(&e, &s, rows.clone());
        let e = cmp(BinaryOp::Lt, col(0), lit(Value::str("C")));
        assert_kernel_matches(&e, &s, rows.clone());
        for negated in [false, true] {
            let e = BoundExpr::Like {
                expr: Box::new(col(0)),
                pattern: Box::new(lit(Value::str("%BUILD%"))),
                negated,
            };
            assert_kernel_matches(&e, &s, rows.clone());
            let e = BoundExpr::InList {
                expr: Box::new(col(0)),
                list: vec![lit(Value::str("FURNITURE")), lit(Value::str("nope"))],
                negated,
            };
            assert_kernel_matches(&e, &s, rows.clone());
            // NULL in the IN list makes misses unknown.
            let e = BoundExpr::InList {
                expr: Box::new(col(0)),
                list: vec![lit(Value::str("FURNITURE")), lit(Value::Null)],
                negated,
            };
            assert_kernel_matches(&e, &s, rows.clone());
        }
    }

    #[test]
    fn int_date_in_list_and_is_null() {
        let (s, rows) = int_rows();
        for negated in [false, true] {
            let e = BoundExpr::InList {
                expr: Box::new(col(0)),
                list: vec![
                    lit(Value::Int(-99)),
                    lit(Value::Int(0)),
                    lit(Value::Int(42)),
                ],
                negated,
            };
            assert_kernel_matches(&e, &s, rows.clone());
            let e = BoundExpr::IsNull {
                expr: Box::new(col(0)),
                negated,
            };
            assert_kernel_matches(&e, &s, rows.clone());
        }
        let s = schema(&[DataType::Date]);
        let rows: Vec<Row> = (0..30)
            .map(|i| {
                vec![if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Date(i)
                }]
            })
            .collect();
        let e = cmp(BinaryOp::LtEq, col(0), lit(Value::Date(11)));
        assert_kernel_matches(&e, &s, rows.clone());
        let e = BoundExpr::InList {
            expr: Box::new(col(0)),
            list: vec![lit(Value::Date(3)), lit(Value::Date(7))],
            negated: false,
        };
        assert_kernel_matches(&e, &s, rows);
    }

    #[test]
    fn bool_columns_as_predicates() {
        let s = schema(&[DataType::Boolean]);
        let rows: Vec<Row> = vec![
            vec![Value::Bool(true)],
            vec![Value::Bool(false)],
            vec![Value::Null],
        ];
        assert_kernel_matches(&col(0), &s, rows.clone());
        let e = cmp(BinaryOp::Eq, col(0), lit(Value::Bool(false)));
        assert_kernel_matches(&e, &s, rows);
    }

    #[test]
    fn empty_and_all_filtered_batches() {
        let s = schema(&[DataType::Integer]);
        let e = cmp(BinaryOp::Gt, col(0), lit(Value::Int(1000)));
        assert_kernel_matches(&e, &s, vec![]);
        let rows: Vec<Row> = (0..100).map(|i| vec![Value::Int(i)]).collect();
        assert_kernel_matches(&e, &s, rows); // nothing passes
    }

    #[test]
    fn uncompilable_shapes_fall_back() {
        let s = schema(&[DataType::Integer, DataType::Integer]);
        let rows = vec![vec![Value::Int(1), Value::Int(2)]];
        let batch = ColBatch::from_rows(&s, rows);
        // Column-vs-column comparison: not vectorized.
        assert!(compile_predicate(&cmp(BinaryOp::Lt, col(0), col(1)), &batch).is_none());
        // NULL literal comparison: not vectorized.
        assert!(compile_predicate(&cmp(BinaryOp::Eq, col(0), lit(Value::Null)), &batch).is_none());
        // Arithmetic inside a comparison: not vectorized.
        let arith = BoundExpr::Binary {
            op: BinaryOp::Plus,
            left: Box::new(col(0)),
            right: Box::new(lit(Value::Int(1))),
        };
        assert!(compile_predicate(&cmp(BinaryOp::Eq, arith, lit(Value::Int(2))), &batch).is_none());
        // An Any column (demoted) is not vectorized.
        let s = schema(&[DataType::Any]);
        let batch = ColBatch::from_rows(&s, vec![vec![Value::Int(1)]]);
        assert!(
            compile_predicate(&cmp(BinaryOp::Eq, col(0), lit(Value::Int(1))), &batch).is_none()
        );
    }

    #[test]
    fn selection_over_offset_ranges() {
        let s = schema(&[DataType::Integer]);
        let rows: Vec<Row> = (0..300).map(|i| vec![Value::Int(i % 10)]).collect();
        let batch = ColBatch::from_rows(&s, rows.clone());
        let e = cmp(BinaryOp::Eq, col(0), lit(Value::Int(3)));
        let pred = compile_predicate(&e, &batch).unwrap();
        // Morsel-style disjoint ranges concatenate to the full result.
        let mut all = Vec::new();
        for start in (0..300).step_by(70) {
            let end = (start + 70).min(300);
            pred.select_into(&batch, start..end, &mut all).unwrap();
        }
        assert_eq!(all, row_reference(&e, &rows).unwrap());
    }
}
