//! Plan executor: materialized, operator-at-a-time evaluation.
//!
//! Operators exchange [`Batch`]es: either freshly-computed owned rows or a
//! shared reference to pre-materialized rows (base-table scans and
//! materialized CTEs). Read-only consumers — join build/probe sides,
//! aggregation inputs, filters — iterate shared batches without copying
//! them, so a scan feeding a join never clones the whole table.
//!
//! Every operator is governed: hot loops call [`Governor::tick`]
//! cooperatively, joins account each emitted row ([`Governor::emit_row`]),
//! hash tables / group tables / distinct sets reserve their estimated
//! footprint, and non-join operators batch-commit their output row counts.
//! Row and memory accounting is therefore *cumulative over intermediate
//! results* (a budget on total work), not an instantaneous peak.
//!
//! # Morsel-parallel execution
//!
//! When [`ExecOptions::threads`](crate::plan::ExecOptions) is above 1, the
//! row-at-a-time operator loops run *morsel-parallel* on scoped std
//! threads ([`std::thread::scope`] + atomics; no external crates): inputs
//! are split into fixed-size morsels ([`MORSEL_ROWS`] rows), workers claim
//! morsels from a shared atomic cursor, and per-morsel outputs are
//! reassembled in morsel order, so every operator reproduces the serial
//! processing order exactly. Hash joins partition the build side by key
//! hash into one table per worker and route probe lookups to the matching
//! partition; aggregation and DISTINCT build per-worker partial tables
//! that are merged with SQL NULL/three-valued-logic semantics preserved;
//! ORDER BY sorts per-worker runs and k-way merges them with the global
//! row index as tie-break, reproducing the serial stable sort. Float
//! SUM/AVG accumulate in an exact superaccumulator ([`crate::fsum`]), so
//! aggregates are bit-identical to serial at every thread count — there is
//! no floating-point divergence between the parallel and serial paths.
//!
//! The [`Governor`] is shared by all workers (its counters are atomics):
//! every worker loop calls `tick`, and the first trip or error aborts the
//! remaining workers at their next morsel boundary. When several workers
//! fail, the error from the lowest-numbered morsel wins, keeping failures
//! deterministic. Correlated subqueries evaluated inside worker loops stay
//! serial (no nested fan-out). Operators fall back to the serial path for
//! inputs under [`PAR_THRESHOLD`] rows, so small queries pay nothing.

use std::collections::hash_map::{Entry, RandomState};
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;
use std::mem;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::col::{self, ColBatch, ColumnChunk, ColumnData};
use crate::error::{EngineError, Result};
use crate::expr::{BoundExpr, Env};
use crate::faults;
use crate::fsum::ExactSum;
use crate::governor::Governor;
use crate::kernels;
use crate::plan::{AggFunc, AggSpec, JoinType, Plan};
use crate::schema::Schema;
use crate::stats::NodeStats;
use crate::table::{Row, Rows};
use crate::value::{Key, KeyValue, Value};

/// An operator's output: owned rows, or a shared column batch plus the
/// schema it is viewed under (scans re-qualify the stored schema per
/// binding). Columnar operators hand batches down without pivoting; the
/// row view pivots lazily, once, through the batch's cache.
pub enum Batch {
    Owned(Rows),
    Col { cols: Arc<ColBatch>, schema: Schema },
}

impl Batch {
    pub fn schema(&self) -> &Schema {
        match self {
            Batch::Owned(r) => &r.schema,
            Batch::Col { schema, .. } => schema,
        }
    }

    /// Row view of the batch. For a columnar batch this pivots once into
    /// the batch's cached row vector (subsequent calls are free); the
    /// row-at-a-time operators consume batches through it.
    pub fn rows(&self) -> &[Row] {
        match self {
            Batch::Owned(r) => &r.rows,
            Batch::Col { cols, .. } => cols.rows(),
        }
    }

    /// The columnar view, when this batch is columnar.
    pub fn cols(&self) -> Option<&ColBatch> {
        match self {
            Batch::Owned(_) => None,
            Batch::Col { cols, .. } => Some(cols),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Batch::Owned(r) => r.rows.len(),
            Batch::Col { cols, .. } => cols.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert into owned rows, pivoting (or stealing the pivot cache)
    /// when columnar.
    pub fn into_rows(self) -> Rows {
        match self {
            Batch::Owned(r) => r,
            Batch::Col { cols, schema } => {
                let rows = match Arc::try_unwrap(cols) {
                    Ok(batch) => batch.into_rows(),
                    Err(shared) => shared.rows().to_vec(),
                };
                Rows { schema, rows }
            }
        }
    }

    /// Convert into `(schema, shared column batch)`, pivoting row-shaped
    /// output into fresh columns (CTE materialization adopts columnar
    /// operator output as-is).
    pub fn into_schema_cols(self) -> (Schema, Arc<ColBatch>) {
        match self {
            Batch::Col { cols, schema } => (schema, cols),
            Batch::Owned(r) => {
                let Rows { schema, rows } = r;
                let cols = ColBatch::from_rows(&schema, rows);
                (schema, Arc::new(cols))
            }
        }
    }
}

/// Shared execution context: the resource governor (if any), the
/// worker-thread budget for morsel-parallel operators, and whether the
/// vectorized columnar kernels may be used (`false` forces every operator
/// onto the row-at-a-time reference path).
#[derive(Clone, Copy)]
struct ExecCtx<'g> {
    gov: Option<&'g Governor>,
    threads: usize,
    columnar: bool,
}

/// Execute a plan to fully-owned rows. `outer` is the enclosing row
/// environment for correlated subquery plans; `None` at the top level. The
/// governor, if any, is inherited from `outer` — correlated subqueries stay
/// under the enclosing query's budget. Always serial: per-row subqueries
/// must not fan out nested thread pools.
pub fn execute(plan: &Plan, outer: Option<&Env<'_>>) -> Result<Rows> {
    let gov = outer.and_then(|e| e.gov);
    // Correlated subqueries inherit the enclosing query's row/columnar
    // mode, so a row-mode differential run stays row-mode all the way down.
    let columnar = outer.is_none_or(|e| e.columnar);
    let ctx = ExecCtx {
        gov,
        threads: 1,
        columnar,
    };
    Ok(execute_ctx(plan, outer, None, ctx)?.into_rows())
}

/// Execute a plan to fully-owned rows under an explicit resource governor
/// (serial).
pub fn execute_governed(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
) -> Result<Rows> {
    execute_governed_threads(plan, outer, gov, 1)
}

/// Execute a plan to fully-owned rows with up to `threads` morsel-parallel
/// workers. `threads <= 1` is exactly the serial path.
pub fn execute_governed_threads(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
    threads: usize,
) -> Result<Rows> {
    Ok(execute_columnar_threads(plan, outer, gov, threads, true)?.into_rows())
}

/// Execute a plan to a [`Batch`] with explicit thread and columnar-kernel
/// settings — the entry point `Database` query execution and CTE
/// materialization use (the latter adopts a columnar output batch without
/// pivoting).
pub fn execute_columnar_threads(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
    threads: usize,
    columnar: bool,
) -> Result<Batch> {
    let ctx = ExecCtx {
        gov,
        threads: threads.max(1),
        columnar,
    };
    execute_ctx(plan, outer, None, ctx)
}

/// Execute a plan, sharing pre-materialized rows where possible (serial).
pub fn execute_batch(plan: &Plan, outer: Option<&Env<'_>>) -> Result<Batch> {
    let gov = outer.and_then(|e| e.gov);
    execute_batch_stats(plan, outer, None, gov)
}

/// Execute a plan, additionally collecting per-operator runtime stats into
/// a [`NodeStats`] tree shaped like the plan (`EXPLAIN ANALYZE`; serial).
pub fn execute_traced(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
) -> Result<(Rows, NodeStats)> {
    execute_traced_threads(plan, outer, gov, 1, true)
}

/// [`execute_traced`] with up to `threads` morsel-parallel workers.
/// Per-worker counters are merged into the single stats node of each
/// operator, so the tree keeps the serial shape; `threads_used` records
/// the widest fan-out of each operator.
pub fn execute_traced_threads(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
    threads: usize,
    columnar: bool,
) -> Result<(Rows, NodeStats)> {
    let mut stats = NodeStats::for_plan(plan);
    let ctx = ExecCtx {
        gov,
        threads: threads.max(1),
        columnar,
    };
    let rows = execute_ctx(plan, outer, Some(&mut stats), ctx)?.into_rows();
    Ok((rows, stats))
}

/// Rough footprint of a materialized row set (used when reserving memory
/// for CTEs and join outputs).
pub fn rows_bytes(rows: &Rows) -> u64 {
    est_row_bytes(&rows.schema) * rows.rows.len() as u64
}

/// Estimated bytes for one row under `schema`, grounded in the columnar
/// batch layout ([`col::batch_row_bytes`]): fixed-width payloads per
/// column type, amortized dictionary bytes per `TEXT` column, and the
/// per-row share of the validity bitmaps. The same formula feeds the
/// governor's memory budget and the `est_mem_bytes` column of
/// `EXPLAIN ANALYZE`.
fn est_row_bytes(schema: &Schema) -> u64 {
    col::batch_row_bytes(schema) as u64
}

/// Execute a plan, filling `stats` (when present) for this operator and
/// everything below it. `stats` must mirror the plan's shape — build it
/// with [`NodeStats::for_plan`]. Serial entry point, kept for callers that
/// manage their own stats tree.
pub fn execute_batch_stats(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    stats: Option<&mut NodeStats>,
    gov: Option<&Governor>,
) -> Result<Batch> {
    execute_ctx(
        plan,
        outer,
        stats,
        ExecCtx {
            gov,
            threads: 1,
            columnar: true,
        },
    )
}

/// The recursive executor: times the operator, runs it, and commits its
/// output rows to the governor.
fn execute_ctx(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
    ctx: ExecCtx<'_>,
) -> Result<Batch> {
    if let Some(g) = ctx.gov {
        g.check_now(op_name(plan))?;
    }
    let start = stats.as_ref().map(|_| Instant::now());
    let result = exec_node(plan, outer, &mut stats, ctx);
    if let (Some(s), Some(t)) = (stats, start) {
        s.invocations += 1;
        s.wall += t.elapsed();
        if let Ok(batch) = &result {
            s.rows_out += batch.len() as u64;
        }
    }
    // Joins already accounted each emitted row; everything else commits its
    // output batch here, so the row budget bounds cumulative intermediate
    // results no matter which operator inflates them.
    if let (Some(g), Ok(batch)) = (ctx.gov, &result) {
        if !matches!(plan, Plan::HashJoin { .. } | Plan::NestedLoopJoin { .. }) {
            g.add_rows(batch.len() as u64, op_name(plan))?;
        }
    }
    result
}

/// Stable operator name used in limit-trip reports and span events.
fn op_name(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "scan",
        Plan::IndexScan { .. } => "index_scan",
        Plan::Unit => "unit",
        Plan::Filter { .. } => "filter",
        Plan::Project { .. } => "project",
        Plan::Rename { .. } => "rename",
        Plan::HashJoin { .. } => "hash_join",
        Plan::NestedLoopJoin { .. } => "nested_loop_join",
        Plan::Aggregate { .. } => "aggregate",
        Plan::Distinct { .. } => "distinct",
        Plan::UnionAll { .. } => "union_all",
        Plan::Sort { .. } => "sort",
        Plan::Limit { .. } => "limit",
    }
}

/// Cooperative cancellation/timeout check for hot loops; free when
/// ungoverned.
#[inline]
fn tick(gov: Option<&Governor>, op: &'static str) -> Result<()> {
    match gov {
        Some(g) => g.tick(op),
        None => Ok(()),
    }
}

/// Bulk [`tick`] for vectorized kernels: one governor call per morsel
/// instead of one per row.
#[inline]
fn ticks(gov: Option<&Governor>, n: u64, op: &'static str) -> Result<()> {
    match gov {
        Some(g) => g.ticks(n, op),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Morsel-parallel primitives
// ---------------------------------------------------------------------------

/// Rows per morsel: large enough to amortize the atomic cursor claim,
/// small enough that work stealing balances skewed operators.
const MORSEL_ROWS: usize = 1024;

/// Inputs below this many rows run serially even when `threads > 1`: the
/// thread-spawn cost outweighs any parallel win on small batches.
const PAR_THRESHOLD: usize = 4 * MORSEL_ROWS;

/// Effective worker count for an operator over `n` input rows: 1 (serial)
/// for small inputs or a serial context, otherwise capped by the morsel
/// count so no worker is spawned without work.
fn par_workers(n: usize, threads: usize) -> usize {
    if threads <= 1 || n < PAR_THRESHOLD {
        1
    } else {
        threads.min(n.div_ceil(MORSEL_ROWS))
    }
}

/// A worker error tagged with the morsel it occurred in, so the coordinator
/// can pick a deterministic winner when several workers fail at once.
struct MorselError {
    morsel: usize,
    error: EngineError,
}

/// Map an unwound worker into a structured error. Workers are panic-free
/// by policy (`deny(unwrap_used)`), so this is defense in depth.
fn join_worker<T>(res: std::thread::Result<T>) -> Result<T> {
    res.map_err(|_| EngineError::Execution("parallel worker panicked".into()))
}

/// Of all worker failures, return the one from the lowest-numbered morsel:
/// the failure the serial path would have hit first.
fn first_error(errors: Vec<MorselError>) -> Option<EngineError> {
    errors.into_iter().min_by_key(|e| e.morsel).map(|e| e.error)
}

/// Run `f` once per morsel of `0..n` on `workers` scoped threads and
/// return the per-morsel results *in morsel order* — callers that
/// concatenate them observe exactly the serial processing order. Workers
/// claim morsels from a shared atomic cursor (dynamic work stealing); the
/// first error flips an abort flag that stops the other workers at their
/// next morsel boundary, and the error from the lowest morsel wins.
fn parallel_morsels<T, F>(n: usize, workers: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T> + Sync,
{
    type WorkerOut<T> = (Vec<(usize, T)>, Option<MorselError>);
    let morsels = n.div_ceil(MORSEL_ROWS);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // Workers adopt the spawning thread's trace so their spans land in the
    // query's collectors (a no-op when nothing is being traced).
    let trace = conquer_obs::current_trace();
    let worker_results: Vec<WorkerOut<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let trace = &trace;
                let cursor = &cursor;
                let abort = &abort;
                let f = &f;
                scope.spawn(move || {
                    let _trace = trace.adopt_worker(w);
                    let mut out: Vec<(usize, T)> = Vec::new();
                    let mut failed = None;
                    while !abort.load(Ordering::Relaxed) {
                        let m = cursor.fetch_add(1, Ordering::Relaxed);
                        if m >= morsels {
                            break;
                        }
                        let lo = m * MORSEL_ROWS;
                        let hi = n.min(lo + MORSEL_ROWS);
                        match f(m, lo..hi) {
                            Ok(t) => out.push((m, t)),
                            Err(error) => {
                                abort.store(true, Ordering::Relaxed);
                                failed = Some(MorselError { morsel: m, error });
                                break;
                            }
                        }
                    }
                    (out, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| join_worker(h.join()))
            .collect::<Result<Vec<_>>>()
    })?;

    let mut errors = Vec::new();
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(morsels);
    for (out, failed) in worker_results {
        tagged.extend(out);
        errors.extend(failed);
    }
    if let Some(e) = first_error(errors) {
        return Err(e);
    }
    tagged.sort_unstable_by_key(|(m, _)| *m);
    Ok(tagged.into_iter().map(|(_, t)| t).collect())
}

/// Like [`parallel_morsels`], but each *worker* carries one accumulator
/// across all the morsels it claims (per-worker partial hash tables for
/// aggregation/DISTINCT). Returns the per-worker accumulators in no
/// particular order — the fold must be merge-order-insensitive, which the
/// callers guarantee by tracking global first-seen row indexes.
fn parallel_fold<T, I, F>(n: usize, workers: usize, init: I, step: F) -> Result<Vec<T>>
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, Range<usize>) -> Result<()> + Sync,
{
    let morsels = n.div_ceil(MORSEL_ROWS);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let trace = conquer_obs::current_trace();
    let worker_results: Vec<(T, Option<MorselError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let trace = &trace;
                let cursor = &cursor;
                let abort = &abort;
                let init = &init;
                let step = &step;
                scope.spawn(move || {
                    let _trace = trace.adopt_worker(w);
                    let mut acc = init();
                    let mut failed = None;
                    while !abort.load(Ordering::Relaxed) {
                        let m = cursor.fetch_add(1, Ordering::Relaxed);
                        if m >= morsels {
                            break;
                        }
                        let lo = m * MORSEL_ROWS;
                        let hi = n.min(lo + MORSEL_ROWS);
                        if let Err(error) = step(&mut acc, lo..hi) {
                            abort.store(true, Ordering::Relaxed);
                            failed = Some(MorselError { morsel: m, error });
                            break;
                        }
                    }
                    (acc, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| join_worker(h.join()))
            .collect::<Result<Vec<_>>>()
    })?;

    let mut errors = Vec::new();
    let mut accs = Vec::with_capacity(workers);
    for (acc, failed) in worker_results {
        accs.push(acc);
        errors.extend(failed);
    }
    if let Some(e) = first_error(errors) {
        return Err(e);
    }
    Ok(accs)
}

/// Run one independent task per element of `inputs` on scoped threads
/// (hash-join partition builds, per-run sorts). Task index is the
/// deterministic error tie-break.
fn parallel_tasks<T, U, F>(inputs: Vec<T>, f: F) -> Result<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> Result<U> + Sync,
{
    let trace = conquer_obs::current_trace();
    let results: Vec<(usize, Result<U>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| {
                let f = &f;
                let trace = &trace;
                scope.spawn(move || {
                    let _trace = trace.adopt_worker(i);
                    (i, f(i, input))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| join_worker(h.join()))
            .collect::<Result<Vec<_>>>()
    })?;
    let mut errors = Vec::new();
    let mut out: Vec<(usize, U)> = Vec::with_capacity(results.len());
    for (i, res) in results {
        match res {
            Ok(u) => out.push((i, u)),
            Err(error) => errors.push(MorselError { morsel: i, error }),
        }
    }
    if let Some(e) = first_error(errors) {
        return Err(e);
    }
    out.sort_unstable_by_key(|(i, _)| *i);
    Ok(out.into_iter().map(|(_, u)| u).collect())
}

/// Record the fan-out an operator ran with.
fn note_threads(stats: &mut Option<&mut NodeStats>, workers: usize) {
    if let Some(s) = stats.as_deref_mut() {
        s.threads_used = s.threads_used.max(workers as u64);
    }
}

/// The untimed operator dispatch. Children are executed through
/// [`execute_ctx`] with the matching child stats node, so timing nests
/// correctly; operator-internal counters are filled in by the `exec_*`
/// helpers. Fault points (`faults::trip`) sit at operator entry on the
/// coordinating thread, so an armed fault fires identically at any thread
/// count (the schedule is thread-local).
fn exec_node(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    stats: &mut Option<&mut NodeStats>,
    ctx: ExecCtx<'_>,
) -> Result<Batch> {
    let gov = ctx.gov;
    match plan {
        Plan::Scan { cols, schema } => {
            faults::trip("scan")?;
            Ok(Batch::Col {
                cols: Arc::clone(cols),
                schema: schema.clone(),
            })
        }
        Plan::IndexScan {
            cols,
            schema,
            index,
            access,
        } => {
            // An index scan is still a scan for fault purposes: the same
            // point fires whichever access path the optimizer picked.
            faults::trip("scan")?;
            let sel = index.select(access);
            conquer_obs::registry().counter("index.probe").inc();
            ticks(gov, sel.len() as u64, "index_scan")?;
            Ok(Batch::Col {
                cols: Arc::new(cols.gather(&sel)),
                schema: schema.clone(),
            })
        }
        Plan::Unit => Ok(Batch::Owned(Rows {
            schema: plan.schema().clone(),
            rows: vec![Vec::new()],
        })),
        Plan::Filter { input, predicate } => {
            faults::trip("filter")?;
            let child = execute_ctx(input, outer, child_stats(stats, 0), ctx)?;
            // Kernel path: compile the predicate against the child's column
            // layout, evaluate it morsel-at-a-time into selection vectors,
            // and gather the passing rows into a fresh columnar batch — the
            // output stays columnar for the operators above. Predicates the
            // compiler rejects (subqueries, outer references, arithmetic,
            // demoted columns) fall through to the row loop below.
            if ctx.columnar {
                if let Batch::Col { cols, schema } = &child {
                    if let Some(pred) = kernels::compile_predicate(predicate, cols) {
                        let n = cols.len();
                        let workers = par_workers(n, ctx.threads);
                        note_threads(stats, workers);
                        let sel: Vec<u32> = if workers == 1 {
                            ticks(gov, n as u64, "filter")?;
                            let mut sel = Vec::new();
                            pred.select_into(cols, 0..n, &mut sel)?;
                            sel
                        } else {
                            parallel_morsels(n, workers, |_, range| {
                                ticks(gov, range.len() as u64, "filter")?;
                                let mut sel = Vec::new();
                                pred.select_into(cols, range, &mut sel)?;
                                Ok(sel)
                            })?
                            .concat()
                        };
                        return Ok(Batch::Col {
                            cols: Arc::new(cols.gather(&sel)),
                            schema: schema.clone(),
                        });
                    }
                }
            }
            let rows = child.rows();
            let workers = par_workers(rows.len(), ctx.threads);
            note_threads(stats, workers);
            let filter_morsel = |range: Range<usize>| -> Result<Vec<Row>> {
                let mut out = Vec::new();
                for row in &rows[range] {
                    tick(gov, "filter")?;
                    if eval_predicate_on_row(predicate, row, outer, ctx)? == Some(true) {
                        out.push(row.clone());
                    }
                }
                Ok(out)
            };
            let out = if workers == 1 {
                filter_morsel(0..rows.len())?
            } else {
                concat_rows(parallel_morsels(rows.len(), workers, |_, range| {
                    filter_morsel(range)
                })?)
            };
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows: out,
            }))
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            faults::trip("project")?;
            let child = execute_ctx(input, outer, child_stats(stats, 0), ctx)?;
            // Kernel path: a projection that is a pure column pick reorders
            // chunk pointers — no per-row expression evaluation, no copy.
            if ctx.columnar {
                if let (Batch::Col { cols, .. }, Some(idxs)) =
                    (&child, kernels::column_indices(exprs))
                {
                    ticks(gov, cols.len() as u64, "project")?;
                    return Ok(Batch::Col {
                        cols: Arc::new(cols.select_columns(&idxs)),
                        schema: schema.clone(),
                    });
                }
            }
            let rows = child.rows();
            let workers = par_workers(rows.len(), ctx.threads);
            note_threads(stats, workers);
            let project_morsel = |range: Range<usize>| -> Result<Vec<Row>> {
                let mut out = Vec::with_capacity(range.len());
                for row in &rows[range] {
                    tick(gov, "project")?;
                    out.push(project_row(row, exprs, outer, ctx)?);
                }
                Ok(out)
            };
            let out = if workers == 1 {
                project_morsel(0..rows.len())?
            } else {
                concat_rows(parallel_morsels(rows.len(), workers, |_, range| {
                    project_morsel(range)
                })?)
            };
            Ok(Batch::Owned(Rows {
                schema: schema.clone(),
                rows: out,
            }))
        }
        Plan::Rename { input, schema } => {
            faults::trip("rename")?;
            let child = execute_ctx(input, outer, child_stats(stats, 0), ctx)?;
            Ok(match child {
                Batch::Owned(r) => Batch::Owned(Rows {
                    schema: schema.clone(),
                    rows: r.rows,
                }),
                Batch::Col { cols, .. } => Batch::Col {
                    cols,
                    schema: schema.clone(),
                },
            })
        }
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            build_index,
            schema,
        } => {
            let l = execute_ctx(left, outer, child_stats(stats, 0), ctx)?;
            let r = execute_ctx(right, outer, child_stats(stats, 1), ctx)?;
            exec_hash_join(
                l,
                r,
                *kind,
                left_keys,
                right_keys,
                residual.as_ref(),
                build_index.as_ref(),
                schema,
                outer,
                stats.as_deref_mut(),
                ctx,
            )
        }
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            faults::trip("nested_loop")?;
            let l = execute_ctx(left, outer, child_stats(stats, 0), ctx)?;
            let r = execute_ctx(right, outer, child_stats(stats, 1), ctx)?;
            Ok(Batch::Owned(exec_nested_loop_join(
                l,
                r,
                *kind,
                on.as_ref(),
                schema,
                outer,
                stats.as_deref_mut(),
                ctx,
            )?))
        }
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            faults::trip("aggregate.group")?;
            let child = execute_ctx(input, outer, child_stats(stats, 0), ctx)?;
            Ok(Batch::Owned(exec_aggregate(
                child,
                group_exprs,
                aggs,
                schema,
                outer,
                stats.as_deref_mut(),
                ctx,
            )?))
        }
        Plan::Distinct { input } => {
            faults::trip("distinct")?;
            let child = execute_ctx(input, outer, child_stats(stats, 0), ctx)?;
            let workers = par_workers(child.len(), ctx.threads);
            note_threads(stats, workers);
            let (out, set_bytes) = exec_distinct(&child, workers, gov)?;
            if let Some(s) = stats.as_deref_mut() {
                s.build_rows += child.len() as u64;
                s.est_mem_bytes += set_bytes;
            }
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows: out,
            }))
        }
        Plan::UnionAll { left, right } => {
            faults::trip("union")?;
            let l = execute_ctx(left, outer, child_stats(stats, 0), ctx)?;
            let r = execute_ctx(right, outer, child_stats(stats, 1), ctx)?;
            let mut rows = l.into_rows();
            match r {
                Batch::Owned(o) => rows.rows.extend(o.rows),
                Batch::Col { cols, .. } => rows.rows.extend(cols.rows().iter().cloned()),
            }
            Ok(Batch::Owned(rows))
        }
        Plan::Sort { input, keys } => {
            faults::trip("sort")?;
            let child = execute_ctx(input, outer, child_stats(stats, 0), ctx)?.into_rows();
            let workers = par_workers(child.rows.len(), ctx.threads);
            note_threads(stats, workers);
            Ok(Batch::Owned(exec_sort(child, keys, outer, ctx, workers)?))
        }
        Plan::Limit { input, n } => {
            faults::trip("limit")?;
            let child = execute_ctx(input, outer, child_stats(stats, 0), ctx)?;
            let take = (*n as usize).min(child.len());
            if take == child.len() {
                return Ok(child);
            }
            if ctx.columnar {
                if let Batch::Col { cols, schema } = &child {
                    return Ok(Batch::Col {
                        cols: Arc::new(cols.head(take)),
                        schema: schema.clone(),
                    });
                }
            }
            let rows = child.rows()[..take].to_vec();
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows,
            }))
        }
    }
}

/// Concatenate per-morsel output chunks (already in morsel order).
fn concat_rows(chunks: Vec<Vec<Row>>) -> Vec<Row> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// DISTINCT: serial for one worker; otherwise workers pre-deduplicate the
/// morsels they claim against a per-worker set (each worker's morsels are
/// claimed in increasing order, so a worker always keeps its earliest
/// occurrence), and a sequential pass over the surviving rows in global
/// row order picks the true first occurrence of each key — the same row,
/// with the same payload, the serial path keeps. Returns the output rows
/// and the estimated footprint of the dedup sets.
fn exec_distinct(child: &Batch, workers: usize, gov: Option<&Governor>) -> Result<(Vec<Row>, u64)> {
    let rows = child.rows();
    if workers == 1 {
        let mut seen: HashSet<Key> = HashSet::with_capacity(rows.len());
        if let Some(g) = gov {
            g.reserve_mem((seen.capacity() * mem::size_of::<Key>()) as u64, "distinct")?;
        }
        let mut out = Vec::new();
        for row in rows {
            tick(gov, "distinct")?;
            if seen.insert(Key::from_values(row)) {
                out.push(row.clone());
            }
        }
        return Ok((out, (seen.capacity() * mem::size_of::<Key>()) as u64));
    }

    struct DistinctPartial {
        seen: HashSet<Key>,
        /// Surviving `(global row index, key)` pairs, per-worker-deduped.
        survivors: Vec<(usize, Key)>,
        reserved_cap: usize,
    }
    let partials = parallel_fold(
        rows.len(),
        workers,
        || DistinctPartial {
            seen: HashSet::new(),
            survivors: Vec::new(),
            reserved_cap: 0,
        },
        |acc, range| {
            for idx in range {
                tick(gov, "distinct")?;
                let key = Key::from_values(&rows[idx]);
                if acc.seen.insert(key.clone()) {
                    acc.survivors.push((idx, key));
                }
                if acc.seen.capacity() > acc.reserved_cap {
                    if let Some(g) = gov {
                        g.reserve_mem(
                            ((acc.seen.capacity() - acc.reserved_cap) * mem::size_of::<Key>())
                                as u64,
                            "distinct",
                        )?;
                    }
                    acc.reserved_cap = acc.seen.capacity();
                }
            }
            Ok(())
        },
    )?;

    let set_bytes: u64 = partials
        .iter()
        .map(|p| (p.seen.capacity() * mem::size_of::<Key>()) as u64)
        .sum();
    let mut survivors: Vec<(usize, Key)> = partials.into_iter().flat_map(|p| p.survivors).collect();
    survivors.sort_unstable_by_key(|(idx, _)| *idx);
    let mut global: HashSet<Key> = HashSet::with_capacity(survivors.len());
    let mut out = Vec::new();
    for (idx, key) in survivors {
        if global.insert(key) {
            out.push(rows[idx].clone());
        }
    }
    Ok((out, set_bytes))
}

/// Reborrow the stats node for child `i` of the current operator, keeping
/// the `Option` shape `execute_batch_stats` expects.
fn child_stats<'a>(stats: &'a mut Option<&mut NodeStats>, i: usize) -> Option<&'a mut NodeStats> {
    stats.as_deref_mut().map(|s| &mut s.children[i])
}

/// Evaluate an expression for a given current row, chaining outer scopes.
/// The governor rides along in the environment so correlated subqueries
/// launched from expression evaluation stay governed.
fn eval_on_row(
    expr: &BoundExpr,
    row: &[Value],
    outer: Option<&Env<'_>>,
    ctx: ExecCtx<'_>,
) -> Result<Value> {
    match outer {
        Some(parent) => expr.eval(&Env::push(row, parent)),
        None => expr.eval(&Env::exec(row, ctx.gov, ctx.columnar)),
    }
}

fn eval_predicate_on_row(
    expr: &BoundExpr,
    row: &[Value],
    outer: Option<&Env<'_>>,
    ctx: ExecCtx<'_>,
) -> Result<Option<bool>> {
    match outer {
        Some(parent) => expr.eval_predicate(&Env::push(row, parent)),
        None => expr.eval_predicate(&Env::exec(row, ctx.gov, ctx.columnar)),
    }
}

fn project_row(
    row: &[Value],
    exprs: &[BoundExpr],
    outer: Option<&Env<'_>>,
    ctx: ExecCtx<'_>,
) -> Result<Row> {
    let mut out = Vec::with_capacity(exprs.len());
    for e in exprs {
        out.push(eval_on_row(e, row, outer, ctx)?);
    }
    Ok(out)
}

/// The build side of a hash join, hash-partitioned into `parts.len()`
/// disjoint tables. Build and probe route a key to its partition through
/// the same shared [`RandomState`], so lookups hit exactly one table. One
/// partition (serial build) degenerates to the classic single hash table.
struct PartitionedTable {
    hasher: RandomState,
    parts: Vec<HashMap<Key, Vec<usize>>>,
}

impl PartitionedTable {
    fn route(&self, key: &Key) -> usize {
        if self.parts.len() == 1 {
            0
        } else {
            (self.hasher.hash_one(key) as usize) % self.parts.len()
        }
    }

    fn get(&self, key: &Key) -> Option<&Vec<usize>> {
        self.parts[self.route(key)].get(key)
    }

    fn is_empty(&self) -> bool {
        self.parts.iter().all(HashMap::is_empty)
    }

    fn bytes(&self) -> u64 {
        self.parts.iter().map(hash_table_bytes).sum()
    }
}

/// The probe target of a hash join: either a hash table built for this
/// query, or a prebuilt secondary [`Index`](crate::index::Index) attached
/// by the optimizer. Both expose the same postings contract — per-key row
/// indices in ascending build-row order with NULL keys absent — so every
/// probe and emission path downstream is identical.
enum JoinTable<'a> {
    Built(PartitionedTable),
    Indexed(&'a crate::index::Index),
}

impl JoinTable<'_> {
    fn get(&self, key: &Key) -> Option<&Vec<usize>> {
        match self {
            JoinTable::Built(t) => t.get(key),
            JoinTable::Indexed(idx) => idx.get(key),
        }
    }

    /// Bytes this join *allocated*: a prebuilt index is a shared,
    /// database-resident structure, so it costs the query nothing.
    fn query_bytes(&self) -> u64 {
        match self {
            JoinTable::Built(t) => t.bytes(),
            JoinTable::Indexed(_) => 0,
        }
    }
}

/// Key extractor for one join side: either direct reads from the key
/// column chunks of a columnar batch (the hash-key kernel — no per-row
/// expression evaluation, and no pivot of the non-key columns), or bound
/// key expressions evaluated over the pivoted rows.
enum KeySource<'a> {
    Cols(Vec<&'a ColumnChunk>),
    Rows {
        rows: &'a [Row],
        keys: &'a [BoundExpr],
    },
}

impl<'a> KeySource<'a> {
    /// Pick the extraction strategy for `input`: column chunks when the
    /// keys are plain depth-0 columns over a columnar batch and the
    /// kernels are enabled, pivoted rows otherwise.
    fn for_batch(input: &'a Batch, keys: &'a [BoundExpr], ctx: ExecCtx<'_>) -> KeySource<'a> {
        if ctx.columnar {
            if let (Some(cb), Some(idxs)) = (input.cols(), kernels::column_indices(keys)) {
                return KeySource::Cols(idxs.iter().map(|&i| &*cb.cols()[i]).collect());
            }
        }
        KeySource::Rows {
            rows: input.rows(),
            keys,
        }
    }

    fn key_at(&self, i: usize, outer: Option<&Env<'_>>, ctx: ExecCtx<'_>) -> Result<Key> {
        match self {
            KeySource::Cols(chunks) => {
                let vals: Vec<Value> = chunks.iter().map(|c| c.value_at(i)).collect();
                Ok(Key::from_values(&vals))
            }
            KeySource::Rows { rows, keys } => {
                Ok(Key::from_values(&project_row(&rows[i], keys, outer, ctx)?))
            }
        }
    }
}

/// Build the join hash table over the build side, partitioned across
/// `workers` threads when above the parallel threshold. Workers extract
/// keys per morsel and route `(key, row index)` pairs into per-partition
/// buckets; a morsel-order transpose then hands each partition's pairs —
/// in global row order — to one builder thread, so every key's index list
/// is identical to the serial build's. NULL keys are skipped (SQL equality
/// never matches them).
fn build_join_table(
    input: &Batch,
    keys: &[BoundExpr],
    workers: usize,
    outer: Option<&Env<'_>>,
    ctx: ExecCtx<'_>,
) -> Result<PartitionedTable> {
    let gov = ctx.gov;
    let n = input.len();
    let source = KeySource::for_batch(input, keys, ctx);
    let hasher = RandomState::new();
    if workers == 1 {
        let mut table: HashMap<Key, Vec<usize>> = HashMap::with_capacity(n);
        for i in 0..n {
            tick(gov, "hash_join")?;
            let key = source.key_at(i, outer, ctx)?;
            if key.has_null() {
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        return Ok(PartitionedTable {
            hasher,
            parts: vec![table],
        });
    }

    let nparts = workers;
    let morsel_buckets: Vec<Vec<Vec<(Key, usize)>>> = parallel_morsels(n, workers, |_, range| {
        let mut buckets: Vec<Vec<(Key, usize)>> = (0..nparts).map(|_| Vec::new()).collect();
        for idx in range {
            tick(gov, "hash_join")?;
            let key = source.key_at(idx, outer, ctx)?;
            if key.has_null() {
                continue;
            }
            let p = (hasher.hash_one(&key) as usize) % nparts;
            buckets[p].push((key, idx));
        }
        Ok(buckets)
    })?;
    // Transpose morsel-major to partition-major; iterating morsels in order
    // keeps each partition's pairs in global row order.
    let mut per_part: Vec<Vec<(Key, usize)>> = (0..nparts).map(|_| Vec::new()).collect();
    for buckets in morsel_buckets {
        for (p, bucket) in buckets.into_iter().enumerate() {
            per_part[p].extend(bucket);
        }
    }
    let parts = parallel_tasks(per_part, |_, entries| {
        let mut table: HashMap<Key, Vec<usize>> = HashMap::with_capacity(entries.len());
        for (key, idx) in entries {
            tick(gov, "hash_join")?;
            table.entry(key).or_default().push(idx);
        }
        Ok(table)
    })?;
    Ok(PartitionedTable { hasher, parts })
}

#[allow(clippy::too_many_arguments)]
fn exec_hash_join(
    left: Batch,
    right: Batch,
    kind: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    build_index: Option<&Arc<crate::index::Index>>,
    schema: &Schema,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
    ctx: ExecCtx<'_>,
) -> Result<Batch> {
    let gov = ctx.gov;
    // A prebuilt index is only sound if the right child still produced the
    // exact batch the index was built over (snapshot semantics); anything
    // else — pivoted rows, a different epoch's batch — falls back to
    // building a table for this query.
    let prebuilt: Option<&crate::index::Index> = build_index
        .filter(|idx| match &right {
            Batch::Col { cols, .. } => Arc::ptr_eq(cols, idx.batch()),
            Batch::Owned(_) => false,
        })
        .map(Arc::as_ref);
    if let Some(s) = stats.as_deref_mut() {
        s.build_rows += right.len() as u64;
        s.probe_rows += left.len() as u64;
    }
    let row_bytes = est_row_bytes(schema);
    // Joins are the unbounded row generators, so they account output rows
    // (and their bytes) one emission at a time.
    let emit = |n: usize| -> Result<()> {
        match gov {
            Some(g) => g.emit_rows(n as u64, row_bytes, "hash_join"),
            None => Ok(()),
        }
    };
    // Early outs for empty sides: an inner join with an empty input is
    // empty; a semi join against nothing is empty; an anti join against
    // nothing passes everything through. (The annotation-aware Filter often
    // has an empty candidates side on nearly-consistent databases.)
    if right.is_empty() {
        return Ok(match kind {
            JoinType::Inner | JoinType::Semi => Batch::Owned(Rows {
                schema: schema.clone(),
                rows: Vec::new(),
            }),
            JoinType::Anti => {
                emit(left.len())?;
                // Pass-through: keep the left batch's representation
                // (columnar stays columnar), re-viewed under the join's
                // schema.
                match left {
                    Batch::Col { cols, .. } => Batch::Col {
                        cols,
                        schema: schema.clone(),
                    },
                    Batch::Owned(r) => Batch::Owned(Rows {
                        schema: schema.clone(),
                        rows: r.rows,
                    }),
                }
            }
            JoinType::LeftOuter => {
                emit(left.len())?;
                let right_width = right.schema().len();
                let rows = left
                    .rows()
                    .iter()
                    .map(|l| {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        row
                    })
                    .collect();
                Batch::Owned(Rows {
                    schema: schema.clone(),
                    rows,
                })
            }
        });
    }
    if left.is_empty() {
        return Ok(Batch::Owned(Rows {
            schema: schema.clone(),
            rows: Vec::new(),
        }));
    }

    // Inner joins build the hash table on the smaller side; the output
    // column order (left ++ right) is preserved when emitting. An attached
    // index pins the build to the right side: probing a prebuilt structure
    // beats re-hashing the smaller input.
    if kind == JoinType::Inner
        && left.len() < right.len()
        && residual.is_none()
        && prebuilt.is_none()
    {
        return Ok(Batch::Owned(exec_hash_join_inner_swapped(
            right, left, right_keys, left_keys, schema, outer, stats, ctx,
        )?));
    }

    // Build on the right side, hash-partitioned across workers when large —
    // unless the optimizer attached a prebuilt index, which skips the build
    // entirely. Both paths fire the `join.build` fault point.
    faults::trip("join.build")?;
    let (table, build_workers) = match prebuilt {
        Some(idx) => (JoinTable::Indexed(idx), 1),
        None => {
            let workers = par_workers(right.len(), ctx.threads);
            let built = build_join_table(&right, right_keys, workers, outer, ctx)?;
            (JoinTable::Built(built), workers)
        }
    };
    if let Some(g) = gov {
        g.reserve_mem(table.query_bytes(), "hash_join")?;
    }
    if let Some(s) = stats.as_deref_mut() {
        s.est_mem_bytes += table.query_bytes();
    }
    if matches!(table, JoinTable::Indexed(_)) {
        conquer_obs::registry().counter("index.probe").inc();
    }

    faults::trip("join.probe")?;
    let probe_workers = par_workers(left.len(), ctx.threads);
    if let Some(s) = stats.as_deref_mut() {
        s.threads_used = s.threads_used.max(build_workers.max(probe_workers) as u64);
    }
    let left_source = KeySource::for_batch(&left, left_keys, ctx);

    // Kernel path for semi/anti joins without residuals: probe straight
    // off the key chunks, collect the surviving left row indices, and
    // gather them into a columnar output — neither side is pivoted. This
    // is the hot shape of ConQuer's rewritings (decorrelated EXISTS /
    // NOT EXISTS).
    if matches!(kind, JoinType::Semi | JoinType::Anti) && residual.is_none() && ctx.columnar {
        if let Some(lcols) = left.cols() {
            let probe_sel = |range: Range<usize>| -> Result<(Vec<u32>, u64)> {
                let mut comparisons = 0u64;
                let mut out = Vec::new();
                for i in range {
                    tick(gov, "hash_join")?;
                    let key = left_source.key_at(i, outer, ctx)?;
                    let matched = if key.has_null() {
                        false
                    } else if table.get(&key).is_some() {
                        // The serial row path inspects exactly one
                        // candidate before the semi/anti short-circuit.
                        comparisons += 1;
                        true
                    } else {
                        false
                    };
                    if matched == (kind == JoinType::Semi) {
                        emit(1)?;
                        out.push(i as u32);
                    }
                }
                Ok((out, comparisons))
            };
            let (sel, comparisons) = if probe_workers == 1 {
                probe_sel(0..left.len())?
            } else {
                let chunks =
                    parallel_morsels(left.len(), probe_workers, |_, range| probe_sel(range))?;
                let comparisons = chunks.iter().map(|(_, c)| c).sum();
                (
                    chunks
                        .into_iter()
                        .flat_map(|(sel, _)| sel)
                        .collect::<Vec<u32>>(),
                    comparisons,
                )
            };
            if let Some(s) = stats {
                s.comparisons += comparisons;
            }
            return Ok(Batch::Col {
                cols: Arc::new(lcols.gather(&sel)),
                schema: schema.clone(),
            });
        }
    }

    // Inner/outer output rows splice in right-side values; semi/anti with
    // a residual evaluate it over the concatenated pair. Either way both
    // sides pivot here (once, cached).
    let left_rows = left.rows();
    let right_rows = right.rows();
    let right_width = right.schema().len();
    // One probe morsel: the per-row matching logic is identical at any
    // thread count, and morsel outputs concatenate back to the serial
    // emission order (probe rows in order; per-key build indexes in global
    // build order).
    let probe_morsel = |range: Range<usize>| -> Result<(Vec<Row>, u64)> {
        let mut comparisons = 0u64;
        let mut out = Vec::new();
        for li in range {
            let lrow = &left_rows[li];
            tick(gov, "hash_join")?;
            let key = left_source.key_at(li, outer, ctx)?;
            let matches = if key.has_null() {
                None
            } else {
                table.get(&key)
            };
            let mut matched = false;
            if let Some(idxs) = matches {
                for &ri in idxs {
                    comparisons += 1;
                    // Residual conditions are part of the ON clause: they
                    // decide whether this candidate pair is a match.
                    let pass = match residual {
                        None => true,
                        Some(res) => {
                            let mut combined = lrow.clone();
                            combined.extend(right_rows[ri].iter().cloned());
                            eval_predicate_on_row(res, &combined, outer, ctx)? == Some(true)
                        }
                    };
                    if !pass {
                        continue;
                    }
                    matched = true;
                    match kind {
                        JoinType::Inner | JoinType::LeftOuter => {
                            emit(1)?;
                            let mut combined = lrow.clone();
                            combined.extend(right_rows[ri].iter().cloned());
                            out.push(combined);
                        }
                        JoinType::Semi | JoinType::Anti => break,
                    }
                }
            }
            match kind {
                JoinType::LeftOuter if !matched => {
                    emit(1)?;
                    let mut combined = lrow.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(combined);
                }
                JoinType::Semi if matched => {
                    emit(1)?;
                    out.push(lrow.clone());
                }
                JoinType::Anti if !matched => {
                    emit(1)?;
                    out.push(lrow.clone());
                }
                _ => {}
            }
        }
        Ok((out, comparisons))
    };
    let (out, comparisons) = if probe_workers == 1 {
        probe_morsel(0..left_rows.len())?
    } else {
        let chunks = parallel_morsels(left_rows.len(), probe_workers, |_, range| {
            probe_morsel(range)
        })?;
        let comparisons = chunks.iter().map(|(_, c)| c).sum();
        (
            concat_rows(chunks.into_iter().map(|(rows, _)| rows).collect()),
            comparisons,
        )
    };
    if let Some(s) = stats {
        s.comparisons += comparisons;
    }
    Ok(Batch::Owned(Rows {
        schema: schema.clone(),
        rows: out,
    }))
}

/// Rough footprint of a join hash table: map entry overhead plus one
/// row index per build row.
fn hash_table_bytes(table: &HashMap<Key, Vec<usize>>) -> u64 {
    let entry = mem::size_of::<Key>() + mem::size_of::<Vec<usize>>();
    let indices: usize = table.values().map(Vec::len).sum();
    (table.capacity() * entry + indices * mem::size_of::<usize>()) as u64
}

/// Inner hash join probing with the *larger* side: `probe` is the original
/// right input, `build` the original left. Output rows still lay out
/// original-left columns first.
///
/// Note the emission-order divergence from the unswapped shape: rows come
/// out in probe (original-right) order. The parallel path reproduces
/// exactly this order, morsel by morsel.
#[allow(clippy::too_many_arguments)]
fn exec_hash_join_inner_swapped(
    probe: Batch,
    build: Batch,
    probe_keys: &[BoundExpr],
    build_keys: &[BoundExpr],
    schema: &Schema,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
    ctx: ExecCtx<'_>,
) -> Result<Rows> {
    let gov = ctx.gov;
    faults::trip("join.build")?;
    let row_bytes = est_row_bytes(schema);
    let build_workers = par_workers(build.len(), ctx.threads);
    let table = build_join_table(&build, build_keys, build_workers, outer, ctx)?;
    let build_rows = build.rows();
    if let Some(g) = gov {
        g.reserve_mem(table.bytes(), "hash_join")?;
    }
    if let Some(s) = stats.as_deref_mut() {
        s.est_mem_bytes += table.bytes();
    }
    if table.is_empty() {
        return Ok(Rows {
            schema: schema.clone(),
            rows: Vec::new(),
        });
    }
    faults::trip("join.probe")?;
    let probe_source = KeySource::for_batch(&probe, probe_keys, ctx);
    let probe_rows = probe.rows();
    let probe_workers = par_workers(probe_rows.len(), ctx.threads);
    if let Some(s) = stats.as_deref_mut() {
        s.threads_used = s.threads_used.max(build_workers.max(probe_workers) as u64);
    }
    let probe_morsel = |range: Range<usize>| -> Result<(Vec<Row>, u64)> {
        let mut comparisons = 0u64;
        let mut out = Vec::new();
        for pi in range {
            let prow = &probe_rows[pi];
            tick(gov, "hash_join")?;
            let key = probe_source.key_at(pi, outer, ctx)?;
            if key.has_null() {
                continue;
            }
            if let Some(idxs) = table.get(&key) {
                for &bi in idxs {
                    comparisons += 1;
                    if let Some(g) = gov {
                        g.emit_rows(1, row_bytes, "hash_join")?;
                    }
                    let mut combined = Vec::with_capacity(build_rows[bi].len() + prow.len());
                    combined.extend(build_rows[bi].iter().cloned());
                    combined.extend(prow.iter().cloned());
                    out.push(combined);
                }
            }
        }
        Ok((out, comparisons))
    };
    let (out, comparisons) = if probe_workers == 1 {
        probe_morsel(0..probe_rows.len())?
    } else {
        let chunks = parallel_morsels(probe_rows.len(), probe_workers, |_, range| {
            probe_morsel(range)
        })?;
        let comparisons = chunks.iter().map(|(_, c)| c).sum();
        (
            concat_rows(chunks.into_iter().map(|(rows, _)| rows).collect()),
            comparisons,
        )
    };
    if let Some(s) = stats {
        s.comparisons += comparisons;
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

/// Nested-loop join. The outer (left) loop is morsel-parallel: each probe
/// row's inner scan is independent, and concatenating morsel outputs
/// reproduces the serial emission order for every join kind.
#[allow(clippy::too_many_arguments)]
fn exec_nested_loop_join(
    left: Batch,
    right: Batch,
    kind: JoinType,
    on: Option<&BoundExpr>,
    schema: &Schema,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
    ctx: ExecCtx<'_>,
) -> Result<Rows> {
    let gov = ctx.gov;
    let row_bytes = est_row_bytes(schema);
    let emit = |n: u64| -> Result<()> {
        match gov {
            Some(g) => g.emit_rows(n, row_bytes, "nested_loop_join"),
            None => Ok(()),
        }
    };
    let left_rows = left.rows();
    let right_rows = right.rows();
    let right_width = right.schema().len();
    // Gate on the total pair count (the actual work), but the split
    // granularity is left-side morsels — a left under one morsel runs
    // serially regardless of how large the right side is.
    let pairs = left_rows.len().saturating_mul(right_rows.len());
    let workers = if ctx.threads <= 1 || pairs < PAR_THRESHOLD {
        1
    } else {
        ctx.threads.min(left_rows.len().div_ceil(MORSEL_ROWS))
    };
    let outer_morsel = |range: Range<usize>| -> Result<(Vec<Row>, u64)> {
        let mut comparisons = 0u64;
        let mut out = Vec::new();
        for lrow in &left_rows[range] {
            let mut matched = false;
            for rrow in right_rows {
                tick(gov, "nested_loop_join")?;
                comparisons += 1;
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                let pass = match on {
                    None => true,
                    Some(cond) => eval_predicate_on_row(cond, &combined, outer, ctx)? == Some(true),
                };
                if !pass {
                    continue;
                }
                matched = true;
                match kind {
                    JoinType::Inner | JoinType::LeftOuter => {
                        emit(1)?;
                        out.push(combined);
                    }
                    JoinType::Semi | JoinType::Anti => break,
                }
            }
            match kind {
                JoinType::LeftOuter if !matched => {
                    emit(1)?;
                    let mut combined = lrow.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(combined);
                }
                JoinType::Semi if matched => {
                    emit(1)?;
                    out.push(lrow.clone());
                }
                JoinType::Anti if !matched => {
                    emit(1)?;
                    out.push(lrow.clone());
                }
                _ => {}
            }
        }
        Ok((out, comparisons))
    };
    if let Some(s) = stats.as_deref_mut() {
        s.threads_used = s.threads_used.max(workers as u64);
    }
    let (out, comparisons) = if workers == 1 {
        outer_morsel(0..left_rows.len())?
    } else {
        let chunks = parallel_morsels(left_rows.len(), workers, |_, range| outer_morsel(range))?;
        let comparisons = chunks.iter().map(|(_, c)| c).sum();
        (
            concat_rows(chunks.into_iter().map(|(rows, _)| rows).collect()),
            comparisons,
        )
    };
    if let Some(s) = stats {
        s.build_rows += right.len() as u64;
        s.probe_rows += left.len() as u64;
        s.comparisons += comparisons;
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Accumulator for one aggregate within one group.
///
/// Float sums use [`ExactSum`], so SUM/AVG results depend only on the input
/// multiset — never on accumulation or merge order.
#[derive(Debug, Clone)]
enum Accumulator {
    Count(i64),
    SumInt { sum: i64, seen: bool },
    SumFloat { sum: Box<ExactSum>, seen: bool },
    MinMax { best: Option<Value>, is_min: bool },
    Avg { sum: Box<ExactSum>, count: i64 },
}

impl Accumulator {
    fn new(func: AggFunc) -> Accumulator {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::SumInt {
                sum: 0,
                seen: false,
            },
            AggFunc::Min => Accumulator::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => Accumulator::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Avg => Accumulator::Avg {
                sum: Box::new(ExactSum::new()),
                count: 0,
            },
        }
    }

    fn update(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            // SQL aggregates skip NULL inputs (COUNT(e) counts non-NULL).
            return Ok(());
        }
        match self {
            Accumulator::Count(n) => *n += 1,
            Accumulator::SumInt { sum, seen } => match value {
                Value::Int(v) => {
                    *sum = sum
                        .checked_add(*v)
                        .ok_or_else(|| EngineError::Eval("integer overflow in SUM".into()))?;
                    *seen = true;
                }
                Value::Float(v) => {
                    let mut promoted = Box::new(ExactSum::new());
                    promoted.add_i64(*sum);
                    promoted.add(*v);
                    *self = Accumulator::SumFloat {
                        sum: promoted,
                        seen: true,
                    };
                }
                other => {
                    return Err(EngineError::TypeError(format!(
                        "SUM over {}",
                        other.type_name()
                    )))
                }
            },
            Accumulator::SumFloat { sum, seen } => {
                match value {
                    Value::Int(v) => sum.add_i64(*v),
                    other => {
                        let Some(v) = other.as_f64()? else {
                            return Ok(()); // non-null checked above; defensive
                        };
                        sum.add(v);
                    }
                }
                *seen = true;
            }
            Accumulator::MinMax { best, is_min } => {
                let replace = match best {
                    None => true,
                    Some(b) => {
                        let ord = value.sql_cmp(b)?.ok_or_else(|| {
                            EngineError::TypeError("incomparable values in MIN/MAX".into())
                        })?;
                        if *is_min {
                            ord.is_lt()
                        } else {
                            ord.is_gt()
                        }
                    }
                };
                if replace {
                    *best = Some(value.clone());
                }
            }
            Accumulator::Avg { sum, count } => {
                match value {
                    Value::Int(v) => sum.add_i64(*v),
                    other => {
                        let Some(v) = other.as_f64()? else {
                            return Ok(());
                        };
                        sum.add(v);
                    }
                }
                *count += 1;
            }
        }
        Ok(())
    }

    fn count_row(&mut self) {
        if let Accumulator::Count(n) = self {
            *n += 1;
        }
    }

    /// Bulk `COUNT(*)`: every input row counts, NULL or not.
    fn count_rows(&mut self, n: i64) {
        if let Accumulator::Count(c) = self {
            *c += n;
        }
    }

    /// Fold `range` of a column chunk into the accumulator — the
    /// vectorized inner loop of global aggregation. Typed loops cover the
    /// hot combinations (COUNT over anything, SUM/MIN/MAX/AVG over integer
    /// columns, AVG over float columns); everything else falls back to
    /// per-value [`Accumulator::update`] over the chunk, which is still
    /// pivot-free. Value-level semantics (NULL skipping, overflow, the
    /// Int→Float SUM promotion) match the row path exactly.
    fn update_column(&mut self, chunk: &ColumnChunk, range: Range<usize>) -> Result<()> {
        match (&mut *self, &chunk.data) {
            (Accumulator::Count(c), _) => {
                let nulls = chunk.null_count_range(range.start, range.end);
                *c += (range.len() - nulls) as i64;
                return Ok(());
            }
            (Accumulator::SumInt { sum, seen }, ColumnData::Int(vals)) => {
                for i in range {
                    if chunk.is_null(i) {
                        continue;
                    }
                    *sum = sum
                        .checked_add(vals[i])
                        .ok_or_else(|| EngineError::Eval("integer overflow in SUM".into()))?;
                    *seen = true;
                }
                return Ok(());
            }
            (Accumulator::Avg { sum, count }, ColumnData::Int(vals)) => {
                for i in range {
                    if chunk.is_null(i) {
                        continue;
                    }
                    sum.add_i64(vals[i]);
                    *count += 1;
                }
                return Ok(());
            }
            (Accumulator::Avg { sum, count }, ColumnData::Float(vals)) => {
                for i in range {
                    if chunk.is_null(i) {
                        continue;
                    }
                    sum.add(vals[i]);
                    *count += 1;
                }
                return Ok(());
            }
            (Accumulator::MinMax { best, is_min }, ColumnData::Int(vals))
                if matches!(best, None | Some(Value::Int(_))) =>
            {
                let mut cur: Option<i64> = match best {
                    Some(Value::Int(b)) => Some(*b),
                    _ => None,
                };
                for i in range {
                    if chunk.is_null(i) {
                        continue;
                    }
                    let v = vals[i];
                    cur = Some(match cur {
                        None => v,
                        Some(b) => {
                            if *is_min {
                                b.min(v)
                            } else {
                                b.max(v)
                            }
                        }
                    });
                }
                if let Some(b) = cur {
                    *best = Some(Value::Int(b));
                }
                return Ok(());
            }
            _ => {}
        }
        for i in range {
            if chunk.is_null(i) {
                continue;
            }
            self.update(&chunk.value_at(i))?;
        }
        Ok(())
    }

    /// Fold another partial state for the same aggregate spec into `self`
    /// (morsel-parallel aggregation). NULL-skipping semantics are encoded
    /// in the partial states already (`seen` flags, `count`s), so merging
    /// is pure arithmetic; mixed Int/Float SUM partials promote to float
    /// exactly as the serial accumulator does on its first float input.
    /// Float SUM/AVG partials merge exactly ([`ExactSum`]), so the merge
    /// order never changes the result.
    fn merge(&mut self, other: Accumulator) -> Result<()> {
        match (&mut *self, other) {
            (Accumulator::Count(a), Accumulator::Count(b)) => {
                *a += b;
            }
            (Accumulator::SumInt { sum, seen }, Accumulator::SumInt { sum: s2, seen: e2 }) => {
                *sum = sum
                    .checked_add(s2)
                    .ok_or_else(|| EngineError::Eval("integer overflow in SUM".into()))?;
                *seen |= e2;
            }
            (
                Accumulator::SumInt { sum, seen },
                Accumulator::SumFloat {
                    sum: mut f,
                    seen: e2,
                },
            ) => {
                f.add_i64(*sum);
                *self = Accumulator::SumFloat {
                    sum: f,
                    seen: *seen || e2,
                };
            }
            (Accumulator::SumFloat { sum, seen }, Accumulator::SumInt { sum: i, seen: e2 }) => {
                sum.add_i64(i);
                *seen |= e2;
            }
            (Accumulator::SumFloat { sum, seen }, Accumulator::SumFloat { sum: f, seen: e2 }) => {
                sum.merge(&f);
                *seen |= e2;
            }
            (Accumulator::MinMax { best, is_min }, Accumulator::MinMax { best: b2, .. }) => {
                if let Some(v) = b2 {
                    let replace = match best {
                        None => true,
                        Some(cur) => {
                            let ord = v.sql_cmp(cur)?.ok_or_else(|| {
                                EngineError::TypeError("incomparable values in MIN/MAX".into())
                            })?;
                            if *is_min {
                                ord.is_lt()
                            } else {
                                ord.is_gt()
                            }
                        }
                    };
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (Accumulator::Avg { sum, count }, Accumulator::Avg { sum: s2, count: c2 }) => {
                sum.merge(&s2);
                *count += c2;
            }
            // Partials for one spec always share a variant family; reaching
            // here is an executor bug, reported as an error, never a panic.
            _ => {
                return Err(EngineError::Execution(
                    "mismatched accumulator variants in parallel merge".into(),
                ))
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(n),
            Accumulator::SumInt { sum, seen } => {
                if seen {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::SumFloat { mut sum, seen } => {
                if seen {
                    Value::Float(sum.to_f64())
                } else {
                    Value::Null
                }
            }
            Accumulator::MinMax { best, .. } => best.unwrap_or(Value::Null),
            Accumulator::Avg { mut sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    // One exact sum, one rounding, one division: the result
                    // is a pure function of the input multiset.
                    Value::Float(sum.to_f64() / count as f64)
                }
            }
        }
    }
}

/// State for one group: accumulators plus per-aggregate distinct filters.
struct GroupState {
    accs: Vec<Accumulator>,
    distinct_seen: Vec<Option<HashSet<KeyValue>>>,
}

impl GroupState {
    fn new(aggs: &[AggSpec]) -> GroupState {
        GroupState {
            accs: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            distinct_seen: aggs
                .iter()
                .map(|a| {
                    if a.distinct {
                        Some(HashSet::new())
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }

    fn update(
        &mut self,
        aggs: &[AggSpec],
        row: &[Value],
        outer: Option<&Env<'_>>,
        ctx: ExecCtx<'_>,
    ) -> Result<()> {
        for (i, spec) in aggs.iter().enumerate() {
            match &spec.arg {
                None => self.accs[i].count_row(),
                Some(arg) => {
                    let v = eval_on_row(arg, row, outer, ctx)?;
                    if let Some(seen) = &mut self.distinct_seen[i] {
                        if v.is_null() || !seen.insert(KeyValue::from(&v)) {
                            continue;
                        }
                    }
                    self.accs[i].update(&v)?;
                }
            }
        }
        Ok(())
    }

    /// Columnar twin of [`GroupState::update`]: aggregate arguments are
    /// read straight from their column chunks (`argidx[k]` is the chunk
    /// index for spec `k`, `None` for `COUNT(*)`).
    fn update_cols(
        &mut self,
        aggs: &[AggSpec],
        argidx: &[Option<usize>],
        cols: &ColBatch,
        i: usize,
    ) -> Result<()> {
        for (k, _spec) in aggs.iter().enumerate() {
            match argidx[k] {
                None => self.accs[k].count_row(),
                Some(ci) => {
                    let v = cols.col(ci).value_at(i);
                    if let Some(seen) = &mut self.distinct_seen[k] {
                        if v.is_null() || !seen.insert(KeyValue::from(&v)) {
                            continue;
                        }
                    }
                    self.accs[k].update(&v)?;
                }
            }
        }
        Ok(())
    }
}

fn exec_aggregate(
    input: Batch,
    group_exprs: &[BoundExpr],
    aggs: &[AggSpec],
    schema: &Schema,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
    ctx: ExecCtx<'_>,
) -> Result<Rows> {
    let gov = ctx.gov;
    let workers = par_workers(input.len(), ctx.threads);
    if let Some(s) = stats.as_deref_mut() {
        s.threads_used = s.threads_used.max(workers as u64);
    }
    // Kernel path: plain-column group keys and aggregate arguments over a
    // columnar input run without pivoting (typed bulk loops for global
    // aggregates, chunk reads for grouped ones).
    if ctx.columnar {
        match exec_aggregate_columnar(
            &input,
            group_exprs,
            aggs,
            schema,
            stats.as_deref_mut(),
            ctx,
            workers,
        ) {
            Ok(Some(rows)) => return Ok(rows),
            Ok(None) => {}
            // Value-level errors replay on the row path so the reported
            // error is the one the serial row-major scan hits first (the
            // columnar path visits values column-major).
            Err(EngineError::TypeError(_) | EngineError::Eval(_)) => {}
            Err(e) => return Err(e),
        }
    }
    let rows = input.rows();
    if workers > 1 {
        return aggregate_parallel(
            rows.len(),
            workers,
            aggs,
            group_exprs.is_empty(),
            schema,
            gov,
            stats,
            |i| project_row(&rows[i], group_exprs, outer, ctx),
            |pg, i| pg.update(aggs, &rows[i], i, outer, ctx),
        );
    }
    aggregate_serial(
        rows.len(),
        aggs,
        group_exprs.is_empty(),
        schema,
        gov,
        stats,
        |i| project_row(&rows[i], group_exprs, outer, ctx),
        |state, i| state.update(aggs, &rows[i], outer, ctx),
    )
}

/// Serial grouped aggregation over `n` input positions. `group_vals_at`
/// yields the group-key values for a position and `update` folds a
/// position into its group's state; the two closures are the row/columnar
/// switch (expression evaluation over pivoted rows vs direct chunk reads).
/// Group output order is first-seen order, deterministic either way.
#[allow(clippy::too_many_arguments)]
fn aggregate_serial<GV, UP>(
    n: usize,
    aggs: &[AggSpec],
    group_is_empty: bool,
    schema: &Schema,
    gov: Option<&Governor>,
    stats: Option<&mut NodeStats>,
    group_vals_at: GV,
    mut update: UP,
) -> Result<Rows>
where
    GV: Fn(usize) -> Result<Row>,
    UP: FnMut(&mut GroupState, usize) -> Result<()>,
{
    let mut groups: HashMap<Key, (Row, GroupState)> = HashMap::new();
    // Preserve first-seen group order for deterministic output.
    let mut order: Vec<Key> = Vec::new();
    // Group table footprint: per-group key, group values, accumulators.
    let per_group = group_footprint(aggs);
    // Reserve memory as the group table grows, so a high-cardinality GROUP
    // BY trips the budget while building rather than after.
    let mut reserved_cap = 0usize;

    for i in 0..n {
        tick(gov, "aggregate")?;
        let group_vals = group_vals_at(i)?;
        let key = Key::from_values(&group_vals);
        match groups.entry(key.clone()) {
            Entry::Occupied(mut e) => update(&mut e.get_mut().1, i)?,
            Entry::Vacant(e) => {
                let mut state = GroupState::new(aggs);
                update(&mut state, i)?;
                e.insert((group_vals, state));
                order.push(key);
            }
        }
        if groups.capacity() > reserved_cap {
            if let Some(g) = gov {
                g.reserve_mem(
                    ((groups.capacity() - reserved_cap) * per_group) as u64,
                    "aggregate",
                )?;
            }
            reserved_cap = groups.capacity();
        }
    }

    if let Some(s) = stats {
        s.build_rows += n as u64;
        s.est_mem_bytes += (groups.capacity() * per_group) as u64;
    }

    // A global aggregate (no GROUP BY) over zero rows yields one row of
    // "empty" aggregate values.
    if group_is_empty && groups.is_empty() {
        return Ok(Rows {
            schema: schema.clone(),
            rows: vec![empty_aggregate_row(aggs)],
        });
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let Some((group_vals, state)) = groups.remove(&key) else {
            continue; // defensive: order and groups are built in lockstep
        };
        let mut row = group_vals;
        row.extend(state.accs.into_iter().map(Accumulator::finish));
        out.push(row);
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

/// The columnar aggregation dispatch: `Ok(None)` means "not applicable,
/// run the row path" (row-shaped input, or a group key / aggregate
/// argument that is not a plain column).
fn exec_aggregate_columnar(
    input: &Batch,
    group_exprs: &[BoundExpr],
    aggs: &[AggSpec],
    schema: &Schema,
    mut stats: Option<&mut NodeStats>,
    ctx: ExecCtx<'_>,
    workers: usize,
) -> Result<Option<Rows>> {
    let gov = ctx.gov;
    let Some(cols) = input.cols() else {
        return Ok(None);
    };
    let Some(gidx) = kernels::column_indices(group_exprs) else {
        return Ok(None);
    };
    let mut argidx: Vec<Option<usize>> = Vec::with_capacity(aggs.len());
    for spec in aggs {
        match &spec.arg {
            None => argidx.push(None),
            Some(BoundExpr::Column { depth: 0, index }) => argidx.push(Some(*index)),
            Some(_) => return Ok(None),
        }
    }
    let n = cols.len();

    // Global aggregates without DISTINCT: one typed bulk pass per argument
    // column ([`Accumulator::update_column`]), morsel-parallel partials
    // merged exactly like the row path's.
    if gidx.is_empty() && aggs.iter().all(|a| !a.distinct) {
        let run = |accs: &mut Vec<Accumulator>, range: Range<usize>| -> Result<()> {
            ticks(gov, range.len() as u64, "aggregate")?;
            for (acc, ai) in accs.iter_mut().zip(&argidx) {
                match ai {
                    None => acc.count_rows(range.len() as i64),
                    Some(ci) => acc.update_column(cols.col(*ci), range.clone())?,
                }
            }
            Ok(())
        };
        let mut accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
        if workers == 1 {
            run(&mut accs, 0..n)?;
        } else {
            let partials = parallel_fold(
                n,
                workers,
                || {
                    aggs.iter()
                        .map(|a| Accumulator::new(a.func))
                        .collect::<Vec<_>>()
                },
                |acc, range| run(acc, range),
            )?;
            for partial in partials {
                for (acc, part) in accs.iter_mut().zip(partial) {
                    acc.merge(part)?;
                }
            }
        }
        if let Some(s) = stats.as_deref_mut() {
            s.build_rows += n as u64;
        }
        let row: Row = accs.into_iter().map(Accumulator::finish).collect();
        // Over zero rows the fresh accumulators finish to exactly the
        // "empty" aggregate row the row path emits.
        return Ok(Some(Rows {
            schema: schema.clone(),
            rows: vec![row],
        }));
    }

    // Grouped (or DISTINCT) aggregation: group keys read from the key
    // chunks, arguments from theirs — the same first-seen-order machinery
    // as the row path, minus the pivot.
    let group_vals_at =
        |i: usize| -> Result<Row> { Ok(gidx.iter().map(|&c| cols.col(c).value_at(i)).collect()) };
    let out = if workers > 1 {
        aggregate_parallel(
            n,
            workers,
            aggs,
            group_exprs.is_empty(),
            schema,
            gov,
            stats,
            group_vals_at,
            |pg, i| pg.update_cols(aggs, &argidx, cols, i),
        )?
    } else {
        aggregate_serial(
            n,
            aggs,
            group_exprs.is_empty(),
            schema,
            gov,
            stats,
            group_vals_at,
            |state, i| state.update_cols(aggs, &argidx, cols, i),
        )?
    };
    Ok(Some(out))
}

/// Group table footprint: per-group key, group values, accumulators.
fn group_footprint(aggs: &[AggSpec]) -> usize {
    mem::size_of::<Key>()
        + mem::size_of::<(Row, GroupState)>()
        + aggs.len() * mem::size_of::<Accumulator>()
}

/// The one output row of a global aggregate over zero input rows.
fn empty_aggregate_row(aggs: &[AggSpec]) -> Row {
    GroupState::new(aggs)
        .accs
        .into_iter()
        .map(Accumulator::finish)
        .collect()
}

/// One group's partial state on one worker.
struct PartialGroup {
    /// Global index of the first input row seen for this group — the merge
    /// key for both output ordering (serial first-seen order) and picking
    /// the representative group values.
    first_idx: usize,
    group_vals: Row,
    accs: Vec<Accumulator>,
    /// For DISTINCT aggregates: distinct input value -> (global index of
    /// its first occurrence, that first value). The accumulator for such a
    /// spec stays untouched until [`finish_partial_group`] replays the
    /// merged distinct values in first-occurrence order — reproducing the
    /// serial fold exactly (including which of `2` / `2.0` survives).
    distinct: Vec<Option<HashMap<KeyValue, (usize, Value)>>>,
}

impl PartialGroup {
    fn new(first_idx: usize, group_vals: Row, aggs: &[AggSpec]) -> PartialGroup {
        PartialGroup {
            first_idx,
            group_vals,
            accs: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            distinct: aggs
                .iter()
                .map(|a| {
                    if a.distinct {
                        Some(HashMap::new())
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }

    fn update(
        &mut self,
        aggs: &[AggSpec],
        row: &[Value],
        row_idx: usize,
        outer: Option<&Env<'_>>,
        ctx: ExecCtx<'_>,
    ) -> Result<()> {
        for (i, spec) in aggs.iter().enumerate() {
            match &spec.arg {
                None => self.accs[i].count_row(),
                Some(arg) => {
                    let v = eval_on_row(arg, row, outer, ctx)?;
                    if let Some(seen) = &mut self.distinct[i] {
                        if !v.is_null() {
                            // First occurrence wins; a worker's row indexes
                            // are increasing, so entry() keeps the earliest.
                            seen.entry(KeyValue::from(&v)).or_insert((row_idx, v));
                        }
                    } else {
                        self.accs[i].update(&v)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Columnar twin of [`PartialGroup::update`]: arguments come from
    /// their column chunks instead of a pivoted row.
    fn update_cols(
        &mut self,
        aggs: &[AggSpec],
        argidx: &[Option<usize>],
        cols: &ColBatch,
        row_idx: usize,
    ) -> Result<()> {
        for (k, _spec) in aggs.iter().enumerate() {
            match argidx[k] {
                None => self.accs[k].count_row(),
                Some(ci) => {
                    let v = cols.col(ci).value_at(row_idx);
                    if let Some(seen) = &mut self.distinct[k] {
                        if !v.is_null() {
                            seen.entry(KeyValue::from(&v)).or_insert((row_idx, v));
                        }
                    } else {
                        self.accs[k].update(&v)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold `other` (same group, another worker) into `self`.
    fn merge(&mut self, other: PartialGroup) -> Result<()> {
        if other.first_idx < self.first_idx {
            self.first_idx = other.first_idx;
            self.group_vals = other.group_vals;
        }
        for (acc, o) in self.accs.iter_mut().zip(other.accs) {
            acc.merge(o)?;
        }
        for (mine, theirs) in self.distinct.iter_mut().zip(other.distinct) {
            if let (Some(m), Some(t)) = (mine, theirs) {
                for (kv, (idx, v)) in t {
                    match m.entry(kv) {
                        Entry::Occupied(mut e) => {
                            if idx < e.get().0 {
                                e.insert((idx, v));
                            }
                        }
                        Entry::Vacant(e) => {
                            e.insert((idx, v));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Finish a merged group: replay DISTINCT values in global first-seen
/// order into their accumulators, then finalize all of them.
fn finish_partial_group(mut pg: PartialGroup) -> Result<Row> {
    for (i, seen) in pg.distinct.iter_mut().enumerate() {
        if let Some(seen) = seen.take() {
            let mut vals: Vec<(usize, Value)> = seen.into_values().collect();
            vals.sort_unstable_by_key(|(idx, _)| *idx);
            for (_, v) in vals {
                pg.accs[i].update(&v)?;
            }
        }
    }
    let mut row = pg.group_vals;
    row.extend(pg.accs.into_iter().map(Accumulator::finish));
    Ok(row)
}

/// Morsel-parallel aggregation: each worker folds the morsels it claims
/// into a private partial group table; the coordinator merges the partial
/// tables ([`Accumulator::merge`]) and emits groups ordered by global
/// first-seen row index — the exact group order of the serial path.
#[allow(clippy::too_many_arguments)]
fn aggregate_parallel<GV, UP>(
    n: usize,
    workers: usize,
    aggs: &[AggSpec],
    group_is_empty: bool,
    schema: &Schema,
    gov: Option<&Governor>,
    stats: Option<&mut NodeStats>,
    group_vals_at: GV,
    update: UP,
) -> Result<Rows>
where
    GV: Fn(usize) -> Result<Row> + Sync,
    UP: Fn(&mut PartialGroup, usize) -> Result<()> + Sync,
{
    let per_group = group_footprint(aggs);

    struct WorkerTable {
        groups: HashMap<Key, PartialGroup>,
        reserved_cap: usize,
    }
    let tables = parallel_fold(
        n,
        workers,
        || WorkerTable {
            groups: HashMap::new(),
            reserved_cap: 0,
        },
        |acc, range| {
            for idx in range {
                tick(gov, "aggregate")?;
                let group_vals = group_vals_at(idx)?;
                let key = Key::from_values(&group_vals);
                match acc.groups.entry(key) {
                    Entry::Occupied(mut e) => {
                        update(e.get_mut(), idx)?;
                    }
                    Entry::Vacant(e) => {
                        let pg = e.insert(PartialGroup::new(idx, group_vals, aggs));
                        update(pg, idx)?;
                    }
                }
                if acc.groups.capacity() > acc.reserved_cap {
                    if let Some(g) = gov {
                        g.reserve_mem(
                            ((acc.groups.capacity() - acc.reserved_cap) * per_group) as u64,
                            "aggregate",
                        )?;
                    }
                    acc.reserved_cap = acc.groups.capacity();
                }
            }
            Ok(())
        },
    )?;

    let est_mem: u64 = tables
        .iter()
        .map(|t| (t.groups.capacity() * per_group) as u64)
        .sum();
    if let Some(s) = stats {
        s.build_rows += n as u64;
        s.est_mem_bytes += est_mem;
    }

    // Merge worker tables; first-seen indexes make the merge order
    // irrelevant.
    let mut merged: HashMap<Key, PartialGroup> = HashMap::new();
    for table in tables {
        for (key, pg) in table.groups {
            match merged.entry(key) {
                Entry::Occupied(mut e) => e.get_mut().merge(pg)?,
                Entry::Vacant(e) => {
                    e.insert(pg);
                }
            }
        }
    }

    if group_is_empty && merged.is_empty() {
        return Ok(Rows {
            schema: schema.clone(),
            rows: vec![empty_aggregate_row(aggs)],
        });
    }

    let mut groups: Vec<PartialGroup> = merged.into_values().collect();
    groups.sort_unstable_by_key(|pg| pg.first_idx);
    let mut out = Vec::with_capacity(groups.len());
    for pg in groups {
        out.push(finish_partial_group(pg)?);
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

/// ORDER BY key comparison: NULLs sort last regardless of direction,
/// otherwise [`Value::total_cmp`] per key, descending keys reversed.
fn cmp_key_vecs(a: &[Value], b: &[Value], keys: &[(BoundExpr, bool)]) -> std::cmp::Ordering {
    for (i, (_, desc)) in keys.iter().enumerate() {
        let ord = match (a[i].is_null(), b[i].is_null()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => {
                let ord = a[i].total_cmp(&b[i]);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            }
        };
        if !ord.is_eq() {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Sort rows by the ORDER BY keys. Keys are evaluated once per row
/// up front (decorate–sort–undecorate), so the comparator never re-runs
/// key expressions.
///
/// With `workers > 1` the decoration is morsel-parallel and the sort runs
/// as per-worker `sort_unstable_by` over contiguous runs followed by a
/// k-way merge. The comparator is extended with the original row index as
/// the final tie-break, which makes the unstable per-run sorts and the
/// merge reproduce the serial *stable* sort bit for bit.
fn exec_sort(
    mut input: Rows,
    keys: &[(BoundExpr, bool)],
    outer: Option<&Env<'_>>,
    ctx: ExecCtx<'_>,
    workers: usize,
) -> Result<Rows> {
    let gov = ctx.gov;
    if workers == 1 {
        let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(input.rows.len());
        for row in input.rows.drain(..) {
            tick(gov, "sort")?;
            let mut kv = Vec::with_capacity(keys.len());
            for (expr, _) in keys {
                kv.push(eval_on_row(expr, &row, outer, ctx)?);
            }
            decorated.push((kv, row));
        }
        decorated.sort_by(|(a, _), (b, _)| cmp_key_vecs(a, b, keys));
        input.rows = decorated.into_iter().map(|(_, r)| r).collect();
        return Ok(input);
    }

    // Evaluate the key vectors in parallel, then decorate each row with
    // (keys, original index) — the index doubles as the stability
    // tie-break below.
    let rows = mem::take(&mut input.rows);
    let chunks = parallel_morsels(rows.len(), workers, |_, range| {
        let mut out = Vec::with_capacity(range.len());
        for idx in range {
            tick(gov, "sort")?;
            let mut kv = Vec::with_capacity(keys.len());
            for (expr, _) in keys {
                kv.push(eval_on_row(expr, &rows[idx], outer, ctx)?);
            }
            out.push(kv);
        }
        Ok(out)
    })?;
    type Decorated = (Vec<Value>, usize, Row);
    let decorated: Vec<Decorated> = chunks
        .into_iter()
        .flatten()
        .zip(rows)
        .enumerate()
        .map(|(idx, (kv, row))| (kv, idx, row))
        .collect();

    // Split into contiguous runs and sort each on its own thread. The
    // (keys, index) comparator is a total order, so unstable sorting is
    // deterministic.
    let run_len = decorated.len().div_ceil(workers).max(1);
    let mut runs: Vec<Vec<Decorated>> = Vec::with_capacity(workers);
    let mut rest = decorated;
    while rest.len() > run_len {
        let tail = rest.split_off(run_len);
        runs.push(rest);
        rest = tail;
    }
    if !rest.is_empty() {
        runs.push(rest);
    }
    let mut sorted_runs: Vec<Vec<Decorated>> = parallel_tasks(runs, |_, mut run| {
        run.sort_unstable_by(|(a, ai, _), (b, bi, _)| cmp_key_vecs(a, b, keys).then(ai.cmp(bi)));
        Ok(run)
    })?;

    // K-way merge via iterated pairwise merges (k is small: <= workers).
    while sorted_runs.len() > 1 {
        let b = sorted_runs.pop().unwrap_or_default();
        let a = sorted_runs.pop().unwrap_or_default();
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
        loop {
            match (ia.peek(), ib.peek()) {
                (Some((ka, na, _)), Some((kb, nb, _))) => {
                    let take_a = cmp_key_vecs(ka, kb, keys).then(na.cmp(nb)).is_le();
                    if take_a {
                        merged.extend(ia.next());
                    } else {
                        merged.extend(ib.next());
                    }
                }
                (Some(_), None) => merged.extend(ia.by_ref()),
                (None, Some(_)) => merged.extend(ib.by_ref()),
                (None, None) => break,
            }
        }
        sorted_runs.push(merged);
    }
    input.rows = sorted_runs
        .pop()
        .unwrap_or_default()
        .into_iter()
        .map(|(_, _, r)| r)
        .collect();
    Ok(input)
}
