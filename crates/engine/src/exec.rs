//! Plan executor: materialized, operator-at-a-time evaluation.
//!
//! Operators exchange [`Batch`]es: either freshly-computed owned rows or a
//! shared reference to pre-materialized rows (base-table scans and
//! materialized CTEs). Read-only consumers — join build/probe sides,
//! aggregation inputs, filters — iterate shared batches without copying
//! them, so a scan feeding a join never clones the whole table.
//!
//! Every operator is governed: hot loops call [`Governor::tick`]
//! cooperatively, joins account each emitted row ([`Governor::emit_row`]),
//! hash tables / group tables / distinct sets reserve their estimated
//! footprint, and non-join operators batch-commit their output row counts.
//! Row and memory accounting is therefore *cumulative over intermediate
//! results* (a budget on total work), not an instantaneous peak.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::mem;
use std::sync::Arc;
use std::time::Instant;

use crate::error::{EngineError, Result};
use crate::expr::{BoundExpr, Env};
use crate::faults;
use crate::governor::Governor;
use crate::plan::{AggFunc, AggSpec, JoinType, Plan};
use crate::schema::Schema;
use crate::stats::NodeStats;
use crate::table::{Row, Rows};
use crate::value::{Key, KeyValue, Value};

/// An operator's output: owned rows, or a shared batch plus the schema it
/// is viewed under (scans re-qualify the stored schema per binding).
pub enum Batch {
    Owned(Rows),
    Shared { rows: Arc<Rows>, schema: Schema },
}

impl Batch {
    pub fn schema(&self) -> &Schema {
        match self {
            Batch::Owned(r) => &r.schema,
            Batch::Shared { schema, .. } => schema,
        }
    }

    pub fn rows(&self) -> &[Row] {
        match self {
            Batch::Owned(r) => &r.rows,
            Batch::Shared { rows, .. } => &rows.rows,
        }
    }

    pub fn len(&self) -> usize {
        self.rows().len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows().is_empty()
    }

    /// Convert into owned rows, cloning when shared.
    pub fn into_rows(self) -> Rows {
        match self {
            Batch::Owned(r) => r,
            Batch::Shared { rows, schema } => Rows {
                schema,
                rows: rows.rows.clone(),
            },
        }
    }
}

/// Execute a plan to fully-owned rows. `outer` is the enclosing row
/// environment for correlated subquery plans; `None` at the top level. The
/// governor, if any, is inherited from `outer` — correlated subqueries stay
/// under the enclosing query's budget.
pub fn execute(plan: &Plan, outer: Option<&Env<'_>>) -> Result<Rows> {
    let gov = outer.and_then(|e| e.gov);
    execute_governed(plan, outer, gov)
}

/// Execute a plan to fully-owned rows under an explicit resource governor.
pub fn execute_governed(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
) -> Result<Rows> {
    Ok(execute_batch_stats(plan, outer, None, gov)?.into_rows())
}

/// Execute a plan, sharing pre-materialized rows where possible.
pub fn execute_batch(plan: &Plan, outer: Option<&Env<'_>>) -> Result<Batch> {
    let gov = outer.and_then(|e| e.gov);
    execute_batch_stats(plan, outer, None, gov)
}

/// Execute a plan, additionally collecting per-operator runtime stats into
/// a [`NodeStats`] tree shaped like the plan (`EXPLAIN ANALYZE`).
pub fn execute_traced(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
) -> Result<(Rows, NodeStats)> {
    let mut stats = NodeStats::for_plan(plan);
    let rows = execute_batch_stats(plan, outer, Some(&mut stats), gov)?.into_rows();
    Ok((rows, stats))
}

/// Rough footprint of a materialized row set (used when reserving memory
/// for CTEs and join outputs).
pub fn rows_bytes(rows: &Rows) -> u64 {
    est_row_bytes(rows.schema.len()) * rows.rows.len() as u64
}

/// Estimated bytes for one materialized row of `width` columns. A crude
/// upper-bound-ish estimate: inline `Value`s plus the row vector header.
/// Heap payloads behind `Arc<str>` are shared and deliberately not charged.
fn est_row_bytes(width: usize) -> u64 {
    (width * mem::size_of::<Value>() + mem::size_of::<Row>()) as u64
}

/// Execute a plan, filling `stats` (when present) for this operator and
/// everything below it. `stats` must mirror the plan's shape — build it
/// with [`NodeStats::for_plan`].
pub fn execute_batch_stats(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
    gov: Option<&Governor>,
) -> Result<Batch> {
    if let Some(g) = gov {
        g.check_now(op_name(plan))?;
    }
    let start = stats.as_ref().map(|_| Instant::now());
    let result = exec_node(plan, outer, &mut stats, gov);
    if let (Some(s), Some(t)) = (stats, start) {
        s.invocations += 1;
        s.wall += t.elapsed();
        if let Ok(batch) = &result {
            s.rows_out += batch.len() as u64;
        }
    }
    // Joins already accounted each emitted row; everything else commits its
    // output batch here, so the row budget bounds cumulative intermediate
    // results no matter which operator inflates them.
    if let (Some(g), Ok(batch)) = (gov, &result) {
        if !matches!(plan, Plan::HashJoin { .. } | Plan::NestedLoopJoin { .. }) {
            g.add_rows(batch.len() as u64, op_name(plan))?;
        }
    }
    result
}

/// Stable operator name used in limit-trip reports and span events.
fn op_name(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "scan",
        Plan::Unit => "unit",
        Plan::Filter { .. } => "filter",
        Plan::Project { .. } => "project",
        Plan::Rename { .. } => "rename",
        Plan::HashJoin { .. } => "hash_join",
        Plan::NestedLoopJoin { .. } => "nested_loop_join",
        Plan::Aggregate { .. } => "aggregate",
        Plan::Distinct { .. } => "distinct",
        Plan::UnionAll { .. } => "union_all",
        Plan::Sort { .. } => "sort",
        Plan::Limit { .. } => "limit",
    }
}

/// Cooperative cancellation/timeout check for hot loops; free when
/// ungoverned.
#[inline]
fn tick(gov: Option<&Governor>, op: &'static str) -> Result<()> {
    match gov {
        Some(g) => g.tick(op),
        None => Ok(()),
    }
}

/// The untimed operator dispatch. Children are executed through
/// [`execute_batch_stats`] with the matching child stats node, so timing
/// nests correctly; operator-internal counters are filled in by the
/// `exec_*` helpers.
fn exec_node(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    stats: &mut Option<&mut NodeStats>,
    gov: Option<&Governor>,
) -> Result<Batch> {
    match plan {
        Plan::Scan { rows, schema } => {
            faults::trip("scan")?;
            Ok(Batch::Shared {
                rows: Arc::clone(rows),
                schema: schema.clone(),
            })
        }
        Plan::Unit => Ok(Batch::Owned(Rows {
            schema: plan.schema().clone(),
            rows: vec![Vec::new()],
        })),
        Plan::Filter { input, predicate } => {
            faults::trip("filter")?;
            let child = execute_batch_stats(input, outer, child_stats(stats, 0), gov)?;
            let mut out = Vec::new();
            for row in child.rows() {
                tick(gov, "filter")?;
                if eval_predicate_on_row(predicate, row, outer, gov)? == Some(true) {
                    out.push(row.clone());
                }
            }
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows: out,
            }))
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            faults::trip("project")?;
            let child = execute_batch_stats(input, outer, child_stats(stats, 0), gov)?;
            let mut out = Vec::with_capacity(child.len());
            for row in child.rows() {
                tick(gov, "project")?;
                out.push(project_row(row, exprs, outer, gov)?);
            }
            Ok(Batch::Owned(Rows {
                schema: schema.clone(),
                rows: out,
            }))
        }
        Plan::Rename { input, schema } => {
            faults::trip("rename")?;
            let child = execute_batch_stats(input, outer, child_stats(stats, 0), gov)?;
            Ok(match child {
                Batch::Owned(r) => Batch::Owned(Rows {
                    schema: schema.clone(),
                    rows: r.rows,
                }),
                Batch::Shared { rows, .. } => Batch::Shared {
                    rows,
                    schema: schema.clone(),
                },
            })
        }
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let l = execute_batch_stats(left, outer, child_stats(stats, 0), gov)?;
            let r = execute_batch_stats(right, outer, child_stats(stats, 1), gov)?;
            Ok(Batch::Owned(exec_hash_join(
                l,
                r,
                *kind,
                left_keys,
                right_keys,
                residual.as_ref(),
                schema,
                outer,
                stats.as_deref_mut(),
                gov,
            )?))
        }
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            faults::trip("nested_loop")?;
            let l = execute_batch_stats(left, outer, child_stats(stats, 0), gov)?;
            let r = execute_batch_stats(right, outer, child_stats(stats, 1), gov)?;
            Ok(Batch::Owned(exec_nested_loop_join(
                l,
                r,
                *kind,
                on.as_ref(),
                schema,
                outer,
                stats.as_deref_mut(),
                gov,
            )?))
        }
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            faults::trip("aggregate.group")?;
            let child = execute_batch_stats(input, outer, child_stats(stats, 0), gov)?;
            Ok(Batch::Owned(exec_aggregate(
                child,
                group_exprs,
                aggs,
                schema,
                outer,
                stats.as_deref_mut(),
                gov,
            )?))
        }
        Plan::Distinct { input } => {
            faults::trip("distinct")?;
            let child = execute_batch_stats(input, outer, child_stats(stats, 0), gov)?;
            let mut seen: HashSet<Key> = HashSet::with_capacity(child.len());
            if let Some(g) = gov {
                g.reserve_mem((seen.capacity() * mem::size_of::<Key>()) as u64, "distinct")?;
            }
            let mut out = Vec::new();
            for row in child.rows() {
                tick(gov, "distinct")?;
                if seen.insert(Key::from_values(row)) {
                    out.push(row.clone());
                }
            }
            if let Some(s) = stats.as_deref_mut() {
                s.build_rows += child.len() as u64;
                s.est_mem_bytes += (seen.capacity() * mem::size_of::<Key>()) as u64;
            }
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows: out,
            }))
        }
        Plan::UnionAll { left, right } => {
            faults::trip("union")?;
            let l = execute_batch_stats(left, outer, child_stats(stats, 0), gov)?;
            let r = execute_batch_stats(right, outer, child_stats(stats, 1), gov)?;
            let mut rows = l.into_rows();
            match r {
                Batch::Owned(o) => rows.rows.extend(o.rows),
                Batch::Shared { rows: shared, .. } => rows.rows.extend(shared.rows.iter().cloned()),
            }
            Ok(Batch::Owned(rows))
        }
        Plan::Sort { input, keys } => {
            faults::trip("sort")?;
            let child = execute_batch_stats(input, outer, child_stats(stats, 0), gov)?.into_rows();
            Ok(Batch::Owned(exec_sort(child, keys, outer, gov)?))
        }
        Plan::Limit { input, n } => {
            faults::trip("limit")?;
            let child = execute_batch_stats(input, outer, child_stats(stats, 0), gov)?;
            let take = (*n as usize).min(child.len());
            let rows = child.rows()[..take].to_vec();
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows,
            }))
        }
    }
}

/// Reborrow the stats node for child `i` of the current operator, keeping
/// the `Option` shape `execute_batch_stats` expects.
fn child_stats<'a>(stats: &'a mut Option<&mut NodeStats>, i: usize) -> Option<&'a mut NodeStats> {
    stats.as_deref_mut().map(|s| &mut s.children[i])
}

/// Evaluate an expression for a given current row, chaining outer scopes.
/// The governor rides along in the environment so correlated subqueries
/// launched from expression evaluation stay governed.
fn eval_on_row(
    expr: &BoundExpr,
    row: &[Value],
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
) -> Result<Value> {
    match outer {
        Some(parent) => expr.eval(&Env::push(row, parent)),
        None => expr.eval(&Env::governed(row, gov)),
    }
}

fn eval_predicate_on_row(
    expr: &BoundExpr,
    row: &[Value],
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
) -> Result<Option<bool>> {
    match outer {
        Some(parent) => expr.eval_predicate(&Env::push(row, parent)),
        None => expr.eval_predicate(&Env::governed(row, gov)),
    }
}

fn project_row(
    row: &[Value],
    exprs: &[BoundExpr],
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
) -> Result<Row> {
    let mut out = Vec::with_capacity(exprs.len());
    for e in exprs {
        out.push(eval_on_row(e, row, outer, gov)?);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn exec_hash_join(
    left: Batch,
    right: Batch,
    kind: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    schema: &Schema,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
    gov: Option<&Governor>,
) -> Result<Rows> {
    if let Some(s) = stats.as_deref_mut() {
        s.build_rows += right.len() as u64;
        s.probe_rows += left.len() as u64;
    }
    let row_bytes = est_row_bytes(schema.len());
    // Joins are the unbounded row generators, so they account output rows
    // (and their bytes) one emission at a time.
    let emit = |n: usize| -> Result<()> {
        match gov {
            Some(g) => g.emit_rows(n as u64, row_bytes, "hash_join"),
            None => Ok(()),
        }
    };
    // Early outs for empty sides: an inner join with an empty input is
    // empty; a semi join against nothing is empty; an anti join against
    // nothing passes everything through. (The annotation-aware Filter often
    // has an empty candidates side on nearly-consistent databases.)
    if right.is_empty() {
        return Ok(match kind {
            JoinType::Inner | JoinType::Semi => Rows {
                schema: schema.clone(),
                rows: Vec::new(),
            },
            JoinType::Anti => {
                emit(left.len())?;
                Rows {
                    schema: schema.clone(),
                    rows: left.into_rows().rows,
                }
            }
            JoinType::LeftOuter => {
                emit(left.len())?;
                let right_width = right.schema().len();
                let rows = left
                    .rows()
                    .iter()
                    .map(|l| {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        row
                    })
                    .collect();
                Rows {
                    schema: schema.clone(),
                    rows,
                }
            }
        });
    }
    if left.is_empty() {
        return Ok(Rows {
            schema: schema.clone(),
            rows: Vec::new(),
        });
    }

    // Inner joins build the hash table on the smaller side; the output
    // column order (left ++ right) is preserved when emitting.
    if kind == JoinType::Inner && left.len() < right.len() && residual.is_none() {
        return exec_hash_join_inner_swapped(
            right, left, right_keys, left_keys, schema, outer, stats, gov,
        );
    }

    // Build on the right side.
    faults::trip("join.build")?;
    let right_rows = right.rows();
    let mut table: HashMap<Key, Vec<usize>> = HashMap::with_capacity(right_rows.len());
    for (i, row) in right_rows.iter().enumerate() {
        tick(gov, "hash_join")?;
        let key = Key::from_values(&project_row(row, right_keys, outer, gov)?);
        if key.has_null() {
            continue; // NULL keys never match under SQL equality.
        }
        table.entry(key).or_default().push(i);
    }
    if let Some(g) = gov {
        g.reserve_mem(hash_table_bytes(&table), "hash_join")?;
    }
    if let Some(s) = stats.as_deref_mut() {
        s.est_mem_bytes += hash_table_bytes(&table);
    }

    faults::trip("join.probe")?;
    let right_width = right.schema().len();
    let mut comparisons = 0u64;
    let mut out = Vec::new();
    for lrow in left.rows() {
        tick(gov, "hash_join")?;
        let key = Key::from_values(&project_row(lrow, left_keys, outer, gov)?);
        let matches = if key.has_null() {
            None
        } else {
            table.get(&key)
        };
        let mut matched = false;
        if let Some(idxs) = matches {
            for &ri in idxs {
                comparisons += 1;
                // Residual conditions are part of the ON clause: they decide
                // whether this candidate pair is a match.
                let pass = match residual {
                    None => true,
                    Some(res) => {
                        let mut combined = lrow.clone();
                        combined.extend(right_rows[ri].iter().cloned());
                        eval_predicate_on_row(res, &combined, outer, gov)? == Some(true)
                    }
                };
                if !pass {
                    continue;
                }
                matched = true;
                match kind {
                    JoinType::Inner | JoinType::LeftOuter => {
                        emit(1)?;
                        let mut combined = lrow.clone();
                        combined.extend(right_rows[ri].iter().cloned());
                        out.push(combined);
                    }
                    JoinType::Semi | JoinType::Anti => break,
                }
            }
        }
        match kind {
            JoinType::LeftOuter if !matched => {
                emit(1)?;
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
            JoinType::Semi if matched => {
                emit(1)?;
                out.push(lrow.clone());
            }
            JoinType::Anti if !matched => {
                emit(1)?;
                out.push(lrow.clone());
            }
            _ => {}
        }
    }
    if let Some(s) = stats {
        s.comparisons += comparisons;
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

/// Rough footprint of a join hash table: map entry overhead plus one
/// row index per build row.
fn hash_table_bytes(table: &HashMap<Key, Vec<usize>>) -> u64 {
    let entry = mem::size_of::<Key>() + mem::size_of::<Vec<usize>>();
    let indices: usize = table.values().map(Vec::len).sum();
    (table.capacity() * entry + indices * mem::size_of::<usize>()) as u64
}

/// Inner hash join probing with the *larger* side: `probe` is the original
/// right input, `build` the original left. Output rows still lay out
/// original-left columns first.
#[allow(clippy::too_many_arguments)]
fn exec_hash_join_inner_swapped(
    probe: Batch,
    build: Batch,
    probe_keys: &[BoundExpr],
    build_keys: &[BoundExpr],
    schema: &Schema,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
    gov: Option<&Governor>,
) -> Result<Rows> {
    faults::trip("join.build")?;
    let row_bytes = est_row_bytes(schema.len());
    let build_rows = build.rows();
    let mut table: HashMap<Key, Vec<usize>> = HashMap::with_capacity(build_rows.len());
    for (i, row) in build_rows.iter().enumerate() {
        tick(gov, "hash_join")?;
        let key = Key::from_values(&project_row(row, build_keys, outer, gov)?);
        if key.has_null() {
            continue;
        }
        table.entry(key).or_default().push(i);
    }
    if let Some(g) = gov {
        g.reserve_mem(hash_table_bytes(&table), "hash_join")?;
    }
    if let Some(s) = stats.as_deref_mut() {
        s.est_mem_bytes += hash_table_bytes(&table);
    }
    if table.is_empty() {
        return Ok(Rows {
            schema: schema.clone(),
            rows: Vec::new(),
        });
    }
    faults::trip("join.probe")?;
    let mut comparisons = 0u64;
    let mut out = Vec::new();
    for prow in probe.rows() {
        tick(gov, "hash_join")?;
        let key = Key::from_values(&project_row(prow, probe_keys, outer, gov)?);
        if key.has_null() {
            continue;
        }
        if let Some(idxs) = table.get(&key) {
            for &bi in idxs {
                comparisons += 1;
                if let Some(g) = gov {
                    g.emit_rows(1, row_bytes, "hash_join")?;
                }
                let mut combined = Vec::with_capacity(build_rows[bi].len() + prow.len());
                combined.extend(build_rows[bi].iter().cloned());
                combined.extend(prow.iter().cloned());
                out.push(combined);
            }
        }
    }
    if let Some(s) = stats {
        s.comparisons += comparisons;
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

#[allow(clippy::too_many_arguments)]
fn exec_nested_loop_join(
    left: Batch,
    right: Batch,
    kind: JoinType,
    on: Option<&BoundExpr>,
    schema: &Schema,
    outer: Option<&Env<'_>>,
    stats: Option<&mut NodeStats>,
    gov: Option<&Governor>,
) -> Result<Rows> {
    let row_bytes = est_row_bytes(schema.len());
    let emit = |n: u64| -> Result<()> {
        match gov {
            Some(g) => g.emit_rows(n, row_bytes, "nested_loop_join"),
            None => Ok(()),
        }
    };
    let right_width = right.schema().len();
    let mut comparisons = 0u64;
    let mut out = Vec::new();
    for lrow in left.rows() {
        let mut matched = false;
        for rrow in right.rows() {
            tick(gov, "nested_loop_join")?;
            comparisons += 1;
            let mut combined = lrow.clone();
            combined.extend(rrow.iter().cloned());
            let pass = match on {
                None => true,
                Some(cond) => eval_predicate_on_row(cond, &combined, outer, gov)? == Some(true),
            };
            if !pass {
                continue;
            }
            matched = true;
            match kind {
                JoinType::Inner | JoinType::LeftOuter => {
                    emit(1)?;
                    out.push(combined);
                }
                JoinType::Semi | JoinType::Anti => break,
            }
        }
        match kind {
            JoinType::LeftOuter if !matched => {
                emit(1)?;
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
            JoinType::Semi if matched => {
                emit(1)?;
                out.push(lrow.clone());
            }
            JoinType::Anti if !matched => {
                emit(1)?;
                out.push(lrow.clone());
            }
            _ => {}
        }
    }
    if let Some(s) = stats {
        s.build_rows += right.len() as u64;
        s.probe_rows += left.len() as u64;
        s.comparisons += comparisons;
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Accumulator for one aggregate within one group.
#[derive(Debug, Clone)]
enum Accumulator {
    Count(i64),
    SumInt { sum: i64, seen: bool },
    SumFloat { sum: f64, seen: bool },
    MinMax { best: Option<Value>, is_min: bool },
    Avg { sum: f64, count: i64 },
}

impl Accumulator {
    fn new(func: AggFunc) -> Accumulator {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::SumInt {
                sum: 0,
                seen: false,
            },
            AggFunc::Min => Accumulator::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => Accumulator::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            // SQL aggregates skip NULL inputs (COUNT(e) counts non-NULL).
            return Ok(());
        }
        match self {
            Accumulator::Count(n) => *n += 1,
            Accumulator::SumInt { sum, seen } => match value {
                Value::Int(v) => {
                    *sum = sum
                        .checked_add(*v)
                        .ok_or_else(|| EngineError::Eval("integer overflow in SUM".into()))?;
                    *seen = true;
                }
                Value::Float(v) => {
                    let promoted = *sum as f64 + v;
                    *self = Accumulator::SumFloat {
                        sum: promoted,
                        seen: true,
                    };
                }
                other => {
                    return Err(EngineError::TypeError(format!(
                        "SUM over {}",
                        other.type_name()
                    )))
                }
            },
            Accumulator::SumFloat { sum, seen } => {
                let Some(v) = value.as_f64()? else {
                    return Ok(()); // non-null checked above; defensive
                };
                *sum += v;
                *seen = true;
            }
            Accumulator::MinMax { best, is_min } => {
                let replace = match best {
                    None => true,
                    Some(b) => {
                        let ord = value.sql_cmp(b)?.ok_or_else(|| {
                            EngineError::TypeError("incomparable values in MIN/MAX".into())
                        })?;
                        if *is_min {
                            ord.is_lt()
                        } else {
                            ord.is_gt()
                        }
                    }
                };
                if replace {
                    *best = Some(value.clone());
                }
            }
            Accumulator::Avg { sum, count } => {
                let Some(v) = value.as_f64()? else {
                    return Ok(());
                };
                *sum += v;
                *count += 1;
            }
        }
        Ok(())
    }

    fn count_row(&mut self) {
        if let Accumulator::Count(n) = self {
            *n += 1;
        }
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(n),
            Accumulator::SumInt { sum, seen } => {
                if seen {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::SumFloat { sum, seen } => {
                if seen {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::MinMax { best, .. } => best.unwrap_or(Value::Null),
            Accumulator::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
        }
    }
}

/// State for one group: accumulators plus per-aggregate distinct filters.
struct GroupState {
    accs: Vec<Accumulator>,
    distinct_seen: Vec<Option<HashSet<KeyValue>>>,
}

impl GroupState {
    fn new(aggs: &[AggSpec]) -> GroupState {
        GroupState {
            accs: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            distinct_seen: aggs
                .iter()
                .map(|a| {
                    if a.distinct {
                        Some(HashSet::new())
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }

    fn update(
        &mut self,
        aggs: &[AggSpec],
        row: &[Value],
        outer: Option<&Env<'_>>,
        gov: Option<&Governor>,
    ) -> Result<()> {
        for (i, spec) in aggs.iter().enumerate() {
            match &spec.arg {
                None => self.accs[i].count_row(),
                Some(arg) => {
                    let v = eval_on_row(arg, row, outer, gov)?;
                    if let Some(seen) = &mut self.distinct_seen[i] {
                        if v.is_null() || !seen.insert(KeyValue::from(&v)) {
                            continue;
                        }
                    }
                    self.accs[i].update(&v)?;
                }
            }
        }
        Ok(())
    }
}

fn exec_aggregate(
    input: Batch,
    group_exprs: &[BoundExpr],
    aggs: &[AggSpec],
    schema: &Schema,
    outer: Option<&Env<'_>>,
    stats: Option<&mut NodeStats>,
    gov: Option<&Governor>,
) -> Result<Rows> {
    let mut groups: HashMap<Key, (Row, GroupState)> = HashMap::new();
    // Preserve first-seen group order for deterministic output.
    let mut order: Vec<Key> = Vec::new();
    // Group table footprint: per-group key, group values, accumulators.
    let per_group = mem::size_of::<Key>()
        + mem::size_of::<(Row, GroupState)>()
        + aggs.len() * mem::size_of::<Accumulator>();
    // Reserve memory as the group table grows, so a high-cardinality GROUP
    // BY trips the budget while building rather than after.
    let mut reserved_cap = 0usize;

    for row in input.rows() {
        tick(gov, "aggregate")?;
        let group_vals = project_row(row, group_exprs, outer, gov)?;
        let key = Key::from_values(&group_vals);
        match groups.entry(key.clone()) {
            Entry::Occupied(mut e) => e.get_mut().1.update(aggs, row, outer, gov)?,
            Entry::Vacant(e) => {
                let mut state = GroupState::new(aggs);
                state.update(aggs, row, outer, gov)?;
                e.insert((group_vals, state));
                order.push(key);
            }
        }
        if groups.capacity() > reserved_cap {
            if let Some(g) = gov {
                g.reserve_mem(
                    ((groups.capacity() - reserved_cap) * per_group) as u64,
                    "aggregate",
                )?;
            }
            reserved_cap = groups.capacity();
        }
    }

    if let Some(s) = stats {
        s.build_rows += input.len() as u64;
        s.est_mem_bytes += (groups.capacity() * per_group) as u64;
    }

    // A global aggregate (no GROUP BY) over zero rows yields one row of
    // "empty" aggregate values.
    if group_exprs.is_empty() && groups.is_empty() {
        let state = GroupState::new(aggs);
        let mut row = Vec::new();
        row.extend(state.accs.into_iter().map(Accumulator::finish));
        return Ok(Rows {
            schema: schema.clone(),
            rows: vec![row],
        });
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let Some((group_vals, state)) = groups.remove(&key) else {
            continue; // defensive: order and groups are built in lockstep
        };
        let mut row = group_vals;
        row.extend(state.accs.into_iter().map(Accumulator::finish));
        out.push(row);
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

fn exec_sort(
    mut input: Rows,
    keys: &[(BoundExpr, bool)],
    outer: Option<&Env<'_>>,
    gov: Option<&Governor>,
) -> Result<Rows> {
    // Precompute sort keys once per row.
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(input.rows.len());
    for row in input.rows.drain(..) {
        tick(gov, "sort")?;
        let mut kv = Vec::with_capacity(keys.len());
        for (expr, _) in keys {
            kv.push(eval_on_row(expr, &row, outer, gov)?);
        }
        decorated.push((kv, row));
    }
    decorated.sort_by(|(a, _), (b, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            // NULLs sort last regardless of direction.
            let ord = match (a[i].is_null(), b[i].is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => {
                    let ord = a[i].total_cmp(&b[i]);
                    if *desc {
                        ord.reverse()
                    } else {
                        ord
                    }
                }
            };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    input.rows = decorated.into_iter().map(|(_, r)| r).collect();
    Ok(input)
}
