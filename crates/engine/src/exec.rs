//! Plan executor: materialized, operator-at-a-time evaluation.
//!
//! Operators exchange [`Batch`]es: either freshly-computed owned rows or a
//! shared reference to pre-materialized rows (base-table scans and
//! materialized CTEs). Read-only consumers — join build/probe sides,
//! aggregation inputs, filters — iterate shared batches without copying
//! them, so a scan feeding a join never clones the whole table.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::mem;
use std::sync::Arc;
use std::time::Instant;

use crate::error::{EngineError, Result};
use crate::expr::{BoundExpr, Env};
use crate::plan::{AggFunc, AggSpec, JoinType, Plan};
use crate::schema::Schema;
use crate::stats::NodeStats;
use crate::table::{Row, Rows};
use crate::value::{Key, KeyValue, Value};

/// An operator's output: owned rows, or a shared batch plus the schema it
/// is viewed under (scans re-qualify the stored schema per binding).
pub enum Batch {
    Owned(Rows),
    Shared { rows: Arc<Rows>, schema: Schema },
}

impl Batch {
    pub fn schema(&self) -> &Schema {
        match self {
            Batch::Owned(r) => &r.schema,
            Batch::Shared { schema, .. } => schema,
        }
    }

    pub fn rows(&self) -> &[Row] {
        match self {
            Batch::Owned(r) => &r.rows,
            Batch::Shared { rows, .. } => &rows.rows,
        }
    }

    pub fn len(&self) -> usize {
        self.rows().len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows().is_empty()
    }

    /// Convert into owned rows, cloning when shared.
    pub fn into_rows(self) -> Rows {
        match self {
            Batch::Owned(r) => r,
            Batch::Shared { rows, schema } => Rows {
                schema,
                rows: rows.rows.clone(),
            },
        }
    }
}

/// Execute a plan to fully-owned rows. `outer` is the enclosing row
/// environment for correlated subquery plans; `None` at the top level.
pub fn execute(plan: &Plan, outer: Option<&Env<'_>>) -> Result<Rows> {
    Ok(execute_batch(plan, outer)?.into_rows())
}

/// Execute a plan, sharing pre-materialized rows where possible.
pub fn execute_batch(plan: &Plan, outer: Option<&Env<'_>>) -> Result<Batch> {
    execute_batch_stats(plan, outer, None)
}

/// Execute a plan, additionally collecting per-operator runtime stats into
/// a [`NodeStats`] tree shaped like the plan (`EXPLAIN ANALYZE`).
pub fn execute_traced(plan: &Plan, outer: Option<&Env<'_>>) -> Result<(Rows, NodeStats)> {
    let mut stats = NodeStats::for_plan(plan);
    let rows = execute_batch_stats(plan, outer, Some(&mut stats))?.into_rows();
    Ok((rows, stats))
}

/// Execute a plan, filling `stats` (when present) for this operator and
/// everything below it. `stats` must mirror the plan's shape — build it
/// with [`NodeStats::for_plan`].
pub fn execute_batch_stats(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
) -> Result<Batch> {
    let start = stats.as_ref().map(|_| Instant::now());
    let result = exec_node(plan, outer, &mut stats);
    if let (Some(s), Some(t)) = (stats, start) {
        s.invocations += 1;
        s.wall += t.elapsed();
        if let Ok(batch) = &result {
            s.rows_out += batch.len() as u64;
        }
    }
    result
}

/// The untimed operator dispatch. Children are executed through
/// [`execute_batch_stats`] with the matching child stats node, so timing
/// nests correctly; operator-internal counters are filled in by the
/// `exec_*` helpers.
fn exec_node(
    plan: &Plan,
    outer: Option<&Env<'_>>,
    stats: &mut Option<&mut NodeStats>,
) -> Result<Batch> {
    match plan {
        Plan::Scan { rows, schema } => Ok(Batch::Shared {
            rows: Arc::clone(rows),
            schema: schema.clone(),
        }),
        Plan::Unit => Ok(Batch::Owned(Rows {
            schema: plan.schema().clone(),
            rows: vec![Vec::new()],
        })),
        Plan::Filter { input, predicate } => {
            let child = execute_batch_stats(input, outer, child_stats(stats, 0))?;
            let mut out = Vec::new();
            for row in child.rows() {
                if eval_predicate_on_row(predicate, row, outer)? == Some(true) {
                    out.push(row.clone());
                }
            }
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows: out,
            }))
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let child = execute_batch_stats(input, outer, child_stats(stats, 0))?;
            let mut out = Vec::with_capacity(child.len());
            for row in child.rows() {
                out.push(project_row(row, exprs, outer)?);
            }
            Ok(Batch::Owned(Rows {
                schema: schema.clone(),
                rows: out,
            }))
        }
        Plan::Rename { input, schema } => {
            let child = execute_batch_stats(input, outer, child_stats(stats, 0))?;
            Ok(match child {
                Batch::Owned(r) => Batch::Owned(Rows {
                    schema: schema.clone(),
                    rows: r.rows,
                }),
                Batch::Shared { rows, .. } => Batch::Shared {
                    rows,
                    schema: schema.clone(),
                },
            })
        }
        Plan::HashJoin {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let l = execute_batch_stats(left, outer, child_stats(stats, 0))?;
            let r = execute_batch_stats(right, outer, child_stats(stats, 1))?;
            Ok(Batch::Owned(exec_hash_join(
                l,
                r,
                *kind,
                left_keys,
                right_keys,
                residual.as_ref(),
                schema,
                outer,
                stats.as_deref_mut(),
            )?))
        }
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let l = execute_batch_stats(left, outer, child_stats(stats, 0))?;
            let r = execute_batch_stats(right, outer, child_stats(stats, 1))?;
            Ok(Batch::Owned(exec_nested_loop_join(
                l,
                r,
                *kind,
                on.as_ref(),
                schema,
                outer,
                stats.as_deref_mut(),
            )?))
        }
        Plan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            let child = execute_batch_stats(input, outer, child_stats(stats, 0))?;
            Ok(Batch::Owned(exec_aggregate(
                child,
                group_exprs,
                aggs,
                schema,
                outer,
                stats.as_deref_mut(),
            )?))
        }
        Plan::Distinct { input } => {
            let child = execute_batch_stats(input, outer, child_stats(stats, 0))?;
            let mut seen: HashSet<Key> = HashSet::with_capacity(child.len());
            let mut out = Vec::new();
            for row in child.rows() {
                if seen.insert(Key::from_values(row)) {
                    out.push(row.clone());
                }
            }
            if let Some(s) = stats.as_deref_mut() {
                s.build_rows += child.len() as u64;
                s.est_mem_bytes += (seen.capacity() * mem::size_of::<Key>()) as u64;
            }
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows: out,
            }))
        }
        Plan::UnionAll { left, right } => {
            let l = execute_batch_stats(left, outer, child_stats(stats, 0))?;
            let r = execute_batch_stats(right, outer, child_stats(stats, 1))?;
            let mut rows = l.into_rows();
            match r {
                Batch::Owned(o) => rows.rows.extend(o.rows),
                Batch::Shared { rows: shared, .. } => rows.rows.extend(shared.rows.iter().cloned()),
            }
            Ok(Batch::Owned(rows))
        }
        Plan::Sort { input, keys } => {
            let child = execute_batch_stats(input, outer, child_stats(stats, 0))?.into_rows();
            Ok(Batch::Owned(exec_sort(child, keys, outer)?))
        }
        Plan::Limit { input, n } => {
            let child = execute_batch_stats(input, outer, child_stats(stats, 0))?;
            let take = (*n as usize).min(child.len());
            let rows = child.rows()[..take].to_vec();
            Ok(Batch::Owned(Rows {
                schema: child.schema().clone(),
                rows,
            }))
        }
    }
}

/// Reborrow the stats node for child `i` of the current operator, keeping
/// the `Option` shape `execute_batch_stats` expects.
fn child_stats<'a>(stats: &'a mut Option<&mut NodeStats>, i: usize) -> Option<&'a mut NodeStats> {
    stats.as_deref_mut().map(|s| &mut s.children[i])
}

/// Evaluate an expression for a given current row, chaining outer scopes.
fn eval_on_row(expr: &BoundExpr, row: &[Value], outer: Option<&Env<'_>>) -> Result<Value> {
    match outer {
        Some(parent) => expr.eval(&Env::push(row, parent)),
        None => expr.eval(&Env::root(row)),
    }
}

fn eval_predicate_on_row(
    expr: &BoundExpr,
    row: &[Value],
    outer: Option<&Env<'_>>,
) -> Result<Option<bool>> {
    match outer {
        Some(parent) => expr.eval_predicate(&Env::push(row, parent)),
        None => expr.eval_predicate(&Env::root(row)),
    }
}

fn project_row(row: &[Value], exprs: &[BoundExpr], outer: Option<&Env<'_>>) -> Result<Row> {
    let mut out = Vec::with_capacity(exprs.len());
    for e in exprs {
        out.push(eval_on_row(e, row, outer)?);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn exec_hash_join(
    left: Batch,
    right: Batch,
    kind: JoinType,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    residual: Option<&BoundExpr>,
    schema: &Schema,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
) -> Result<Rows> {
    if let Some(s) = stats.as_deref_mut() {
        s.build_rows += right.len() as u64;
        s.probe_rows += left.len() as u64;
    }
    // Early outs for empty sides: an inner join with an empty input is
    // empty; a semi join against nothing is empty; an anti join against
    // nothing passes everything through. (The annotation-aware Filter often
    // has an empty candidates side on nearly-consistent databases.)
    if right.is_empty() {
        return Ok(match kind {
            JoinType::Inner | JoinType::Semi => Rows {
                schema: schema.clone(),
                rows: Vec::new(),
            },
            JoinType::Anti => Rows {
                schema: schema.clone(),
                rows: left.into_rows().rows,
            },
            JoinType::LeftOuter => {
                let right_width = right.schema().len();
                let rows = left
                    .rows()
                    .iter()
                    .map(|l| {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        row
                    })
                    .collect();
                Rows {
                    schema: schema.clone(),
                    rows,
                }
            }
        });
    }
    if left.is_empty() {
        return Ok(Rows {
            schema: schema.clone(),
            rows: Vec::new(),
        });
    }

    // Inner joins build the hash table on the smaller side; the output
    // column order (left ++ right) is preserved when emitting.
    if kind == JoinType::Inner && left.len() < right.len() && residual.is_none() {
        return exec_hash_join_inner_swapped(
            right, left, right_keys, left_keys, schema, outer, stats,
        );
    }

    // Build on the right side.
    let right_rows = right.rows();
    let mut table: HashMap<Key, Vec<usize>> = HashMap::with_capacity(right_rows.len());
    for (i, row) in right_rows.iter().enumerate() {
        let key = Key::from_values(&project_row(row, right_keys, outer)?);
        if key.has_null() {
            continue; // NULL keys never match under SQL equality.
        }
        table.entry(key).or_default().push(i);
    }
    if let Some(s) = stats.as_deref_mut() {
        s.est_mem_bytes += hash_table_bytes(&table);
    }

    let right_width = right.schema().len();
    let mut comparisons = 0u64;
    let mut out = Vec::new();
    for lrow in left.rows() {
        let key = Key::from_values(&project_row(lrow, left_keys, outer)?);
        let matches = if key.has_null() {
            None
        } else {
            table.get(&key)
        };
        let mut matched = false;
        if let Some(idxs) = matches {
            for &ri in idxs {
                comparisons += 1;
                // Residual conditions are part of the ON clause: they decide
                // whether this candidate pair is a match.
                let pass = match residual {
                    None => true,
                    Some(res) => {
                        let mut combined = lrow.clone();
                        combined.extend(right_rows[ri].iter().cloned());
                        eval_predicate_on_row(res, &combined, outer)? == Some(true)
                    }
                };
                if !pass {
                    continue;
                }
                matched = true;
                match kind {
                    JoinType::Inner | JoinType::LeftOuter => {
                        let mut combined = lrow.clone();
                        combined.extend(right_rows[ri].iter().cloned());
                        out.push(combined);
                    }
                    JoinType::Semi | JoinType::Anti => break,
                }
            }
        }
        match kind {
            JoinType::LeftOuter if !matched => {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
            JoinType::Semi if matched => out.push(lrow.clone()),
            JoinType::Anti if !matched => out.push(lrow.clone()),
            _ => {}
        }
    }
    if let Some(s) = stats {
        s.comparisons += comparisons;
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

/// Rough footprint of a join hash table: map entry overhead plus one
/// row index per build row.
fn hash_table_bytes(table: &HashMap<Key, Vec<usize>>) -> u64 {
    let entry = mem::size_of::<Key>() + mem::size_of::<Vec<usize>>();
    let indices: usize = table.values().map(Vec::len).sum();
    (table.capacity() * entry + indices * mem::size_of::<usize>()) as u64
}

/// Inner hash join probing with the *larger* side: `probe` is the original
/// right input, `build` the original left. Output rows still lay out
/// original-left columns first.
#[allow(clippy::too_many_arguments)]
fn exec_hash_join_inner_swapped(
    probe: Batch,
    build: Batch,
    probe_keys: &[BoundExpr],
    build_keys: &[BoundExpr],
    schema: &Schema,
    outer: Option<&Env<'_>>,
    mut stats: Option<&mut NodeStats>,
) -> Result<Rows> {
    let build_rows = build.rows();
    let mut table: HashMap<Key, Vec<usize>> = HashMap::with_capacity(build_rows.len());
    for (i, row) in build_rows.iter().enumerate() {
        let key = Key::from_values(&project_row(row, build_keys, outer)?);
        if key.has_null() {
            continue;
        }
        table.entry(key).or_default().push(i);
    }
    if let Some(s) = stats.as_deref_mut() {
        s.est_mem_bytes += hash_table_bytes(&table);
    }
    if table.is_empty() {
        return Ok(Rows {
            schema: schema.clone(),
            rows: Vec::new(),
        });
    }
    let mut comparisons = 0u64;
    let mut out = Vec::new();
    for prow in probe.rows() {
        let key = Key::from_values(&project_row(prow, probe_keys, outer)?);
        if key.has_null() {
            continue;
        }
        if let Some(idxs) = table.get(&key) {
            for &bi in idxs {
                comparisons += 1;
                let mut combined = Vec::with_capacity(build_rows[bi].len() + prow.len());
                combined.extend(build_rows[bi].iter().cloned());
                combined.extend(prow.iter().cloned());
                out.push(combined);
            }
        }
    }
    if let Some(s) = stats {
        s.comparisons += comparisons;
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

#[allow(clippy::too_many_arguments)]
fn exec_nested_loop_join(
    left: Batch,
    right: Batch,
    kind: JoinType,
    on: Option<&BoundExpr>,
    schema: &Schema,
    outer: Option<&Env<'_>>,
    stats: Option<&mut NodeStats>,
) -> Result<Rows> {
    let right_width = right.schema().len();
    let mut comparisons = 0u64;
    let mut out = Vec::new();
    for lrow in left.rows() {
        let mut matched = false;
        for rrow in right.rows() {
            comparisons += 1;
            let mut combined = lrow.clone();
            combined.extend(rrow.iter().cloned());
            let pass = match on {
                None => true,
                Some(cond) => eval_predicate_on_row(cond, &combined, outer)? == Some(true),
            };
            if !pass {
                continue;
            }
            matched = true;
            match kind {
                JoinType::Inner | JoinType::LeftOuter => out.push(combined),
                JoinType::Semi | JoinType::Anti => break,
            }
        }
        match kind {
            JoinType::LeftOuter if !matched => {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
            JoinType::Semi if matched => out.push(lrow.clone()),
            JoinType::Anti if !matched => out.push(lrow.clone()),
            _ => {}
        }
    }
    if let Some(s) = stats {
        s.build_rows += right.len() as u64;
        s.probe_rows += left.len() as u64;
        s.comparisons += comparisons;
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Accumulator for one aggregate within one group.
#[derive(Debug, Clone)]
enum Accumulator {
    Count(i64),
    SumInt { sum: i64, seen: bool },
    SumFloat { sum: f64, seen: bool },
    MinMax { best: Option<Value>, is_min: bool },
    Avg { sum: f64, count: i64 },
}

impl Accumulator {
    fn new(func: AggFunc) -> Accumulator {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::SumInt {
                sum: 0,
                seen: false,
            },
            AggFunc::Min => Accumulator::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => Accumulator::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            // SQL aggregates skip NULL inputs (COUNT(e) counts non-NULL).
            return Ok(());
        }
        match self {
            Accumulator::Count(n) => *n += 1,
            Accumulator::SumInt { sum, seen } => match value {
                Value::Int(v) => {
                    *sum = sum
                        .checked_add(*v)
                        .ok_or_else(|| EngineError::Execution("integer overflow in SUM".into()))?;
                    *seen = true;
                }
                Value::Float(v) => {
                    let promoted = *sum as f64 + v;
                    *self = Accumulator::SumFloat {
                        sum: promoted,
                        seen: true,
                    };
                }
                other => {
                    return Err(EngineError::TypeError(format!(
                        "SUM over {}",
                        other.type_name()
                    )))
                }
            },
            Accumulator::SumFloat { sum, seen } => {
                let v = value.as_f64()?.expect("null handled above");
                *sum += v;
                *seen = true;
            }
            Accumulator::MinMax { best, is_min } => {
                let replace = match best {
                    None => true,
                    Some(b) => {
                        let ord = value.sql_cmp(b)?.ok_or_else(|| {
                            EngineError::TypeError("incomparable values in MIN/MAX".into())
                        })?;
                        if *is_min {
                            ord.is_lt()
                        } else {
                            ord.is_gt()
                        }
                    }
                };
                if replace {
                    *best = Some(value.clone());
                }
            }
            Accumulator::Avg { sum, count } => {
                let v = value.as_f64()?.expect("null handled above");
                *sum += v;
                *count += 1;
            }
        }
        Ok(())
    }

    fn count_row(&mut self) {
        if let Accumulator::Count(n) = self {
            *n += 1;
        }
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(n),
            Accumulator::SumInt { sum, seen } => {
                if seen {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::SumFloat { sum, seen } => {
                if seen {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::MinMax { best, .. } => best.unwrap_or(Value::Null),
            Accumulator::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
        }
    }
}

/// State for one group: accumulators plus per-aggregate distinct filters.
struct GroupState {
    accs: Vec<Accumulator>,
    distinct_seen: Vec<Option<HashSet<KeyValue>>>,
}

impl GroupState {
    fn new(aggs: &[AggSpec]) -> GroupState {
        GroupState {
            accs: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            distinct_seen: aggs
                .iter()
                .map(|a| {
                    if a.distinct {
                        Some(HashSet::new())
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }

    fn update(&mut self, aggs: &[AggSpec], row: &[Value], outer: Option<&Env<'_>>) -> Result<()> {
        for (i, spec) in aggs.iter().enumerate() {
            match &spec.arg {
                None => self.accs[i].count_row(),
                Some(arg) => {
                    let v = eval_on_row(arg, row, outer)?;
                    if let Some(seen) = &mut self.distinct_seen[i] {
                        if v.is_null() || !seen.insert(KeyValue::from(&v)) {
                            continue;
                        }
                    }
                    self.accs[i].update(&v)?;
                }
            }
        }
        Ok(())
    }
}

fn exec_aggregate(
    input: Batch,
    group_exprs: &[BoundExpr],
    aggs: &[AggSpec],
    schema: &Schema,
    outer: Option<&Env<'_>>,
    stats: Option<&mut NodeStats>,
) -> Result<Rows> {
    let mut groups: HashMap<Key, (Row, GroupState)> = HashMap::new();
    // Preserve first-seen group order for deterministic output.
    let mut order: Vec<Key> = Vec::new();

    for row in input.rows() {
        let group_vals = project_row(row, group_exprs, outer)?;
        let key = Key::from_values(&group_vals);
        match groups.entry(key.clone()) {
            Entry::Occupied(mut e) => e.get_mut().1.update(aggs, row, outer)?,
            Entry::Vacant(e) => {
                let mut state = GroupState::new(aggs);
                state.update(aggs, row, outer)?;
                e.insert((group_vals, state));
                order.push(key);
            }
        }
    }

    if let Some(s) = stats {
        s.build_rows += input.len() as u64;
        // Group table footprint: per-group key, group values, accumulators.
        let per_group = mem::size_of::<Key>()
            + mem::size_of::<(Row, GroupState)>()
            + aggs.len() * mem::size_of::<Accumulator>();
        s.est_mem_bytes += (groups.capacity() * per_group) as u64;
    }

    // A global aggregate (no GROUP BY) over zero rows yields one row of
    // "empty" aggregate values.
    if group_exprs.is_empty() && groups.is_empty() {
        let state = GroupState::new(aggs);
        let mut row = Vec::new();
        row.extend(state.accs.into_iter().map(Accumulator::finish));
        return Ok(Rows {
            schema: schema.clone(),
            rows: vec![row],
        });
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let (group_vals, state) = groups.remove(&key).expect("group present");
        let mut row = group_vals;
        row.extend(state.accs.into_iter().map(Accumulator::finish));
        out.push(row);
    }
    Ok(Rows {
        schema: schema.clone(),
        rows: out,
    })
}

fn exec_sort(mut input: Rows, keys: &[(BoundExpr, bool)], outer: Option<&Env<'_>>) -> Result<Rows> {
    // Precompute sort keys once per row.
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(input.rows.len());
    for row in input.rows.drain(..) {
        let mut kv = Vec::with_capacity(keys.len());
        for (expr, _) in keys {
            kv.push(eval_on_row(expr, &row, outer)?);
        }
        decorated.push((kv, row));
    }
    decorated.sort_by(|(a, _), (b, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            // NULLs sort last regardless of direction.
            let ord = match (a[i].is_null(), b[i].is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => {
                    let ord = a[i].total_cmp(&b[i]);
                    if *desc {
                        ord.reverse()
                    } else {
                        ord
                    }
                }
            };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    input.rows = decorated.into_iter().map(|(_, r)| r).collect();
    Ok(input)
}
