//! Typed column batches: the columnar representation carried between
//! executor operators and stored inside [`crate::table::Table`].
//!
//! A [`ColBatch`] is a fixed set of column chunks sharing one length.
//! Numeric/date/bool columns are fixed-width vectors, text columns are
//! dictionary-encoded (`u32` codes into a shared [`TextDict`] — the
//! engine-wide `Arc<str>` interning made explicit), and NULLs live in an
//! optional validity [`Bitmap`] (absent ⇒ all rows valid). Columns whose
//! values don't fit their declared type (legal under the storage rule
//! that `Int` may sit in a `Float` column) demote to [`ColumnData::Any`],
//! which stores exact `Value`s and opts the column out of vectorized
//! kernels — fidelity first, speed where the data allows it.
//!
//! Operators that still work row-at-a-time pivot a batch into `Vec<Row>`
//! through [`ColBatch::rows`]; the pivot is computed once per batch and
//! cached, so repeated row-side consumers (sort after filter, join
//! residuals) don't re-materialize.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::schema::{DataType, Schema};
use crate::table::Row;
use crate::value::Value;

/// A packed bitset; bit `i` of word `i / 64` is row `i`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` set bits (all rows valid).
    pub fn all_set(len: usize) -> Bitmap {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    pub fn with_capacity(n: usize) -> Bitmap {
        Bitmap {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if b == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits in `[start, end)`.
    pub fn count_set_range(&self, start: usize, end: usize) -> usize {
        debug_assert!(start <= end && end <= self.len);
        (start..end).map(|i| self.get(i) as usize).sum()
    }

    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Zero the bits above `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    /// Heap bytes used.
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

/// Dictionary for a text column: code → interned string, plus the reverse
/// index used when appending.
#[derive(Debug, Clone, Default)]
pub struct TextDict {
    strings: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl TextDict {
    pub fn new() -> TextDict {
        TextDict::default()
    }

    /// Code for `s`, inserting it if unseen.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        self.index.insert(Arc::clone(s), code);
        code
    }

    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }

    /// Code for `s` if present (no insertion; usable on a shared dict).
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    pub fn strings(&self) -> &[Arc<str>] {
        &self.strings
    }

    /// Approximate heap bytes (entries + string payloads, counted once).
    pub fn byte_size(&self) -> usize {
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        // Arc<str> in the vec + a HashMap entry per string.
        payload + self.strings.len() * (16 + 32)
    }
}

/// The typed payload of one column chunk.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Days since 1970-01-01, matching `Value::Date`.
    Date(Vec<i32>),
    Bool(Vec<bool>),
    /// Dictionary-encoded text. NULL slots hold code 0 as a placeholder
    /// (never dereferenced; the validity bitmap gates every read).
    Text {
        codes: Vec<u32>,
        dict: Arc<TextDict>,
    },
    /// Heterogeneous fallback: exact `Value`s including inline NULLs.
    /// `Any` chunks never carry a validity bitmap.
    Any(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Text { codes, .. } => codes.len(),
            ColumnData::Any(v) => v.len(),
        }
    }
}

/// One column of a batch: typed data plus an optional validity bitmap
/// (absent ⇒ no NULLs).
#[derive(Debug, Clone)]
pub struct ColumnChunk {
    pub data: ColumnData,
    pub validity: Option<Bitmap>,
}

impl ColumnChunk {
    /// An empty chunk typed for `ty`.
    pub fn for_type(ty: DataType) -> ColumnChunk {
        let data = match ty {
            DataType::Integer => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::Boolean => ColumnData::Bool(Vec::new()),
            DataType::Text => ColumnData::Text {
                codes: Vec::new(),
                dict: Arc::new(TextDict::new()),
            },
            DataType::Any => ColumnData::Any(Vec::new()),
        };
        ColumnChunk {
            data,
            validity: None,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is row `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        if let ColumnData::Any(vs) = &self.data {
            return vs[i].is_null();
        }
        self.validity.as_ref().is_some_and(|bm| !bm.get(i))
    }

    /// Append a value, demoting the chunk to `Any` if the value's runtime
    /// type doesn't match the chunk's layout (exact `Value` identity is
    /// preserved across demotion).
    pub fn push(&mut self, v: Value) {
        if let ColumnData::Any(vs) = &mut self.data {
            vs.push(v);
            return;
        }
        if v.is_null() {
            let n = self.len();
            let bm = self.validity.get_or_insert_with(|| Bitmap::all_set(n));
            bm.push(false);
            self.push_placeholder();
            return;
        }
        let fits = matches!(
            (&self.data, &v),
            (ColumnData::Int(_), Value::Int(_))
                | (ColumnData::Float(_), Value::Float(_))
                | (ColumnData::Date(_), Value::Date(_))
                | (ColumnData::Bool(_), Value::Bool(_))
                | (ColumnData::Text { .. }, Value::Str(_))
        );
        if !fits {
            self.demote();
            if let ColumnData::Any(vs) = &mut self.data {
                vs.push(v);
            }
            return;
        }
        match (&mut self.data, v) {
            (ColumnData::Int(xs), Value::Int(x)) => xs.push(x),
            (ColumnData::Float(xs), Value::Float(x)) => xs.push(x),
            (ColumnData::Date(xs), Value::Date(x)) => xs.push(x),
            (ColumnData::Bool(xs), Value::Bool(x)) => xs.push(x),
            (ColumnData::Text { codes, dict }, Value::Str(s)) => {
                codes.push(Arc::make_mut(dict).intern(&s));
            }
            _ => unreachable!("push: fits was checked above"),
        }
        if let Some(bm) = &mut self.validity {
            bm.push(true);
        }
    }

    fn push_placeholder(&mut self) {
        match &mut self.data {
            ColumnData::Int(xs) => xs.push(0),
            ColumnData::Float(xs) => xs.push(0.0),
            ColumnData::Date(xs) => xs.push(0),
            ColumnData::Bool(xs) => xs.push(false),
            ColumnData::Text { codes, .. } => codes.push(0),
            ColumnData::Any(_) => unreachable!("Any handled in push"),
        }
    }

    /// Rebuild as an `Any` chunk holding the exact values seen so far.
    fn demote(&mut self) {
        let values: Vec<Value> = (0..self.len()).map(|i| self.value_at(i)).collect();
        self.data = ColumnData::Any(values);
        self.validity = None;
    }

    /// The exact `Value` at row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        if let ColumnData::Any(vs) = &self.data {
            return vs[i].clone();
        }
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(xs) => Value::Int(xs[i]),
            ColumnData::Float(xs) => Value::Float(xs[i]),
            ColumnData::Date(xs) => Value::Date(xs[i]),
            ColumnData::Bool(xs) => Value::Bool(xs[i]),
            ColumnData::Text { codes, dict } => Value::Str(Arc::clone(dict.get(codes[i]))),
            ColumnData::Any(_) => unreachable!("Any handled above"),
        }
    }

    /// New chunk holding the rows in `sel` (indices into this chunk), in
    /// `sel` order. Text columns share the dictionary.
    pub fn gather(&self, sel: &[u32]) -> ColumnChunk {
        let validity = self.validity.as_ref().map(|bm| {
            let mut out = Bitmap::with_capacity(sel.len());
            for &i in sel {
                out.push(bm.get(i as usize));
            }
            out
        });
        let data = match &self.data {
            ColumnData::Int(xs) => ColumnData::Int(sel.iter().map(|&i| xs[i as usize]).collect()),
            ColumnData::Float(xs) => {
                ColumnData::Float(sel.iter().map(|&i| xs[i as usize]).collect())
            }
            ColumnData::Date(xs) => ColumnData::Date(sel.iter().map(|&i| xs[i as usize]).collect()),
            ColumnData::Bool(xs) => ColumnData::Bool(sel.iter().map(|&i| xs[i as usize]).collect()),
            ColumnData::Text { codes, dict } => ColumnData::Text {
                codes: sel.iter().map(|&i| codes[i as usize]).collect(),
                dict: Arc::clone(dict),
            },
            ColumnData::Any(vs) => {
                ColumnData::Any(sel.iter().map(|&i| vs[i as usize].clone()).collect())
            }
        };
        ColumnChunk { data, validity }
    }

    /// Number of NULLs in `[start, end)`.
    pub fn null_count_range(&self, start: usize, end: usize) -> usize {
        if let ColumnData::Any(vs) = &self.data {
            return vs[start..end].iter().filter(|v| v.is_null()).count();
        }
        match &self.validity {
            None => 0,
            Some(bm) => (end - start) - bm.count_set_range(start, end),
        }
    }

    /// Approximate heap bytes held by this chunk.
    pub fn byte_size(&self) -> usize {
        let data = match &self.data {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Date(v) => v.len() * 4,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Text { codes, dict } => codes.len() * 4 + dict.byte_size(),
            ColumnData::Any(vs) => {
                vs.len() * std::mem::size_of::<Value>()
                    + vs.iter()
                        .map(|v| match v {
                            Value::Str(s) => s.len(),
                            _ => 0,
                        })
                        .sum::<usize>()
            }
        };
        data + self.validity.as_ref().map_or(0, Bitmap::byte_size)
    }
}

/// A batch of rows in columnar layout, plus a lazily computed row-pivot
/// cache shared by every consumer of the same batch.
#[derive(Debug, Default)]
pub struct ColBatch {
    len: usize,
    cols: Vec<Arc<ColumnChunk>>,
    rows_cache: OnceLock<Vec<Row>>,
}

impl Clone for ColBatch {
    /// Shallow: shares the column chunks, starts a fresh pivot cache
    /// (clones usually precede mutation, which would invalidate it).
    fn clone(&self) -> ColBatch {
        ColBatch {
            len: self.len,
            cols: self.cols.clone(),
            rows_cache: OnceLock::new(),
        }
    }
}

impl ColBatch {
    /// An empty batch with one typed chunk per schema column.
    pub fn from_schema(schema: &Schema) -> ColBatch {
        ColBatch {
            len: 0,
            cols: schema
                .columns
                .iter()
                .map(|c| Arc::new(ColumnChunk::for_type(c.ty)))
                .collect(),
            rows_cache: OnceLock::new(),
        }
    }

    /// Build from materialized rows; the rows seed the pivot cache so a
    /// later `rows()` is free. Rows must all match the schema arity.
    pub fn from_rows(schema: &Schema, rows: Vec<Row>) -> ColBatch {
        let mut batch = ColBatch::from_schema(schema);
        for row in &rows {
            debug_assert_eq!(row.len(), batch.cols.len());
            for (chunk, v) in batch.cols.iter_mut().zip(row.iter()) {
                Arc::make_mut(chunk).push(v.clone());
            }
        }
        batch.len = rows.len();
        let _ = batch.rows_cache.set(rows);
        batch
    }

    /// Build a batch from per-column chunks (all the same length).
    pub fn from_chunks(len: usize, cols: Vec<Arc<ColumnChunk>>) -> ColBatch {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        ColBatch {
            len,
            cols,
            rows_cache: OnceLock::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    pub fn cols(&self) -> &[Arc<ColumnChunk>] {
        &self.cols
    }

    pub fn col(&self, i: usize) -> &ColumnChunk {
        &self.cols[i]
    }

    /// Append one row; invalidates the pivot cache. Chunks shared with
    /// other batches are copied on write.
    pub fn push_row(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (chunk, v) in self.cols.iter_mut().zip(row) {
            Arc::make_mut(chunk).push(v);
        }
        self.len += 1;
        self.rows_cache.take();
    }

    /// Materialize row `i` without touching the pivot cache.
    pub fn row_at(&self, i: usize) -> Row {
        self.cols.iter().map(|c| c.value_at(i)).collect()
    }

    /// All rows, pivoted once and cached for subsequent callers.
    pub fn rows(&self) -> &[Row] {
        self.rows_cache
            .get_or_init(|| (0..self.len).map(|i| self.row_at(i)).collect())
    }

    /// Consume into rows, reusing the pivot cache when populated.
    pub fn into_rows(mut self) -> Vec<Row> {
        match self.rows_cache.take() {
            Some(rows) => rows,
            None => (0..self.len).map(|i| self.row_at(i)).collect(),
        }
    }

    /// New batch holding the rows in `sel`, in `sel` order.
    pub fn gather(&self, sel: &[u32]) -> ColBatch {
        ColBatch {
            len: sel.len(),
            cols: self.cols.iter().map(|c| Arc::new(c.gather(sel))).collect(),
            rows_cache: OnceLock::new(),
        }
    }

    /// Zero-copy column projection: the picked chunks are shared.
    pub fn select_columns(&self, idxs: &[usize]) -> ColBatch {
        ColBatch {
            len: self.len,
            cols: idxs.iter().map(|&i| Arc::clone(&self.cols[i])).collect(),
            rows_cache: OnceLock::new(),
        }
    }

    /// First `n` rows (`n` may exceed `len`).
    pub fn head(&self, n: usize) -> ColBatch {
        let take = n.min(self.len) as u32;
        let sel: Vec<u32> = (0..take).collect();
        self.gather(&sel)
    }

    /// Approximate heap bytes (column data; the pivot cache, when
    /// populated, is accounted separately by callers that trigger it).
    pub fn byte_size(&self) -> usize {
        self.cols.iter().map(|c| c.byte_size()).sum()
    }
}

/// Per-row byte estimate of a schema's batch layout: fixed column widths,
/// amortized dictionary overhead for text, one validity bit per column.
/// This is what `Governor` memory accounting and the cost model charge
/// per materialized row.
pub fn batch_row_bytes(schema: &Schema) -> usize {
    let cols: usize = schema
        .columns
        .iter()
        .map(|c| match c.ty {
            DataType::Integer | DataType::Float => 8,
            DataType::Date => 4,
            DataType::Boolean => 1,
            // 4-byte code plus dictionary payload amortized over repeats.
            DataType::Text => 4 + TEXT_DICT_AMORTIZED_BYTES,
            DataType::Any => std::mem::size_of::<Value>(),
        })
        .sum();
    cols + schema.len().div_ceil(8)
}

/// Amortized per-row dictionary cost charged for text columns. ConQuer
/// workloads repeat text values heavily (conflict-group attributes), so
/// the dictionary entry is shared across many rows.
pub const TEXT_DICT_AMORTIZED_BYTES: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema(tys: &[DataType]) -> Schema {
        Schema::new(
            tys.iter()
                .enumerate()
                .map(|(i, &ty)| Column::bare(&format!("c{i}"), ty))
                .collect(),
        )
    }

    #[test]
    fn bitmap_push_get_count() {
        let mut bm = Bitmap::new();
        for i in 0..200 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 200);
        assert!(bm.get(0));
        assert!(!bm.get(1));
        assert!(bm.get(198));
        assert_eq!(bm.count_set(), (0..200).filter(|i| i % 3 == 0).count());
        assert_eq!(
            bm.count_set_range(10, 150),
            (10..150).filter(|i| i % 3 == 0).count()
        );
        assert_eq!(Bitmap::all_set(70).count_set(), 70);
    }

    #[test]
    fn dict_interns_and_shares() {
        let mut d = TextDict::new();
        let a: Arc<str> = Arc::from("alpha");
        let b: Arc<str> = Arc::from("beta");
        assert_eq!(d.intern(&a), 0);
        assert_eq!(d.intern(&b), 1);
        assert_eq!(d.intern(&Arc::from("alpha")), 0);
        assert_eq!(d.lookup("beta"), Some(1));
        assert_eq!(d.lookup("gamma"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn roundtrip_with_nulls() {
        let s = schema(&[
            DataType::Integer,
            DataType::Float,
            DataType::Text,
            DataType::Date,
            DataType::Boolean,
        ]);
        let rows = vec![
            vec![
                Value::Int(1),
                Value::Float(1.5),
                Value::str("x"),
                Value::Date(10),
                Value::Bool(true),
            ],
            vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ],
            vec![
                Value::Int(-3),
                Value::Float(-0.0),
                Value::str("x"),
                Value::Date(-4),
                Value::Bool(false),
            ],
        ];
        let batch = ColBatch::from_rows(&s, rows.clone());
        assert_eq!(batch.len(), 3);
        // Cache was seeded with the exact input rows.
        assert_eq!(batch.rows(), &rows[..]);
        // row_at reconstructs the same values (incl. -0.0 bit pattern).
        for (i, row) in rows.iter().enumerate() {
            let got = batch.row_at(i);
            assert_eq!(&got, row);
            if let (Value::Float(a), Value::Float(b)) = (&got[1], &row[1]) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(batch.col(0).is_null(1));
        assert!(!batch.col(0).is_null(0));
        assert_eq!(batch.col(2).null_count_range(0, 3), 1);
    }

    #[test]
    fn int_in_float_column_demotes_to_any() {
        let s = schema(&[DataType::Float]);
        let mut batch = ColBatch::from_schema(&s);
        batch.push_row(vec![Value::Float(2.5)]);
        batch.push_row(vec![Value::Int(7)]); // legal per type_compatible
        batch.push_row(vec![Value::Null]);
        assert!(matches!(batch.col(0).data, ColumnData::Any(_)));
        assert_eq!(batch.row_at(0), vec![Value::Float(2.5)]);
        assert_eq!(batch.row_at(1), vec![Value::Int(7)]); // exact identity kept
        assert_eq!(batch.row_at(2), vec![Value::Null]);
    }

    #[test]
    fn gather_and_select_columns() {
        let s = schema(&[DataType::Integer, DataType::Text]);
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                vec![
                    if i == 4 { Value::Null } else { Value::Int(i) },
                    Value::str(if i % 2 == 0 { "even" } else { "odd" }),
                ]
            })
            .collect();
        let batch = ColBatch::from_rows(&s, rows.clone());
        let sel = vec![4u32, 1, 9];
        let g = batch.gather(&sel);
        assert_eq!(g.len(), 3);
        assert_eq!(g.row_at(0), rows[4]);
        assert_eq!(g.row_at(1), rows[1]);
        assert_eq!(g.row_at(2), rows[9]);
        // Gathered text shares the dictionary.
        if let (ColumnData::Text { dict: d1, .. }, ColumnData::Text { dict: d2, .. }) =
            (&batch.col(1).data, &g.col(1).data)
        {
            assert!(Arc::ptr_eq(d1, d2));
        } else {
            panic!("expected text chunks");
        }
        let picked = batch.select_columns(&[1]);
        assert_eq!(picked.width(), 1);
        assert!(Arc::ptr_eq(&picked.cols()[0], &batch.cols()[1]));
        let h = batch.head(3);
        assert_eq!(h.len(), 3);
        assert_eq!(h.row_at(2), rows[2]);
    }

    #[test]
    fn empty_batch_and_empty_gather() {
        let s = schema(&[DataType::Integer, DataType::Text]);
        let batch = ColBatch::from_schema(&s);
        assert!(batch.is_empty());
        assert!(batch.rows().is_empty());
        let g = batch.gather(&[]);
        assert!(g.is_empty());
        assert_eq!(
            ColBatch::from_rows(&s, vec![]).into_rows(),
            Vec::<Row>::new()
        );
    }

    #[test]
    fn push_after_share_copies_on_write() {
        let s = schema(&[DataType::Integer]);
        let mut batch = ColBatch::from_rows(&s, vec![vec![Value::Int(1)]]);
        let snapshot = batch.clone();
        batch.push_row(vec![Value::Int(2)]);
        assert_eq!(snapshot.len(), 1);
        assert_eq!(batch.len(), 2);
        assert_eq!(snapshot.row_at(0), vec![Value::Int(1)]);
        assert_eq!(batch.row_at(1), vec![Value::Int(2)]);
    }

    #[test]
    fn batch_row_bytes_reflects_layout() {
        let s = schema(&[DataType::Integer, DataType::Text, DataType::Date]);
        // 8 + (4 + amortized dict) + 4 + 1 validity byte for 3 columns.
        assert_eq!(
            batch_row_bytes(&s),
            8 + 4 + TEXT_DICT_AMORTIZED_BYTES + 4 + 1
        );
    }
}
