//! Secondary indexes over columnar batches: hash postings for equality
//! probes and an ordered numeric view for range scans.
//!
//! An [`Index`] maps key values to **row-id postings** over one immutable
//! [`ColBatch`] — the same `Arc` the table's scan cache hands to every
//! plan, so `Arc::ptr_eq` doubles as the validity stamp (exactly like the
//! scan cache itself; see `Database::indexes_by_scan`). Postings are built
//! in ascending row order with NULL keys excluded, which makes them
//! *bit-compatible* with both consumers:
//!
//! * a hash join's build table (`exec::build_join_table` inserts rows
//!   serially in the same order and skips NULL keys the same way), so an
//!   [`IndexLookupJoin`](crate::plan::Plan::HashJoin) substitutes the
//!   prebuilt postings for the per-query build without changing a single
//!   emitted row;
//! * a `Filter`-over-`Scan` selection vector (the filter kernels emit
//!   passing rows in ascending row order), so an
//!   [`IndexScan`](crate::plan::Plan::IndexScan) gather produces the
//!   identical batch.
//!
//! Range scans binary-search the ordered `(f64, row)` view for a candidate
//! span — `f64` conversion is monotone, so the span is a superset of the
//! true matches — then re-check every candidate with the exact
//! [`Value::sql_cmp`] the filter kernel would have used. Equality probes
//! need no re-check: [`Key`] normalization (`Float(1.0)` → `Int(1)`) agrees
//! with SQL equality for every literal the planner is allowed to attach
//! (see `opt::select_access_paths`).

use std::collections::HashMap;
use std::fmt;
use std::mem;
use std::sync::Arc;

use crate::col::ColBatch;
use crate::error::Result;
use crate::faults;
use crate::stats::numeric_of;
use crate::value::{Key, Value};

/// How an [`IndexScan`](crate::plan::Plan::IndexScan) probes its index.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexAccess {
    /// Point lookup: one literal per index column, in index column order.
    Eq(Vec<Value>),
    /// Range probe over a single-column ordered index; each bound is
    /// `(literal, inclusive)`.
    Range {
        lo: Option<(Value, bool)>,
        hi: Option<(Value, bool)>,
    },
}

impl IndexAccess {
    /// Short label for `EXPLAIN` (`eq` / `range`).
    pub fn label(&self) -> &'static str {
        match self {
            IndexAccess::Eq(_) => "eq",
            IndexAccess::Range { .. } => "range",
        }
    }
}

/// A built secondary index over one columnar batch. Immutable once built;
/// `INSERT` produces a new `Index` via [`Index::extended`].
pub struct Index {
    table: String,
    col_names: Vec<String>,
    /// Key column indices in the batch, in declared order.
    cols: Vec<usize>,
    /// The batch the postings describe; `Arc::ptr_eq` is the validity
    /// stamp.
    batch: Arc<ColBatch>,
    /// Equality postings: key → ascending row ids (NULL keys excluded).
    map: HashMap<Key, Vec<usize>>,
    /// Ordered view for single-column indexes whose non-null values are
    /// all numeric: `(numeric value, row id)` sorted ascending. `None`
    /// for multi-column or non-numeric keys — no range support then.
    ordered: Option<Vec<(f64, usize)>>,
}

impl fmt::Debug for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Index")
            .field("table", &self.table)
            .field("cols", &self.col_names)
            .field("rows", &self.batch.len())
            .field("keys", &self.map.len())
            .field("ordered", &self.ordered.is_some())
            .finish()
    }
}

impl Index {
    /// Build postings over `batch` for the given key columns. Carries the
    /// `index_build_fail` fault point: a tripped build surfaces as `Err`
    /// and the caller (the database's lazy build) falls back to a
    /// sequential scan — never a wrong answer, never a panic.
    pub fn build(
        table: &str,
        col_names: &[String],
        cols: Vec<usize>,
        batch: &Arc<ColBatch>,
    ) -> Result<Index> {
        faults::trip("index_build_fail")?;
        let n = batch.len();
        let chunks: Vec<_> = cols.iter().map(|&c| Arc::clone(&batch.cols()[c])).collect();
        let mut map: HashMap<Key, Vec<usize>> = HashMap::new();
        let mut numeric = cols.len() == 1;
        let mut ordered: Vec<(f64, usize)> = Vec::new();
        let mut vals: Vec<Value> = Vec::with_capacity(cols.len());
        for i in 0..n {
            vals.clear();
            for chunk in &chunks {
                vals.push(chunk.value_at(i));
            }
            if numeric && !vals[0].is_null() {
                match numeric_of(&vals[0]) {
                    Some(v) => ordered.push((v, i)),
                    None => {
                        numeric = false;
                        ordered.clear();
                    }
                }
            }
            let key = Key::from_values(&vals);
            if key.has_null() {
                continue;
            }
            map.entry(key).or_default().push(i);
        }
        ordered.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(Index {
            table: table.to_string(),
            col_names: col_names.to_vec(),
            cols,
            batch: Arc::clone(batch),
            map,
            ordered: numeric.then_some(ordered),
        })
    }

    /// Incremental maintenance for `INSERT`: `new_batch` must extend this
    /// index's batch by appended rows (the engine's inserts clone the
    /// table and push, so the row prefix is value-identical). Existing
    /// postings stay valid; only the appended suffix is keyed. Returns
    /// `None` when `new_batch` is not a pure extension.
    pub fn extended(&self, new_batch: &Arc<ColBatch>) -> Option<Index> {
        let old_n = self.batch.len();
        if new_batch.len() < old_n || new_batch.width() != self.batch.width() {
            return None;
        }
        let chunks: Vec<_> = self
            .cols
            .iter()
            .map(|&c| Arc::clone(&new_batch.cols()[c]))
            .collect();
        let mut map = self.map.clone();
        let mut ordered = self.ordered.clone();
        let mut vals: Vec<Value> = Vec::with_capacity(self.cols.len());
        for i in old_n..new_batch.len() {
            vals.clear();
            for chunk in &chunks {
                vals.push(chunk.value_at(i));
            }
            if let Some(ord) = &mut ordered {
                if !vals[0].is_null() {
                    match numeric_of(&vals[0]) {
                        Some(v) => ord.push((v, i)),
                        None => ordered = None,
                    }
                }
            }
            let key = Key::from_values(&vals);
            if key.has_null() {
                continue;
            }
            map.entry(key).or_default().push(i);
        }
        if let Some(ord) = &mut ordered {
            ord.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        Some(Index {
            table: self.table.clone(),
            col_names: self.col_names.clone(),
            cols: self.cols.clone(),
            batch: Arc::clone(new_batch),
            map,
            ordered,
        })
    }

    /// The table this index belongs to.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Key column names, in index order.
    pub fn col_names(&self) -> &[String] {
        &self.col_names
    }

    /// Key column indices in the batch, in index order.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The batch the postings were built over (the validity stamp).
    pub fn batch(&self) -> &Arc<ColBatch> {
        &self.batch
    }

    /// Number of distinct (non-null) keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Whether range probes are supported (single numeric key column).
    pub fn supports_range(&self) -> bool {
        self.ordered.is_some()
    }

    /// Equality postings for a key, ascending row ids. Drop-in for the
    /// hash join's build-table lookup: `None` and NULL-key behaviour match
    /// `exec::build_join_table` exactly.
    pub fn get(&self, key: &Key) -> Option<&Vec<usize>> {
        self.map.get(key)
    }

    /// Rough resident footprint, mirroring the join hash-table estimate.
    pub fn bytes(&self) -> u64 {
        let entry = mem::size_of::<Key>() + mem::size_of::<Vec<usize>>();
        let postings: usize = self.map.values().map(Vec::len).sum();
        let ordered = self
            .ordered
            .as_ref()
            .map_or(0, |o| o.len() * mem::size_of::<(f64, usize)>());
        (self.map.capacity() * entry + postings * mem::size_of::<usize>() + ordered) as u64
    }

    /// Resolve an access into an ascending selection vector over the
    /// index's batch — exactly the rows the equivalent `Filter` over a
    /// full `Scan` would keep, in the same order.
    pub fn select(&self, access: &IndexAccess) -> Vec<u32> {
        match access {
            IndexAccess::Eq(values) => {
                if values.iter().any(Value::is_null) {
                    return Vec::new(); // SQL equality never matches NULL
                }
                let key = Key::from_values(values);
                match self.map.get(&key) {
                    Some(rows) => rows.iter().map(|&r| r as u32).collect(),
                    None => Vec::new(),
                }
            }
            IndexAccess::Range { lo, hi } => self.select_range(lo.as_ref(), hi.as_ref()),
        }
    }

    fn select_range(&self, lo: Option<&(Value, bool)>, hi: Option<&(Value, bool)>) -> Vec<u32> {
        let Some(ordered) = &self.ordered else {
            return Vec::new(); // planner never attaches Range without support
        };
        // Candidate span with *inclusive* f64 bounds: `f64` conversion is
        // monotone, so every true match lands inside; the exact re-check
        // below discards boundary rows the rounding let through.
        let start = match lo.and_then(|(v, _)| numeric_of(v)) {
            Some(f) => ordered.partition_point(|e| e.0 < f),
            None => 0,
        };
        let end = match hi.and_then(|(v, _)| numeric_of(v)) {
            Some(f) => ordered.partition_point(|e| e.0 <= f),
            None => ordered.len(),
        };
        let chunk = &self.batch.cols()[self.cols[0]];
        let mut out: Vec<u32> = Vec::new();
        for &(_, row) in &ordered[start..end.max(start)] {
            let v = chunk.value_at(row);
            let pass_lo = match lo {
                None => true,
                Some((bound, inclusive)) => match v.sql_cmp(bound) {
                    Ok(Some(ord)) => ord.is_gt() || (*inclusive && ord.is_eq()),
                    Ok(None) | Err(_) => false,
                },
            };
            let pass_hi = match hi {
                None => true,
                Some((bound, inclusive)) => match v.sql_cmp(bound) {
                    Ok(Some(ord)) => ord.is_lt() || (*inclusive && ord.is_eq()),
                    Ok(None) | Err(_) => false,
                },
            };
            if pass_lo && pass_hi {
                out.push(row as u32);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, Schema};

    fn batch(rows: Vec<Vec<Value>>) -> Arc<ColBatch> {
        let schema = Schema::new(vec![
            Column::bare("k", DataType::Integer),
            Column::bare("v", DataType::Text),
        ]);
        Arc::new(ColBatch::from_rows(&schema, rows))
    }

    fn demo() -> Arc<ColBatch> {
        batch(vec![
            vec![Value::Int(3), Value::str("a")],
            vec![Value::Int(1), Value::str("b")],
            vec![Value::Null, Value::str("c")],
            vec![Value::Int(3), Value::str("d")],
            vec![Value::Int(2), Value::str("e")],
        ])
    }

    fn build(b: &Arc<ColBatch>) -> Index {
        Index::build("t", &["k".to_string()], vec![0], b).expect("build")
    }

    #[test]
    fn eq_postings_ascend_and_skip_nulls() {
        let b = demo();
        let idx = build(&b);
        assert_eq!(
            idx.select(&IndexAccess::Eq(vec![Value::Int(3)])),
            vec![0, 3]
        );
        assert_eq!(
            idx.select(&IndexAccess::Eq(vec![Value::Int(9)])),
            Vec::<u32>::new()
        );
        assert_eq!(
            idx.select(&IndexAccess::Eq(vec![Value::Null])),
            Vec::<u32>::new(),
            "NULL never matches equality"
        );
        // Float(3.0) normalizes to the same key as Int(3) — matching
        // SQL equality (3 = 3.0 is true).
        assert_eq!(
            idx.select(&IndexAccess::Eq(vec![Value::Float(3.0)])),
            vec![0, 3]
        );
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn range_select_matches_filter_semantics() {
        let b = demo();
        let idx = build(&b);
        assert!(idx.supports_range());
        let sel = |lo: Option<(i64, bool)>, hi: Option<(i64, bool)>| {
            idx.select(&IndexAccess::Range {
                lo: lo.map(|(v, inc)| (Value::Int(v), inc)),
                hi: hi.map(|(v, inc)| (Value::Int(v), inc)),
            })
        };
        assert_eq!(sel(Some((2, false)), None), vec![0, 3]); // k > 2
        assert_eq!(sel(Some((2, true)), None), vec![0, 3, 4]); // k >= 2
        assert_eq!(sel(None, Some((2, false))), vec![1]); // k < 2
        assert_eq!(sel(Some((1, false)), Some((3, false))), vec![4]); // 1 < k < 3
        assert_eq!(sel(None, None), vec![0, 1, 3, 4]); // non-null rows
    }

    #[test]
    fn text_keys_lose_range_but_keep_eq() {
        let b = demo();
        let idx = Index::build("t", &["v".to_string()], vec![1], &b).expect("build");
        assert!(!idx.supports_range());
        assert_eq!(idx.select(&IndexAccess::Eq(vec![Value::str("d")])), vec![3]);
        assert!(idx
            .select(&IndexAccess::Range {
                lo: None,
                hi: Some((Value::str("c"), true)),
            })
            .is_empty());
    }

    #[test]
    fn extended_matches_full_rebuild() {
        let b = demo();
        let idx = build(&b);
        let grown = batch(vec![
            vec![Value::Int(3), Value::str("a")],
            vec![Value::Int(1), Value::str("b")],
            vec![Value::Null, Value::str("c")],
            vec![Value::Int(3), Value::str("d")],
            vec![Value::Int(2), Value::str("e")],
            vec![Value::Int(3), Value::str("f")],
            vec![Value::Null, Value::str("g")],
            vec![Value::Int(0), Value::str("h")],
        ]);
        let ext = idx.extended(&grown).expect("extends");
        let rebuilt = build(&grown);
        assert_eq!(
            ext.select(&IndexAccess::Eq(vec![Value::Int(3)])),
            rebuilt.select(&IndexAccess::Eq(vec![Value::Int(3)]))
        );
        assert_eq!(
            ext.select(&IndexAccess::Range {
                lo: Some((Value::Int(1), true)),
                hi: None
            }),
            rebuilt.select(&IndexAccess::Range {
                lo: Some((Value::Int(1), true)),
                hi: None
            })
        );
        assert_eq!(ext.distinct_keys(), rebuilt.distinct_keys());
        assert!(Arc::ptr_eq(ext.batch(), &grown));
        // A shrunk batch is not an extension.
        assert!(ext.extended(&b).is_none());
    }

    #[test]
    fn multi_column_keys_probe_in_index_order() {
        let schema = Schema::new(vec![
            Column::bare("a", DataType::Integer),
            Column::bare("b", DataType::Text),
        ]);
        let b = Arc::new(ColBatch::from_rows(
            &schema,
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::str("y")],
                vec![Value::Int(1), Value::str("x")],
            ],
        ));
        let idx =
            Index::build("t", &["a".to_string(), "b".to_string()], vec![0, 1], &b).expect("build");
        assert!(!idx.supports_range());
        assert_eq!(
            idx.select(&IndexAccess::Eq(vec![Value::Int(1), Value::str("x")])),
            vec![0, 2]
        );
    }
}
