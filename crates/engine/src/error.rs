//! Error type for planning and execution.

use std::fmt;

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// An error raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced table or CTE does not exist.
    UnknownTable(String),
    /// A column reference could not be resolved.
    UnknownColumn(String),
    /// A bare column name matched more than one input column.
    AmbiguousColumn(String),
    /// An operation was applied to values of incompatible types.
    TypeError(String),
    /// The query shape is not supported by the engine.
    Unsupported(String),
    /// A catalog operation failed (duplicate table, arity mismatch, ...).
    Catalog(String),
    /// Any other planning/execution failure.
    Execution(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            EngineError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            EngineError::AmbiguousColumn(name) => write!(f, "ambiguous column `{name}`"),
            EngineError::TypeError(msg) => write!(f, "type error: {msg}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            EngineError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            EngineError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<conquer_sql::ParseError> for EngineError {
    fn from(e: conquer_sql::ParseError) -> Self {
        EngineError::Execution(format!("parse error: {e}"))
    }
}
