//! Error type for planning and execution.

use std::fmt;

use crate::governor::LimitTrip;

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// An error raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced table or CTE does not exist.
    UnknownTable(String),
    /// A column reference could not be resolved.
    UnknownColumn(String),
    /// A bare column name matched more than one input column.
    AmbiguousColumn(String),
    /// An operation was applied to values of incompatible types.
    TypeError(String),
    /// The query shape is not supported by the engine.
    Unsupported(String),
    /// A catalog operation failed (duplicate table, arity mismatch, ...).
    Catalog(String),
    /// A runtime expression-evaluation failure with SQL semantics: integer
    /// overflow, division by zero, invalid casts.
    Eval(String),
    /// The wall-clock budget of [`ResourceLimits`](crate::ResourceLimits)
    /// was exhausted.
    Timeout(LimitTrip),
    /// The memory budget was exhausted.
    MemoryExceeded(LimitTrip),
    /// The row budget (output plus intermediate rows) was exhausted.
    RowLimitExceeded(LimitTrip),
    /// A [`CancellationToken`](crate::CancellationToken) was tripped.
    Cancelled(LimitTrip),
    /// A durable-storage failure: WAL append/sync, checkpoint, or a
    /// corrupt file discovered during recovery.
    Storage(String),
    /// Any other planning/execution failure.
    Execution(String),
}

impl EngineError {
    /// The governor trip snapshot, when this error came from a resource
    /// limit or cancellation.
    pub fn limit_trip(&self) -> Option<&LimitTrip> {
        match self {
            EngineError::Timeout(t)
            | EngineError::MemoryExceeded(t)
            | EngineError::RowLimitExceeded(t)
            | EngineError::Cancelled(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            EngineError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            EngineError::AmbiguousColumn(name) => write!(f, "ambiguous column `{name}`"),
            EngineError::TypeError(msg) => write!(f, "type error: {msg}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            EngineError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            EngineError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            EngineError::Timeout(trip) => write!(f, "query timed out {trip}"),
            EngineError::MemoryExceeded(trip) => write!(f, "memory limit exceeded {trip}"),
            EngineError::RowLimitExceeded(trip) => write!(f, "row limit exceeded {trip}"),
            EngineError::Cancelled(trip) => write!(f, "query cancelled {trip}"),
            EngineError::Storage(msg) => write!(f, "storage error: {msg}"),
            EngineError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<conquer_sql::ParseError> for EngineError {
    fn from(e: conquer_sql::ParseError) -> Self {
        EngineError::Execution(format!("parse error: {e}"))
    }
}
