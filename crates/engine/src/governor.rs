//! Execution governance: resource limits and cooperative cancellation.
//!
//! A [`Governor`] is created once per query (covering parse → plan →
//! execute, including CTE materialization at plan time) from the
//! [`ResourceLimits`] and optional [`CancellationToken`] carried by
//! [`ExecOptions`](crate::plan::ExecOptions). Physical operators check it
//! cooperatively:
//!
//! * [`Governor::tick`] — called once per row (or per candidate pair) in
//!   every hot loop. It is one relaxed atomic increment; every 256 ticks it
//!   reads the clock and the cancellation flag, so a timeout or a token
//!   trip surfaces within a few hundred rows of work (well inside ~50 ms
//!   for any realistic row width).
//! * [`Governor::emit_row`] / [`Governor::add_rows`] — row-production
//!   accounting. `max_rows` bounds the *cumulative* rows produced by all
//!   operators (output plus intermediates), which is what actually blows up
//!   on a runaway join.
//! * [`Governor::reserve_mem`] — byte-level accounting for operator state:
//!   join hash tables, aggregation group tables, DISTINCT sets,
//!   materialized CTEs, and join output rows. Estimates reuse the same
//!   formulas as the `EXPLAIN ANALYZE` [`NodeStats`](crate::stats::NodeStats)
//!   memory counters; the budget is a cumulative allocation estimate, not a
//!   peak-RSS measurement.
//!
//! All counters are relaxed atomics and the governor is consulted by
//! shared reference, so one `Governor` is safely shared by every worker of
//! a morsel-parallel operator: workers `tick` and `emit_rows` concurrently
//! against the same budget, the first worker whose check trips returns the
//! structured error, and the executor's shared abort flag stops the
//! remaining workers at their next morsel boundary. Budgets are therefore
//! *global* across workers (a query does not get `N×` the memory budget at
//! `N` threads); the only thread-count sensitivity is which worker happens
//! to observe the trip first, never whether a trip occurs.
//!
//! A trip unwinds as one of the structured
//! [`EngineError::{Timeout, MemoryExceeded, RowLimitExceeded, Cancelled}`](crate::error::EngineError)
//! variants carrying a [`LimitTrip`] snapshot (operator, elapsed time, rows
//! and bytes accounted at the moment of the trip), and is recorded as a
//! `limit_trip` span event plus a `governor.trip.<kind>` metrics counter in
//! `conquer-obs`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{EngineError, Result};

/// How often `tick` reads the clock / cancellation flag, in ticks.
const CHECK_EVERY: u64 = 256;

/// Resource budget for one query. `None` fields are unlimited; the default
/// is fully unlimited (the ungoverned fast path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Wall-clock budget from query start (parse time included).
    pub timeout: Option<Duration>,
    /// Cumulative rows produced by all operators (output + intermediates).
    pub max_rows: Option<u64>,
    /// Estimated bytes of operator state (hash tables, group tables,
    /// DISTINCT sets, materialized CTEs, join outputs).
    pub max_memory_bytes: Option<u64>,
}

impl ResourceLimits {
    /// No limits at all (the `Default` value, spelled out).
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits::default()
    }

    /// `true` when every field is `None`.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_rows.is_none() && self.max_memory_bytes.is_none()
    }

    pub fn with_timeout(mut self, timeout: Duration) -> ResourceLimits {
        self.timeout = Some(timeout);
        self
    }

    pub fn with_max_rows(mut self, max_rows: u64) -> ResourceLimits {
        self.max_rows = Some(max_rows);
        self
    }

    pub fn with_max_memory_bytes(mut self, bytes: u64) -> ResourceLimits {
        self.max_memory_bytes = Some(bytes);
        self
    }
}

/// A shareable cancellation flag. Clone it, hand a copy to another thread,
/// and call [`CancellationToken::cancel`] to stop a running query: the
/// executor notices at its next cooperative check and unwinds with
/// [`EngineError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// What kind of limit tripped (for the metrics counter name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TripKind {
    Timeout,
    Memory,
    Rows,
    Cancelled,
}

impl TripKind {
    fn name(self) -> &'static str {
        match self {
            TripKind::Timeout => "timeout",
            TripKind::Memory => "memory",
            TripKind::Rows => "rows",
            TripKind::Cancelled => "cancelled",
        }
    }
}

/// Snapshot of governor state at the moment a limit tripped, carried inside
/// the corresponding [`EngineError`] variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitTrip {
    /// The operator whose cooperative check tripped (e.g. `"hash_join"`,
    /// `"cte.materialize"`).
    pub operator: &'static str,
    /// Wall-clock milliseconds since the governor was created.
    pub elapsed_ms: u64,
    /// Cumulative rows accounted when the trip fired.
    pub rows: u64,
    /// Cumulative estimated bytes reserved when the trip fired.
    pub mem_bytes: u64,
}

impl std::fmt::Display for LimitTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "at operator `{}` after {} ms ({} rows, ~{} bytes)",
            self.operator, self.elapsed_ms, self.rows, self.mem_bytes
        )
    }
}

/// Per-query governance state. Shared by reference through the executor and
/// the expression evaluator's [`Env`](crate::expr::Env) chain (so correlated
/// subqueries are governed too); all counters are atomics, making the
/// governor safe to consult from the thread running the query while another
/// thread cancels the token.
#[derive(Debug)]
pub struct Governor {
    limits: ResourceLimits,
    token: Option<CancellationToken>,
    started: Instant,
    deadline: Option<Instant>,
    /// Cooperative-check tick counter (rows / candidate pairs visited).
    work: AtomicU64,
    /// Cumulative rows produced by all operators.
    rows: AtomicU64,
    /// Cumulative estimated bytes of operator state.
    mem: AtomicU64,
}

impl Governor {
    pub fn new(limits: ResourceLimits, token: Option<CancellationToken>) -> Governor {
        let started = Instant::now();
        Governor {
            deadline: limits.timeout.map(|t| started + t),
            limits,
            token,
            started,
            work: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            mem: AtomicU64::new(0),
        }
    }

    /// Build a governor for the given options, or `None` when the options
    /// carry no limits and no token — the ungoverned fast path costs
    /// nothing per row.
    pub fn for_options(options: &crate::plan::ExecOptions) -> Option<Governor> {
        if options.limits.is_unlimited() && options.cancellation.is_none() {
            return None;
        }
        Some(Governor::new(options.limits, options.cancellation.clone()))
    }

    /// Rows accounted so far.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Estimated bytes reserved so far.
    pub fn mem_bytes(&self) -> u64 {
        self.mem.load(Ordering::Relaxed)
    }

    /// Wall time since the governor was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// One unit of work in a hot loop. Cheap (a relaxed increment); every
    /// [`CHECK_EVERY`] ticks it performs the full timeout/cancellation
    /// check.
    #[inline]
    pub fn tick(&self, op: &'static str) -> Result<()> {
        let n = self.work.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(CHECK_EVERY) {
            self.check_now(op)?;
        }
        Ok(())
    }

    /// Bulk equivalent of [`tick`](Governor::tick) for vectorized kernels:
    /// account `n` units of work in one relaxed add and run the full check
    /// whenever the counter crosses a [`CHECK_EVERY`] boundary. A kernel
    /// that processes a whole morsel in a tight loop calls this once per
    /// morsel instead of once per row, with the same cancellation
    /// granularity the row path gets (morsels are ≤ 1024 rows, a few
    /// multiples of the check interval).
    #[inline]
    pub fn ticks(&self, n: u64, op: &'static str) -> Result<()> {
        if n == 0 {
            return Ok(());
        }
        let before = self.work.fetch_add(n, Ordering::Relaxed);
        if before / CHECK_EVERY != before.saturating_add(n) / CHECK_EVERY {
            self.check_now(op)?;
        }
        Ok(())
    }

    /// Immediate timeout + cancellation check (used at operator entry and
    /// by `tick` on its check interval).
    pub fn check_now(&self, op: &'static str) -> Result<()> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Err(self.trip(TripKind::Cancelled, op));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(TripKind::Timeout, op));
            }
        }
        Ok(())
    }

    /// Account `n` produced rows and fail if the row budget is exhausted.
    pub fn add_rows(&self, n: u64, op: &'static str) -> Result<()> {
        let total = self.rows.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if let Some(max) = self.limits.max_rows {
            if total > max {
                return Err(self.trip(TripKind::Rows, op));
            }
        }
        Ok(())
    }

    /// Reserve `bytes` of estimated operator-state memory and fail if the
    /// budget is exhausted. The accounting is cumulative (never released):
    /// a budget, not an allocator measurement.
    pub fn reserve_mem(&self, bytes: u64, op: &'static str) -> Result<()> {
        let total = self
            .mem
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if let Some(max) = self.limits.max_memory_bytes {
            if total > max {
                return Err(self.trip(TripKind::Memory, op));
            }
        }
        Ok(())
    }

    /// Account one emitted row of `bytes` estimated size — the per-emission
    /// check used inside join loops, where output can blow up well past the
    /// input sizes.
    #[inline]
    pub fn emit_row(&self, bytes: u64, op: &'static str) -> Result<()> {
        self.emit_rows(1, bytes, op)
    }

    /// Account `n` emitted rows of `bytes_per_row` estimated size each
    /// (joins use this both per emission and for bulk pass-throughs).
    #[inline]
    pub fn emit_rows(&self, n: u64, bytes_per_row: u64, op: &'static str) -> Result<()> {
        if n == 0 {
            return Ok(());
        }
        self.add_rows(n, op)?;
        if bytes_per_row > 0 {
            self.reserve_mem(n.saturating_mul(bytes_per_row), op)?;
        }
        Ok(())
    }

    /// Build the structured error for a trip, recording a `limit_trip` span
    /// event and bumping the matching metrics counter.
    fn trip(&self, kind: TripKind, op: &'static str) -> EngineError {
        let snapshot = LimitTrip {
            operator: op,
            elapsed_ms: self.started.elapsed().as_millis() as u64,
            rows: self.rows.load(Ordering::Relaxed),
            mem_bytes: self.mem.load(Ordering::Relaxed),
        };
        {
            // A zero-length span acts as a structured event in the trace.
            let _event = conquer_obs::span("limit_trip")
                .field("kind", kind.name())
                .field("operator", op)
                .field("elapsed_ms", snapshot.elapsed_ms)
                .field("rows", snapshot.rows)
                .field("mem_bytes", snapshot.mem_bytes);
        }
        conquer_obs::registry().counter("governor.trips").inc();
        conquer_obs::registry()
            .counter(match kind {
                TripKind::Timeout => "governor.trip.timeout",
                TripKind::Memory => "governor.trip.memory",
                TripKind::Rows => "governor.trip.rows",
                TripKind::Cancelled => "governor.trip.cancelled",
            })
            .inc();
        match kind {
            TripKind::Timeout => EngineError::Timeout(snapshot),
            TripKind::Memory => EngineError::MemoryExceeded(snapshot),
            TripKind::Rows => EngineError::RowLimitExceeded(snapshot),
            TripKind::Cancelled => EngineError::Cancelled(snapshot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_options_build_no_governor() {
        let options = crate::plan::ExecOptions::default();
        assert!(Governor::for_options(&options).is_none());
    }

    #[test]
    fn row_limit_trips_with_snapshot() {
        let gov = Governor::new(ResourceLimits::default().with_max_rows(10), None);
        assert!(gov.add_rows(10, "scan").is_ok());
        let err = gov.add_rows(1, "scan").unwrap_err();
        match err {
            EngineError::RowLimitExceeded(trip) => {
                assert_eq!(trip.operator, "scan");
                assert_eq!(trip.rows, 11);
            }
            other => panic!("expected RowLimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn memory_limit_trips() {
        let gov = Governor::new(ResourceLimits::default().with_max_memory_bytes(100), None);
        assert!(gov.reserve_mem(100, "hash_join").is_ok());
        assert!(matches!(
            gov.reserve_mem(1, "hash_join"),
            Err(EngineError::MemoryExceeded(_))
        ));
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let gov = Governor::new(ResourceLimits::default().with_timeout(Duration::ZERO), None);
        assert!(matches!(
            gov.check_now("filter"),
            Err(EngineError::Timeout(_))
        ));
    }

    #[test]
    fn cancellation_is_visible_across_clones() {
        let token = CancellationToken::new();
        let gov = Governor::new(ResourceLimits::default(), Some(token.clone()));
        assert!(gov.check_now("scan").is_ok());
        token.clone().cancel();
        assert!(matches!(
            gov.check_now("scan"),
            Err(EngineError::Cancelled(_))
        ));
    }

    #[test]
    fn concurrent_accounting_is_exact_and_trips_once_tripped() {
        // Eight threads hammer the same governor; the total must be the
        // exact sum of their contributions (no lost updates) and every
        // thread must observe the row budget as tripped once it is.
        let gov = Governor::new(ResourceLimits::default().with_max_rows(100_000), None);
        let errors: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let mut errs = 0;
                        for _ in 0..20_000 {
                            let _ = gov.tick("agg");
                            if gov.add_rows(1, "agg").is_err() {
                                errs += 1;
                            }
                        }
                        errs
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // 160k rows accounted against a 100k budget: every row is counted
        // exactly once, so exactly 60k of the add_rows calls failed.
        assert_eq!(gov.rows(), 160_000);
        assert_eq!(errors.iter().sum::<usize>(), 60_000);
        // Once over budget the governor stays tripped for everyone.
        assert!(matches!(
            gov.add_rows(1, "agg"),
            Err(EngineError::RowLimitExceeded(_))
        ));
    }

    #[test]
    fn concurrent_cancellation_reaches_all_workers() {
        let token = CancellationToken::new();
        let gov = Governor::new(ResourceLimits::default(), Some(token.clone()));
        let start = std::sync::Barrier::new(5);
        let cancelled_everywhere = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        start.wait();
                        // Spin until the cooperative check observes the
                        // token; CHECK_EVERY bounds the latency in ticks.
                        for _ in 0..1_000_000 {
                            if gov.tick("scan").is_err() {
                                return true;
                            }
                        }
                        false
                    })
                })
                .collect();
            token.cancel();
            start.wait();
            handles.into_iter().all(|h| h.join().unwrap())
        });
        assert!(cancelled_everywhere);
    }

    #[test]
    fn tick_checks_on_interval() {
        let token = CancellationToken::new();
        let gov = Governor::new(ResourceLimits::default(), Some(token.clone()));
        token.cancel();
        // The first tick (work == 0) performs the check immediately.
        assert!(gov.tick("scan").is_err());
    }
}
