//! Durability wiring: the binary encoding of catalog mutations for the
//! write-ahead log and checkpoint segments, plus the background
//! [`Checkpointer`].
//!
//! The storage layer (`conquer-storage`) moves opaque bytes; this module
//! owns what the bytes mean. Five record kinds cover every catalog
//! mutation:
//!
//! | kind | record | logged by |
//! |------|--------|-----------|
//! | 1 | `Create(name, schema)`              | `CREATE TABLE` |
//! | 2 | `Insert(name, rows)`                | `INSERT` (the new rows only) |
//! | 3 | `Snapshot(name, schema, stats, rows, indexes)` | `Database::register` (annotation recompute, bulk loads) |
//! | 4 | `Drop(name)`                        | `Database::drop_table` |
//! | 5 | `Index(name, key columns)`          | `Database::create_index` |
//!
//! Checkpoint segments reuse the `Snapshot` payload encoding, so the same
//! decoder serves WAL replay and segment loading. `TableStats` are stored
//! in snapshots and recovered verbatim — annotations and statistics are
//! first-class durable data, not recomputed on boot. Index *declarations*
//! are durable too (a snapshot carries its table's declared indexes); the
//! built postings are not — recovery reinstalls declarations unbuilt, and
//! the first query that plans against the table rebuilds lazily, keeping
//! cold-boot recovery time independent of index count.
//!
//! Every decoder is bounds-checked and returns [`EngineError::Storage`] on
//! malformed input; nothing here can panic on a corrupt file.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use conquer_storage::Store;

use crate::error::{EngineError, Result};
use crate::schema::{Column, DataType, Schema};
use crate::stats::{ColumnStats, TableStats};
use crate::table::{Row, Table};
use crate::value::Value;
use crate::Database;

pub(crate) const KIND_CREATE: u8 = 1;
pub(crate) const KIND_INSERT: u8 = 2;
pub(crate) const KIND_SNAPSHOT: u8 = 3;
pub(crate) const KIND_DROP: u8 = 4;
pub(crate) const KIND_INDEX: u8 = 5;

/// How a durable [`Database`](crate::Database) is opened — see
/// [`Database::open`](crate::Database::open).
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// WAL fsync policy.
    pub sync: conquer_storage::SyncPolicy,
    /// Checkpoint inline when the WAL reaches this many bytes (`0`
    /// disables the size trigger; the background checkpointer and explicit
    /// [`Database::checkpoint`](crate::Database::checkpoint) calls still
    /// work).
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            sync: conquer_storage::SyncPolicy::Always,
            checkpoint_wal_bytes: 64 << 20,
        }
    }
}

/// The durable half of a [`Database`](crate::Database): the store plus the
/// auto-checkpoint threshold.
pub(crate) struct Durability {
    pub store: Store,
    pub checkpoint_wal_bytes: u64,
}

pub(crate) fn storage_err(e: std::io::Error) -> EngineError {
    EngineError::Storage(e.to_string())
}

/// Bridge `conquer_storage::fault` to the engine's deterministic fault
/// schedule. Installed once per process on the first durable open; a no-op
/// bridge without the `fault-injection` feature (`faults::trip` compiles
/// to `Ok(())`).
pub(crate) fn install_fault_hook() {
    fn hook(point: &'static str) -> std::io::Result<()> {
        crate::faults::trip(point).map_err(|e| std::io::Error::other(e.to_string()))
    }
    conquer_storage::fault::set_hook(hook);
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(3);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(4);
            put_str(buf, s);
        }
        Value::Date(d) => {
            buf.push(5);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Date => 3,
        DataType::Boolean => 4,
        DataType::Any => 5,
    }
}

fn type_of_tag(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Date,
        4 => DataType::Boolean,
        5 => DataType::Any,
        _ => return None,
    })
}

fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    buf.extend_from_slice(&(schema.columns.len() as u32).to_le_bytes());
    for col in &schema.columns {
        match &col.qualifier {
            Some(q) => {
                buf.push(1);
                put_str(buf, q);
            }
            None => buf.push(0),
        }
        put_str(buf, &col.name);
        buf.push(type_tag(col.ty));
    }
}

fn put_stats(buf: &mut Vec<u8>, stats: &TableStats) {
    buf.extend_from_slice(&stats.row_count.to_le_bytes());
    buf.extend_from_slice(&(stats.columns.len() as u32).to_le_bytes());
    for col in &stats.columns {
        buf.extend_from_slice(&col.ndv.to_le_bytes());
        buf.extend_from_slice(&col.null_count.to_le_bytes());
        for bound in [col.min, col.max] {
            match bound {
                Some(v) => {
                    buf.push(1);
                    buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                None => buf.push(0),
            }
        }
    }
}

fn put_rows(buf: &mut Vec<u8>, rows: &[Row]) {
    buf.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    for row in rows {
        buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in row {
            put_value(buf, v);
        }
    }
}

/// `Create` record: table name + schema.
pub(crate) fn encode_create(name: &str, schema: &Schema) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, name);
    put_schema(&mut buf, schema);
    buf
}

/// `Insert` record: table name + the newly appended rows only.
pub(crate) fn encode_insert(name: &str, rows: &[Row]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, name);
    put_rows(&mut buf, rows);
    buf
}

/// `Drop` record: just the table name.
pub(crate) fn encode_drop(name: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, name);
    buf
}

/// `Index` record: table name + key column names in index order.
pub(crate) fn encode_index(name: &str, cols: &[String]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, name);
    buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for col in cols {
        put_str(&mut buf, col);
    }
    buf
}

/// `Snapshot` record / checkpoint segment payload: the full table (name,
/// schema, stats, rows) plus its declared index key-column lists. The
/// index section is not optional — every snapshot carries it (possibly
/// empty), so the decoder rejects truncation anywhere in the payload.
pub(crate) fn encode_snapshot(
    table: &Table,
    stats: &TableStats,
    indexes: &[Vec<String>],
) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, table.name());
    put_schema(&mut buf, table.schema());
    put_stats(&mut buf, stats);
    // Stream row-at-a-time out of the columnar batch rather than calling
    // `table.rows()`, which would materialize (and keep) a full pivot.
    buf.extend_from_slice(&(table.len() as u64).to_le_bytes());
    for i in 0..table.len() {
        let row = table.row_at(i);
        buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in &row {
            put_value(&mut buf, v);
        }
    }
    buf.extend_from_slice(&(indexes.len() as u32).to_le_bytes());
    for cols in indexes {
        buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
        for col in cols {
            put_str(&mut buf, col);
        }
    }
    buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let slice = self
            .bytes
            .get(self.at..self.at.saturating_add(n))
            .ok_or_else(|| EngineError::Storage("truncated durable record".into()))?;
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EngineError::Storage("invalid UTF-8 in durable record".into()))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.u64()? as i64),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(Arc::from(self.str()?.as_str())),
            5 => {
                let b = self.take(4)?;
                Value::Date(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            tag => {
                return Err(EngineError::Storage(format!(
                    "unknown value tag {tag} in durable record"
                )))
            }
        })
    }

    fn schema(&mut self) -> Result<Schema> {
        let n = self.u32()? as usize;
        let mut columns = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let qualifier = match self.u8()? {
                0 => None,
                _ => Some(self.str()?),
            };
            let name = self.str()?;
            let tag = self.u8()?;
            let ty = type_of_tag(tag).ok_or_else(|| {
                EngineError::Storage(format!("unknown type tag {tag} in durable record"))
            })?;
            columns.push(Column {
                qualifier,
                name,
                ty,
            });
        }
        Ok(Schema::new(columns))
    }

    fn stats(&mut self) -> Result<TableStats> {
        let row_count = self.u64()?;
        let n = self.u32()? as usize;
        let mut columns = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let ndv = self.u64()?;
            let null_count = self.u64()?;
            let mut bounds = [None, None];
            for bound in &mut bounds {
                if self.u8()? != 0 {
                    *bound = Some(f64::from_bits(self.u64()?));
                }
            }
            columns.push(ColumnStats {
                ndv,
                null_count,
                min: bounds[0],
                max: bounds[1],
            });
        }
        Ok(TableStats { row_count, columns })
    }

    fn rows(&mut self) -> Result<Vec<Row>> {
        let n = self.u64()? as usize;
        let mut rows = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let width = self.u32()? as usize;
            let mut row = Vec::with_capacity(width.min(1 << 12));
            for _ in 0..width {
                row.push(self.value()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    fn index_decl(&mut self) -> Result<Vec<String>> {
        let n = self.u32()? as usize;
        let mut cols = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            cols.push(self.str()?);
        }
        Ok(cols)
    }

    fn finish(self) -> Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(EngineError::Storage(
                "trailing bytes in durable record".into(),
            ))
        }
    }
}

pub(crate) fn decode_create(payload: &[u8]) -> Result<(String, Schema)> {
    let mut cur = Cursor::new(payload);
    let name = cur.str()?;
    let schema = cur.schema()?;
    cur.finish()?;
    Ok((name, schema))
}

pub(crate) fn decode_insert(payload: &[u8]) -> Result<(String, Vec<Row>)> {
    let mut cur = Cursor::new(payload);
    let name = cur.str()?;
    let rows = cur.rows()?;
    cur.finish()?;
    Ok((name, rows))
}

pub(crate) fn decode_drop(payload: &[u8]) -> Result<String> {
    let mut cur = Cursor::new(payload);
    let name = cur.str()?;
    cur.finish()?;
    Ok(name)
}

pub(crate) fn decode_index(payload: &[u8]) -> Result<(String, Vec<String>)> {
    let mut cur = Cursor::new(payload);
    let name = cur.str()?;
    let cols = cur.index_decl()?;
    cur.finish()?;
    Ok((name, cols))
}

pub(crate) fn decode_snapshot(payload: &[u8]) -> Result<(Table, TableStats, Vec<Vec<String>>)> {
    let mut cur = Cursor::new(payload);
    let name = cur.str()?;
    let schema = cur.schema()?;
    let stats = cur.stats()?;
    // Stream decoded rows straight into column chunks — recovery never
    // builds an intermediate `Vec<Vec<Value>>` of the whole segment.
    let mut cols = crate::col::ColBatch::from_schema(&schema);
    let n = cur.u64()? as usize;
    for _ in 0..n {
        let width = cur.u32()? as usize;
        if width != schema.len() {
            return Err(EngineError::Storage(format!(
                "snapshot row arity {width} does not match schema width {}",
                schema.len()
            )));
        }
        let mut row = Vec::with_capacity(width.min(1 << 12));
        for _ in 0..width {
            row.push(cur.value()?);
        }
        cols.push_row(row);
    }
    let n_indexes = cur.u32()? as usize;
    let mut indexes = Vec::with_capacity(n_indexes.min(1 << 10));
    for _ in 0..n_indexes {
        indexes.push(cur.index_decl()?);
    }
    cur.finish()?;
    Ok((Table::from_parts(name, schema, cols), stats, indexes))
}

// ---------------------------------------------------------------------------
// Background checkpointer
// ---------------------------------------------------------------------------

/// A background thread that periodically checkpoints a durable database
/// and ticks the interval fsync policy. Stops (and joins) on drop or
/// [`Checkpointer::stop`].
pub struct Checkpointer {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
    errors: Arc<AtomicU64>,
}

impl Checkpointer {
    /// Spawn the checkpointer: every `interval` the database is
    /// checkpointed if its WAL holds any records; between checkpoints the
    /// WAL's `interval_ms` sync policy is ticked so it holds even when no
    /// appends arrive.
    pub fn spawn(db: Arc<Database>, interval: Duration) -> Checkpointer {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let errors = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_errors = Arc::clone(&errors);
        let tick = interval
            .min(Duration::from_millis(200))
            .max(Duration::from_millis(10));
        let handle = std::thread::Builder::new()
            .name("conquer-checkpointer".into())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                let mut last_checkpoint = Instant::now();
                let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if *stopped {
                        return;
                    }
                    let (guard, _) = cvar
                        .wait_timeout(stopped, tick)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if db.flush_if_due().is_err() {
                        thread_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    if last_checkpoint.elapsed() >= interval {
                        last_checkpoint = Instant::now();
                        match db.checkpoint_if_dirty() {
                            Ok(_) => {}
                            Err(_) => {
                                thread_errors.fetch_add(1, Ordering::Relaxed);
                                conquer_obs::registry()
                                    .counter("storage.checkpoint.errors")
                                    .inc();
                            }
                        }
                    }
                }
            })
            .ok();
        Checkpointer {
            stop,
            handle,
            errors,
        }
    }

    /// Background errors observed so far (also counted in
    /// `storage.checkpoint.errors`).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Signal the thread to stop and join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_encodings_roundtrip() {
        let schema = Schema::new(vec![
            Column::bare("a", DataType::Integer),
            Column::new(Some("t"), "b", DataType::Text),
        ]);
        let (name, decoded) = decode_create(&encode_create("t", &schema)).unwrap();
        assert_eq!(name, "t");
        assert_eq!(decoded, schema);

        let rows = vec![
            vec![Value::Int(-7), Value::str("x")],
            vec![Value::Null, Value::Float(2.5)],
            vec![Value::Bool(true), Value::Date(19000)],
        ];
        let (name, decoded) = decode_insert(&encode_insert("t", &rows)).unwrap();
        assert_eq!(name, "t");
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0][0], Value::Int(-7));
        assert!(matches!(decoded[2][1], Value::Date(19000)));

        assert_eq!(decode_drop(&encode_drop("orders")).unwrap(), "orders");

        let cols = vec!["custkey".to_string(), "nationkey".to_string()];
        let (name, decoded) = decode_index(&encode_index("customer", &cols)).unwrap();
        assert_eq!(name, "customer");
        assert_eq!(decoded, cols);
    }

    #[test]
    fn snapshot_roundtrips_table_and_stats() {
        let mut table = Table::new("t", vec![("a", DataType::Integer), ("b", DataType::Text)]);
        table.push(vec![Value::Int(1), Value::str("x")]).unwrap();
        table.push(vec![Value::Int(2), Value::Null]).unwrap();
        let stats = TableStats::collect(table.rows(), 2);
        let decls = vec![vec!["a".to_string()]];
        let payload = encode_snapshot(&table, &stats, &decls);
        let (decoded, decoded_stats, decoded_decls) = decode_snapshot(&payload).unwrap();
        assert_eq!(decoded.name(), "t");
        assert_eq!(decoded.schema(), table.schema());
        assert_eq!(decoded.rows()[1][0], Value::Int(2));
        assert_eq!(decoded_stats.row_count, 2);
        assert_eq!(decoded_stats.columns[1].null_count, 1);
        assert_eq!(decoded_stats.columns[0].min, stats.columns[0].min);
        assert_eq!(decoded_decls, decls);
    }

    #[test]
    fn decoders_reject_corruption_without_panicking() {
        let mut table = Table::new("t", vec![("a", DataType::Integer)]);
        table.push(vec![Value::Int(1)]).unwrap();
        let stats = TableStats::collect(table.rows(), 1);
        let payload = encode_snapshot(&table, &stats, &[vec!["a".to_string()]]);
        for cut in 0..payload.len() {
            assert!(decode_snapshot(&payload[..cut]).is_err());
        }
        let mut extended = payload.clone();
        extended.push(0xAB);
        assert!(decode_snapshot(&extended).is_err());
    }
}
