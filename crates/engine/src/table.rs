//! Stored tables and transient row batches.
//!
//! Tables hold their data in columnar form (a [`ColBatch`]): typed
//! fixed-width columns, dictionary-encoded text, validity bitmaps. The
//! row-oriented [`Rows`] type remains the query *result* shape and the
//! interchange format for operators that still work row-at-a-time; a
//! table's rows are pivoted out of the batch lazily and cached.

use std::sync::Arc;

use crate::col::ColBatch;
use crate::error::{EngineError, Result};
use crate::schema::{Column, DataType, Schema};
use crate::value::Value;

/// A row is a vector of values matching some schema.
pub type Row = Vec<Value>;

/// A materialized batch of rows with its schema: the unit of data flow in
/// the executor, and the result type of queries.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl Rows {
    pub fn new(schema: Schema) -> Rows {
        Rows {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column values of the i-th output column, cloned.
    pub fn column(&self, i: usize) -> Vec<Value> {
        self.rows.iter().map(|r| r[i].clone()).collect()
    }

    /// Render as an aligned text table (for examples and the harness).
    pub fn to_text(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns
            .iter()
            .map(|c| match &c.qualifier {
                Some(q) => format!("{q}.{}", c.name),
                None => c.name.clone(),
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(ToString::to_string).collect())
            .collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', widths[i] - cell.len()));
            }
            out.push('\n');
        };
        write_row(&mut out, &headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(&mut out, &sep);
        for row in &cells {
            write_row(&mut out, row);
        }
        out
    }
}

/// A stored base table: a schema whose columns are unqualified, plus a
/// columnar batch of its data.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    cols: ColBatch,
}

impl Table {
    /// Create an empty table. Column qualifiers are stripped: stored
    /// columns are always unqualified and get qualified at scan time.
    pub fn new(name: impl Into<String>, columns: Vec<(&str, DataType)>) -> Table {
        let schema = Schema::new(
            columns
                .into_iter()
                .map(|(n, t)| Column::bare(n, t))
                .collect(),
        );
        let cols = ColBatch::from_schema(&schema);
        Table {
            name: name.into(),
            schema,
            cols,
        }
    }

    pub fn with_rows(
        name: impl Into<String>,
        columns: Vec<(&str, DataType)>,
        rows: Vec<Row>,
    ) -> Result<Table> {
        let mut t = Table::new(name, columns);
        for row in rows {
            t.push(row)?;
        }
        Ok(t)
    }

    /// Reassemble a table from decoded parts (durable recovery). The
    /// batch is trusted: rows were validated by `push` before being
    /// logged, and the storage layer checksum-verified them on the way
    /// back in. Recovery streams decoded rows straight into the batch,
    /// never materializing an intermediate `Vec<Row>`.
    pub(crate) fn from_parts(name: String, schema: Schema, cols: ColBatch) -> Table {
        Table { name, schema, cols }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's data, pivoted to rows (computed once and cached).
    /// Streaming consumers that touch each row once should prefer
    /// [`Table::row_at`] to avoid materializing the cache.
    pub fn rows(&self) -> &[Row] {
        self.cols.rows()
    }

    /// The columnar batch backing this table.
    pub fn cols(&self) -> &ColBatch {
        &self.cols
    }

    /// Row `i`, materialized on the fly (no pivot cache involved).
    pub fn row_at(&self, i: usize) -> Row {
        self.cols.row_at(i)
    }

    /// Rows `start..end`, materialized on the fly (used when logging an
    /// appended range to the WAL).
    pub fn rows_range(&self, start: usize, end: usize) -> Vec<Row> {
        (start..end).map(|i| self.cols.row_at(i)).collect()
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema
            .columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| EngineError::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// Append a row, checking arity and (loose) type compatibility.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::Catalog(format!(
                "table `{}` expects {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (value, col) in row.iter().zip(&self.schema.columns) {
            if !type_compatible(value, col.ty) {
                return Err(EngineError::TypeError(format!(
                    "column `{}.{}` has type {:?}, got {}",
                    self.name,
                    col.name,
                    col.ty,
                    value.type_name()
                )));
            }
        }
        self.cols.push_row(row);
        Ok(())
    }

    /// Bulk-append without per-row type checks (trusted generators).
    pub fn extend_unchecked(&mut self, rows: impl IntoIterator<Item = Row>) {
        for row in rows {
            self.cols.push_row(row);
        }
    }

    /// A copy of this table extended with one extra column computed from
    /// each row (used by the annotation pass).
    pub fn with_computed_column(
        &self,
        name: &str,
        ty: DataType,
        mut f: impl FnMut(&Row) -> Value,
    ) -> Table {
        let mut schema = self.schema.clone();
        schema.columns.push(Column::bare(name, ty));
        // Existing columns are shared; only the computed column is built.
        let mut computed = crate::col::ColumnChunk::for_type(ty);
        for i in 0..self.cols.len() {
            let row = self.cols.row_at(i);
            computed.push(f(&row));
        }
        let mut chunks: Vec<Arc<crate::col::ColumnChunk>> = self.cols.cols().to_vec();
        chunks.push(Arc::new(computed));
        Table {
            name: self.name.clone(),
            schema,
            cols: ColBatch::from_chunks(self.cols.len(), chunks),
        }
    }

    /// Snapshot the table's data as a shareable columnar batch (shallow:
    /// column chunks are shared copy-on-write).
    pub fn batch(&self) -> ColBatch {
        self.cols.clone()
    }

    /// View the table as a scan result under a binding name (row form;
    /// kept for tests and tooling — the executor scans batches).
    pub fn scan(self: &Arc<Table>, binding: &str) -> Rows {
        Rows {
            schema: self.schema.qualified(binding),
            rows: self.cols.rows().to_vec(),
        }
    }
}

fn type_compatible(value: &Value, ty: DataType) -> bool {
    matches!(
        (value, ty),
        (Value::Null, _)
            | (_, DataType::Any)
            | (Value::Int(_), DataType::Integer)
            | (Value::Int(_), DataType::Float)
            | (Value::Float(_), DataType::Float)
            | (Value::Str(_), DataType::Text)
            | (Value::Date(_), DataType::Date)
            | (Value::Bool(_), DataType::Boolean)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_checks_arity_and_types() {
        let mut t = Table::new("t", vec![("a", DataType::Integer), ("b", DataType::Text)]);
        t.push(vec![Value::Int(1), Value::str("x")]).unwrap();
        assert!(t.push(vec![Value::Int(1)]).is_err());
        assert!(t.push(vec![Value::str("x"), Value::str("y")]).is_err());
        // NULL fits any column; Int fits Float columns.
        t.push(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn int_accepted_in_float_column() {
        let mut t = Table::new("t", vec![("x", DataType::Float)]);
        t.push(vec![Value::Int(3)]).unwrap();
    }

    #[test]
    fn computed_column() {
        let mut t = Table::new("t", vec![("a", DataType::Integer)]);
        t.push(vec![Value::Int(5)]).unwrap();
        let t2 = t.with_computed_column("doubled", DataType::Integer, |r| {
            let Value::Int(v) = r[0] else { panic!() };
            Value::Int(v * 2)
        });
        assert_eq!(t2.rows()[0], vec![Value::Int(5), Value::Int(10)]);
        assert_eq!(t2.schema().columns[1].name, "doubled");
    }

    #[test]
    fn scan_qualifies_columns() {
        let t = Arc::new(Table::new("customer", vec![("custkey", DataType::Integer)]));
        let rows = t.scan("c");
        assert_eq!(rows.schema.columns[0].qualifier.as_deref(), Some("c"));
    }

    #[test]
    fn text_rendering() {
        let mut t = Table::new("t", vec![("a", DataType::Integer), ("b", DataType::Text)]);
        t.push(vec![Value::Int(1), Value::str("hello")]).unwrap();
        let rows = Rows {
            schema: t.schema().clone(),
            rows: t.rows().to_vec(),
        };
        let text = rows.to_text();
        assert!(text.contains("a"));
        assert!(text.contains("hello"));
    }
}
