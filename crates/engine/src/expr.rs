//! Bound expressions: name-resolved, index-based expressions ready for
//! evaluation, plus SQL three-valued logic.
//!
//! Binding happens once at plan time against a chain of scopes (the current
//! operator's schema plus any enclosing query scopes, for correlated
//! subqueries). Evaluation is then a cheap index-based tree walk.

use std::sync::Arc;

use conquer_sql::ast;

use crate::error::{EngineError, Result};
use crate::exec;
use crate::governor::Governor;
use crate::plan::Plan;
use crate::value::{ArithOp, Value};

/// A resolved expression.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Column at `depth` scopes up (0 = current row) and position `index`.
    Column {
        depth: usize,
        index: usize,
    },
    Literal(Value),
    Binary {
        op: ast::BinaryOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    Not(Box<BoundExpr>),
    Neg(Box<BoundExpr>),
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BoundExpr>,
        pattern: Box<BoundExpr>,
        negated: bool,
    },
    Case {
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_expr: Option<Box<BoundExpr>>,
    },
    Func {
        func: ScalarFunc,
        args: Vec<BoundExpr>,
    },
    /// Reference to a computed aggregate slot; only valid above an
    /// `Aggregate` operator whose output lays out group columns first and
    /// aggregate slots after them. Resolved to a plain column index.
    AggRef {
        index: usize,
    },
    /// A subquery evaluated per row (correlated or used as a value).
    Subquery {
        plan: Box<Plan>,
        kind: SubqueryKind,
    },
}

/// How a row-level subquery result is consumed.
#[derive(Debug, Clone)]
pub enum SubqueryKind {
    Exists {
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)` with full SQL NULL semantics.
    In {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    /// Scalar subquery: zero rows yield NULL, more than one row is an error.
    Scalar,
}

/// Scalar (non-aggregate) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Abs,
    Coalesce,
    Least,
    Greatest,
}

impl ScalarFunc {
    pub fn by_name(name: &str) -> Option<ScalarFunc> {
        Some(match name {
            "abs" => ScalarFunc::Abs,
            "coalesce" => ScalarFunc::Coalesce,
            "least" => ScalarFunc::Least,
            "greatest" => ScalarFunc::Greatest,
            _ => return None,
        })
    }
}

impl PartialEq for BoundExpr {
    /// Structural equality, used for GROUP BY matching. Subqueries never
    /// compare equal (conservative: they may be correlated or volatile).
    fn eq(&self, other: &BoundExpr) -> bool {
        use BoundExpr::*;
        match (self, other) {
            (
                Column {
                    depth: d1,
                    index: i1,
                },
                Column {
                    depth: d2,
                    index: i2,
                },
            ) => d1 == d2 && i1 == i2,
            (Literal(a), Literal(b)) => a == b,
            (
                Binary {
                    op: o1,
                    left: l1,
                    right: r1,
                },
                Binary {
                    op: o2,
                    left: l2,
                    right: r2,
                },
            ) => o1 == o2 && l1 == l2 && r1 == r2,
            (Not(a), Not(b)) | (Neg(a), Neg(b)) => a == b,
            (
                IsNull {
                    expr: e1,
                    negated: n1,
                },
                IsNull {
                    expr: e2,
                    negated: n2,
                },
            ) => n1 == n2 && e1 == e2,
            (
                InList {
                    expr: e1,
                    list: l1,
                    negated: n1,
                },
                InList {
                    expr: e2,
                    list: l2,
                    negated: n2,
                },
            ) => n1 == n2 && e1 == e2 && l1 == l2,
            (
                Like {
                    expr: e1,
                    pattern: p1,
                    negated: n1,
                },
                Like {
                    expr: e2,
                    pattern: p2,
                    negated: n2,
                },
            ) => n1 == n2 && e1 == e2 && p1 == p2,
            (
                Case {
                    branches: b1,
                    else_expr: e1,
                },
                Case {
                    branches: b2,
                    else_expr: e2,
                },
            ) => b1 == b2 && e1 == e2,
            (Func { func: f1, args: a1 }, Func { func: f2, args: a2 }) => f1 == f2 && a1 == a2,
            (AggRef { index: i1 }, AggRef { index: i2 }) => i1 == i2,
            _ => false,
        }
    }
}

impl BoundExpr {
    pub fn column(index: usize) -> BoundExpr {
        BoundExpr::Column { depth: 0, index }
    }

    /// Maximum scope depth referenced anywhere in the expression (0 when the
    /// expression only touches the current row). Subquery plans track their
    /// own depths relative to their inner scope, which sits one level below,
    /// so a plan referencing depth `d` contributes `d - 1` here.
    pub fn max_depth(&self) -> usize {
        use BoundExpr::*;
        match self {
            Column { depth, .. } => *depth,
            Literal(_) | AggRef { .. } => 0,
            Binary { left, right, .. } => left.max_depth().max(right.max_depth()),
            Not(e) | Neg(e) => e.max_depth(),
            IsNull { expr, .. } => expr.max_depth(),
            InList { expr, list, .. } => list
                .iter()
                .map(BoundExpr::max_depth)
                .max()
                .unwrap_or(0)
                .max(expr.max_depth()),
            Like { expr, pattern, .. } => expr.max_depth().max(pattern.max_depth()),
            Case {
                branches,
                else_expr,
            } => branches
                .iter()
                .map(|(c, v)| c.max_depth().max(v.max_depth()))
                .chain(else_expr.iter().map(|e| e.max_depth()))
                .max()
                .unwrap_or(0),
            Func { args, .. } => args.iter().map(BoundExpr::max_depth).max().unwrap_or(0),
            Subquery { plan, kind } => {
                let inner = plan.max_outer_depth().saturating_sub(1);
                match kind {
                    SubqueryKind::In { expr, .. } => inner.max(expr.max_depth()),
                    _ => inner,
                }
            }
        }
    }

    /// Shift every column reference's depth by `delta` (used when an
    /// expression bound in one scope is re-used one subquery level deeper).
    pub fn shift_depth(&mut self, delta: usize) {
        use BoundExpr::*;
        match self {
            Column { depth, .. } => *depth += delta,
            Literal(_) | AggRef { .. } => {}
            Binary { left, right, .. } => {
                left.shift_depth(delta);
                right.shift_depth(delta);
            }
            Not(e) | Neg(e) => e.shift_depth(delta),
            IsNull { expr, .. } => expr.shift_depth(delta),
            InList { expr, list, .. } => {
                expr.shift_depth(delta);
                for e in list {
                    e.shift_depth(delta);
                }
            }
            Like { expr, pattern, .. } => {
                expr.shift_depth(delta);
                pattern.shift_depth(delta);
            }
            Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.shift_depth(delta);
                    v.shift_depth(delta);
                }
                if let Some(e) = else_expr {
                    e.shift_depth(delta);
                }
            }
            Func { args, .. } => {
                for a in args {
                    a.shift_depth(delta);
                }
            }
            Subquery { plan, kind } => {
                plan.shift_outer_depths(delta);
                if let SubqueryKind::In { expr, .. } = kind {
                    expr.shift_depth(delta);
                }
            }
        }
    }
}

/// Runtime scope chain: the current row plus enclosing query rows. Carries
/// the enclosing query's resource [`Governor`] so correlated subqueries
/// executed per row stay governed.
#[derive(Debug, Clone, Copy)]
pub struct Env<'a> {
    pub row: &'a [Value],
    pub parent: Option<&'a Env<'a>>,
    pub gov: Option<&'a Governor>,
    /// Whether plans executed from this environment (correlated subqueries)
    /// may use the columnar kernels. Inherited by pushed scopes, so a query
    /// running with `ExecOptions::columnar == false` stays on the row path
    /// all the way down — the property the batch-vs-row differential suite
    /// relies on.
    pub columnar: bool,
}

impl<'a> Env<'a> {
    pub fn root(row: &'a [Value]) -> Env<'a> {
        Env {
            row,
            parent: None,
            gov: None,
            columnar: true,
        }
    }

    /// A root scope governed by `gov`.
    pub fn governed(row: &'a [Value], gov: Option<&'a Governor>) -> Env<'a> {
        Env::exec(row, gov, true)
    }

    /// A root scope with an explicit columnar-execution flag — the
    /// constructor the executor uses so subquery plans inherit the
    /// enclosing query's row/columnar mode.
    pub fn exec(row: &'a [Value], gov: Option<&'a Governor>, columnar: bool) -> Env<'a> {
        Env {
            row,
            parent: None,
            gov,
            columnar,
        }
    }

    pub fn push(row: &'a [Value], parent: &'a Env<'a>) -> Env<'a> {
        Env {
            row,
            parent: Some(parent),
            gov: parent.gov,
            columnar: parent.columnar,
        }
    }

    fn lookup(&self, depth: usize, index: usize) -> Result<&Value> {
        let mut env = self;
        for _ in 0..depth {
            env = env
                .parent
                .ok_or_else(|| EngineError::Execution("scope depth exceeds environment".into()))?;
        }
        env.row
            .get(index)
            .ok_or_else(|| EngineError::Execution(format!("column index {index} out of bounds")))
    }
}

/// Three-valued logical AND.
pub fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Three-valued logical OR.
pub fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued logical NOT.
pub fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

fn bool_value(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

impl BoundExpr {
    /// Evaluate to a value in the given environment.
    pub fn eval(&self, env: &Env<'_>) -> Result<Value> {
        match self {
            BoundExpr::Column { depth, index } => Ok(env.lookup(*depth, *index)?.clone()),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Binary { op, left, right } => eval_binary(*op, left, right, env),
            BoundExpr::Not(e) => Ok(bool_value(not3(e.eval(env)?.as_bool()?))),
            BoundExpr::Neg(e) => {
                match e.eval(env)? {
                    Value::Null => Ok(Value::Null),
                    Value::Int(v) => Ok(Value::Int(v.checked_neg().ok_or_else(|| {
                        EngineError::Eval("integer overflow in negation".into())
                    })?)),
                    Value::Float(v) => Ok(Value::Float(-v)),
                    other => Err(EngineError::TypeError(format!(
                        "cannot negate {}",
                        other.type_name()
                    ))),
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let isnull = expr.eval(env)?.is_null();
                Ok(Value::Bool(isnull != *negated))
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = expr.eval(env)?;
                let mut any_unknown = false;
                let mut found = false;
                for item in list {
                    match needle.sql_eq(&item.eval(env)?)? {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                let raw = if found {
                    Some(true)
                } else if any_unknown {
                    None
                } else {
                    Some(false)
                };
                Ok(bool_value(if *negated { not3(raw) } else { raw }))
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(env)?;
                let p = pattern.eval(env)?;
                match (&v, &p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(p)) => {
                        let m = like_match(s, p);
                        Ok(Value::Bool(m != *negated))
                    }
                    _ => Err(EngineError::TypeError(format!(
                        "LIKE requires strings, got {} and {}",
                        v.type_name(),
                        p.type_name()
                    ))),
                }
            }
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                for (cond, value) in branches {
                    if cond.eval(env)?.as_bool()? == Some(true) {
                        return value.eval(env);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(env),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::Func { func, args } => eval_func(*func, args, env),
            BoundExpr::AggRef { .. } => Err(EngineError::Execution(
                "aggregate reference evaluated outside aggregation context".into(),
            )),
            BoundExpr::Subquery { plan, kind } => eval_subquery(plan, kind, env),
        }
    }

    /// Evaluate as a predicate under three-valued logic.
    pub fn eval_predicate(&self, env: &Env<'_>) -> Result<Option<bool>> {
        // AND/OR need short-circuit three-valued handling rather than
        // strict value evaluation.
        match self {
            BoundExpr::Binary {
                op: ast::BinaryOp::And,
                left,
                right,
            } => {
                let l = left.eval_predicate(env)?;
                if l == Some(false) {
                    return Ok(Some(false));
                }
                Ok(and3(l, right.eval_predicate(env)?))
            }
            BoundExpr::Binary {
                op: ast::BinaryOp::Or,
                left,
                right,
            } => {
                let l = left.eval_predicate(env)?;
                if l == Some(true) {
                    return Ok(Some(true));
                }
                Ok(or3(l, right.eval_predicate(env)?))
            }
            BoundExpr::Not(e) => Ok(not3(e.eval_predicate(env)?)),
            _ => self.eval(env)?.as_bool(),
        }
    }
}

fn eval_binary(
    op: ast::BinaryOp,
    left: &BoundExpr,
    right: &BoundExpr,
    env: &Env<'_>,
) -> Result<Value> {
    use ast::BinaryOp::*;
    match op {
        And => Ok(bool_value(and3(
            left.eval_predicate(env)?,
            right.eval_predicate(env)?,
        ))),
        Or => Ok(bool_value(or3(
            left.eval_predicate(env)?,
            right.eval_predicate(env)?,
        ))),
        Plus | Minus | Multiply | Divide | Modulo => {
            let l = left.eval(env)?;
            let r = right.eval(env)?;
            let aop = match op {
                Plus => ArithOp::Add,
                Minus => ArithOp::Sub,
                Multiply => ArithOp::Mul,
                Divide => ArithOp::Div,
                _ => ArithOp::Mod,
            };
            l.arith(aop, &r)
        }
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let l = left.eval(env)?;
            let r = right.eval(env)?;
            let cmp = l.sql_cmp(&r)?;
            Ok(bool_value(cmp.map(|ord| match op {
                Eq => ord.is_eq(),
                NotEq => !ord.is_eq(),
                Lt => ord.is_lt(),
                LtEq => ord.is_le(),
                Gt => ord.is_gt(),
                // Only comparison ops reach this arm; GtEq is the remainder.
                _ => ord.is_ge(),
            })))
        }
    }
}

fn eval_func(func: ScalarFunc, args: &[BoundExpr], env: &Env<'_>) -> Result<Value> {
    match func {
        ScalarFunc::Abs => {
            let v = args
                .first()
                .ok_or_else(|| EngineError::Execution("abs() requires one argument".into()))?
                .eval(env)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => {
                    Ok(Value::Int(i.checked_abs().ok_or_else(|| {
                        EngineError::Eval("integer overflow in abs()".into())
                    })?))
                }
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(EngineError::TypeError(format!(
                    "abs() expects a number, got {}",
                    other.type_name()
                ))),
            }
        }
        ScalarFunc::Coalesce => {
            for a in args {
                let v = a.eval(env)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        ScalarFunc::Least | ScalarFunc::Greatest => {
            let mut best: Option<Value> = None;
            for a in args {
                let v = a.eval(env)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.sql_cmp(&b)? {
                            Some(ord) => {
                                if func == ScalarFunc::Least {
                                    ord.is_lt()
                                } else {
                                    ord.is_gt()
                                }
                            }
                            None => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

fn eval_subquery(plan: &Plan, kind: &SubqueryKind, env: &Env<'_>) -> Result<Value> {
    match kind {
        SubqueryKind::Exists { negated } => {
            let rows = exec::execute(plan, Some(env))?;
            Ok(Value::Bool(rows.rows.is_empty() == *negated))
        }
        SubqueryKind::In { expr, negated } => {
            let needle = expr.eval(env)?;
            let rows = exec::execute(plan, Some(env))?;
            if rows.schema.len() != 1 {
                return Err(EngineError::Execution(
                    "IN subquery must return exactly one column".into(),
                ));
            }
            let mut any_unknown = false;
            let mut found = false;
            for row in &rows.rows {
                match needle.sql_eq(&row[0])? {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => any_unknown = true,
                }
            }
            let raw = if found {
                Some(true)
            } else if any_unknown {
                None
            } else {
                Some(false)
            };
            Ok(bool_value(if *negated { not3(raw) } else { raw }))
        }
        SubqueryKind::Scalar => {
            let rows = exec::execute(plan, Some(env))?;
            if rows.schema.len() != 1 {
                return Err(EngineError::Execution(
                    "scalar subquery must return exactly one column".into(),
                ));
            }
            match rows.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rows.rows[0][0].clone()),
                n => Err(EngineError::Execution(format!(
                    "scalar subquery returned {n} rows"
                ))),
            }
        }
    }
}

/// SQL `LIKE` pattern matching: `%` matches any sequence, `_` any single
/// character. Matching is over Unicode scalar values.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative two-pointer algorithm with backtracking on the last `%`.
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            pi = sp + 1;
            si = ss + 1;
            star = Some((sp, ss + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Helper shared with the planner: a thin wrapper to keep `Arc<str>`
/// construction in one place.
pub fn str_value(s: &str) -> Value {
    Value::Str(Arc::from(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_row(row: &[Value]) -> Env<'_> {
        Env::root(row)
    }

    #[test]
    fn three_valued_tables() {
        assert_eq!(and3(Some(true), None), None);
        assert_eq!(and3(Some(false), None), Some(false));
        assert_eq!(or3(Some(true), None), Some(true));
        assert_eq!(or3(Some(false), None), None);
        assert_eq!(not3(None), None);
    }

    #[test]
    fn column_lookup_across_scopes() {
        let outer_row = vec![Value::Int(42)];
        let inner_row = vec![Value::Int(7)];
        let outer = Env::root(&outer_row);
        let inner = Env::push(&inner_row, &outer);
        let e0 = BoundExpr::Column { depth: 0, index: 0 };
        let e1 = BoundExpr::Column { depth: 1, index: 0 };
        assert_eq!(e0.eval(&inner).unwrap(), Value::Int(7));
        assert_eq!(e1.eval(&inner).unwrap(), Value::Int(42));
        assert!(e1.eval(&outer).is_err());
    }

    #[test]
    fn case_falls_through_to_else_and_null() {
        let row = vec![Value::Int(5)];
        let case = BoundExpr::Case {
            branches: vec![(
                BoundExpr::Binary {
                    op: ast::BinaryOp::Gt,
                    left: Box::new(BoundExpr::column(0)),
                    right: Box::new(BoundExpr::Literal(Value::Int(10))),
                },
                BoundExpr::Literal(Value::Int(1)),
            )],
            else_expr: Some(Box::new(BoundExpr::Literal(Value::Int(0)))),
        };
        assert_eq!(case.eval(&env_row(&row)).unwrap(), Value::Int(0));
        let no_else = BoundExpr::Case {
            branches: vec![(
                BoundExpr::Literal(Value::Bool(false)),
                BoundExpr::Literal(Value::Int(1)),
            )],
            else_expr: None,
        };
        assert_eq!(no_else.eval(&env_row(&row)).unwrap(), Value::Null);
    }

    #[test]
    fn in_list_null_semantics() {
        let row = vec![Value::Int(1), Value::Null];
        // 1 IN (2, NULL) is unknown.
        let e = BoundExpr::InList {
            expr: Box::new(BoundExpr::column(0)),
            list: vec![
                BoundExpr::Literal(Value::Int(2)),
                BoundExpr::Literal(Value::Null),
            ],
            negated: false,
        };
        assert_eq!(e.eval(&env_row(&row)).unwrap(), Value::Null);
        // 1 IN (1, NULL) is true.
        let e = BoundExpr::InList {
            expr: Box::new(BoundExpr::column(0)),
            list: vec![
                BoundExpr::Literal(Value::Int(1)),
                BoundExpr::Literal(Value::Null),
            ],
            negated: false,
        };
        assert_eq!(e.eval(&env_row(&row)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_matching() {
        assert!(like_match("BUILDING", "BUILD%"));
        assert!(like_match("green apple", "%green%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("xxayyybzzz", "%a%b%"));
    }

    #[test]
    fn comparison_with_null_is_unknown() {
        let row = vec![Value::Null];
        let e = BoundExpr::Binary {
            op: ast::BinaryOp::Gt,
            left: Box::new(BoundExpr::column(0)),
            right: Box::new(BoundExpr::Literal(Value::Int(10))),
        };
        assert_eq!(e.eval_predicate(&env_row(&row)).unwrap(), None);
    }

    #[test]
    fn coalesce_and_least_greatest() {
        let row: Vec<Value> = vec![];
        let env = env_row(&row);
        let c = BoundExpr::Func {
            func: ScalarFunc::Coalesce,
            args: vec![
                BoundExpr::Literal(Value::Null),
                BoundExpr::Literal(Value::Int(3)),
            ],
        };
        assert_eq!(c.eval(&env).unwrap(), Value::Int(3));
        let l = BoundExpr::Func {
            func: ScalarFunc::Least,
            args: vec![
                BoundExpr::Literal(Value::Int(3)),
                BoundExpr::Literal(Value::Int(-2)),
            ],
        };
        assert_eq!(l.eval(&env).unwrap(), Value::Int(-2));
        let g = BoundExpr::Func {
            func: ScalarFunc::Greatest,
            args: vec![
                BoundExpr::Literal(Value::Float(1.5)),
                BoundExpr::Literal(Value::Int(2)),
            ],
        };
        assert_eq!(g.eval(&env).unwrap(), Value::Int(2));
    }

    #[test]
    fn shift_depth_moves_references() {
        let mut e = BoundExpr::Binary {
            op: ast::BinaryOp::Eq,
            left: Box::new(BoundExpr::Column { depth: 0, index: 1 }),
            right: Box::new(BoundExpr::Column { depth: 1, index: 0 }),
        };
        e.shift_depth(1);
        assert_eq!(e.max_depth(), 2);
    }
}
