//! Per-operator runtime statistics for `EXPLAIN ANALYZE`.
//!
//! A [`NodeStats`] tree mirrors the [`Plan`] tree shape exactly: the
//! executor is handed an `Option<&mut NodeStats>` and fills in the node
//! matching each plan operator as it runs. When no stats are requested the
//! executor takes the untimed path, so plain queries pay nothing.

use std::time::Duration;

use crate::plan::Plan;

/// Runtime counters for one plan operator.
///
/// `wall` is *inclusive*: it covers the operator and everything below it,
/// as in a conventional `EXPLAIN ANALYZE`. Operator-specific fields
/// (`build_rows`, `probe_rows`, `comparisons`, `est_mem_bytes`) stay zero
/// for operators they do not apply to.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Times the operator ran (CTE bodies and subplans run once; a plan
    /// re-executed per outer row would count each run).
    pub invocations: u64,
    /// Rows emitted by the operator, summed over invocations.
    pub rows_out: u64,
    /// Inclusive wall time (operator plus its inputs).
    pub wall: Duration,
    /// Hash-table build input rows (joins) or grouped input rows
    /// (aggregates).
    pub build_rows: u64,
    /// Probe-side input rows (joins only).
    pub probe_rows: u64,
    /// Candidate pairs inspected: hash-bucket entries visited for hash
    /// joins, inner-loop iterations for nested-loop joins.
    pub comparisons: u64,
    /// Rough in-memory footprint of operator state (hash table / group
    /// table), in bytes. An estimate, not an allocator measurement.
    pub est_mem_bytes: u64,
    /// Widest morsel-parallel fan-out any invocation of this operator ran
    /// with. `0` or `1` means the operator only ever ran serially.
    /// Per-worker counters are summed into this node, so the tree keeps
    /// the serial shape at any thread count.
    pub threads_used: u64,
    /// Stats of the operator's inputs, in plan order.
    pub children: Vec<NodeStats>,
}

impl NodeStats {
    /// An all-zero stats tree shaped like `plan`.
    pub fn for_plan(plan: &Plan) -> NodeStats {
        NodeStats {
            children: plan
                .children()
                .into_iter()
                .map(NodeStats::for_plan)
                .collect(),
            ..NodeStats::default()
        }
    }

    /// Rows flowing into the operator: the sum of its children's output.
    pub fn rows_in(&self) -> u64 {
        self.children.iter().map(|c| c.rows_out).sum()
    }

    /// Exclusive wall time: this operator minus its inputs (saturating, in
    /// case clock granularity makes children sum past the parent).
    pub fn self_wall(&self) -> Duration {
        let children: Duration = self.children.iter().map(|c| c.wall).sum();
        self.wall.saturating_sub(children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_tree_mirrors_plan_shape() {
        use crate::table::Table;
        use crate::Database;
        let db = Database::new();
        let mut t = Table::new("t", vec![("a", crate::schema::DataType::Integer)]);
        t.push(vec![crate::value::Value::Int(1)]).unwrap();
        db.register(t);
        let query = conquer_sql::parse_query("select a from t where a > 0").unwrap();
        let plan = db.plan(&query, &Default::default()).unwrap();
        let stats = NodeStats::for_plan(&plan);
        fn depth_of_plan(p: &Plan) -> usize {
            1 + p
                .children()
                .iter()
                .map(|c| depth_of_plan(c))
                .max()
                .unwrap_or(0)
        }
        fn depth_of_stats(s: &NodeStats) -> usize {
            1 + s.children.iter().map(depth_of_stats).max().unwrap_or(0)
        }
        assert_eq!(depth_of_plan(&plan), depth_of_stats(&stats));
    }

    #[test]
    fn self_wall_saturates() {
        let child = NodeStats {
            wall: Duration::from_millis(5),
            ..Default::default()
        };
        let parent = NodeStats {
            wall: Duration::from_millis(3),
            children: vec![child],
            ..Default::default()
        };
        assert_eq!(parent.self_wall(), Duration::ZERO);
    }
}
