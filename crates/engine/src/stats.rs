//! Per-operator runtime statistics for `EXPLAIN ANALYZE`, and the
//! per-table statistics the cost-based planner estimates from.
//!
//! A [`NodeStats`] tree mirrors the [`Plan`] tree shape exactly: the
//! executor is handed an `Option<&mut NodeStats>` and fills in the node
//! matching each plan operator as it runs. When no stats are requested the
//! executor takes the untimed path, so plain queries pay nothing.
//!
//! [`TableStats`] / [`ColumnStats`] are collected eagerly whenever a table
//! is registered (`CREATE TABLE` + every `INSERT` re-registers, so stats
//! are never stale) and exposed through the catalog
//! ([`crate::Database::table_stats`]); the stats epoch advances with the
//! catalog epoch so plan caches can detect staleness. The estimation
//! formulas that consume them live in [`crate::cost`].

use std::collections::HashSet;
use std::time::Duration;

use crate::plan::Plan;
use crate::table::Row;
use crate::value::{KeyValue, Value};

/// Runtime counters for one plan operator.
///
/// `wall` is *inclusive*: it covers the operator and everything below it,
/// as in a conventional `EXPLAIN ANALYZE`. Operator-specific fields
/// (`build_rows`, `probe_rows`, `comparisons`, `est_mem_bytes`) stay zero
/// for operators they do not apply to.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Times the operator ran (CTE bodies and subplans run once; a plan
    /// re-executed per outer row would count each run).
    pub invocations: u64,
    /// Rows emitted by the operator, summed over invocations.
    pub rows_out: u64,
    /// Inclusive wall time (operator plus its inputs).
    pub wall: Duration,
    /// Hash-table build input rows (joins) or grouped input rows
    /// (aggregates).
    pub build_rows: u64,
    /// Probe-side input rows (joins only).
    pub probe_rows: u64,
    /// Candidate pairs inspected: hash-bucket entries visited for hash
    /// joins, inner-loop iterations for nested-loop joins.
    pub comparisons: u64,
    /// Rough in-memory footprint of operator state (hash table / group
    /// table), in bytes. An estimate, not an allocator measurement.
    pub est_mem_bytes: u64,
    /// Widest morsel-parallel fan-out any invocation of this operator ran
    /// with. `0` or `1` means the operator only ever ran serially.
    /// Per-worker counters are summed into this node, so the tree keeps
    /// the serial shape at any thread count.
    pub threads_used: u64,
    /// Planner cardinality estimate for this operator's output, filled in
    /// by [`crate::cost::annotate`] when table statistics are available.
    /// `EXPLAIN ANALYZE` prints it next to the actual `rows_out` so the
    /// estimation error is visible per operator.
    pub est_rows: Option<u64>,
    /// Stats of the operator's inputs, in plan order.
    pub children: Vec<NodeStats>,
}

impl NodeStats {
    /// An all-zero stats tree shaped like `plan`.
    pub fn for_plan(plan: &Plan) -> NodeStats {
        NodeStats {
            children: plan
                .children()
                .into_iter()
                .map(NodeStats::for_plan)
                .collect(),
            ..NodeStats::default()
        }
    }

    /// Rows flowing into the operator: the sum of its children's output.
    pub fn rows_in(&self) -> u64 {
        self.children.iter().map(|c| c.rows_out).sum()
    }

    /// Exclusive wall time: this operator minus its inputs (saturating, in
    /// case clock granularity makes children sum past the parent).
    pub fn self_wall(&self) -> Duration {
        let children: Duration = self.children.iter().map(|c| c.wall).sum();
        self.wall.saturating_sub(children)
    }
}

/// Track at most this many distinct values per column; past the cap the
/// column is treated as key-like (NDV ≈ non-null row count).
const NDV_CAP: usize = 1 << 16;

/// Statistics for one column of a stored table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values. Exact up to [`NDV_CAP`] distinct
    /// values; approximated as the non-null row count beyond it.
    pub ndv: u64,
    /// Number of NULLs in the column.
    pub null_count: u64,
    /// Smallest non-null value under a numeric interpretation (ints,
    /// floats, dates as day numbers, bools as 0/1). `None` for all-NULL or
    /// non-numeric columns.
    pub min: Option<f64>,
    /// Largest non-null value, same interpretation as `min`.
    pub max: Option<f64>,
}

impl ColumnStats {
    /// Fraction of rows that are NULL in this column.
    pub fn null_fraction(&self, row_count: u64) -> f64 {
        if row_count == 0 {
            0.0
        } else {
            self.null_count as f64 / row_count as f64
        }
    }
}

/// Statistics for one stored table (or one materialized CTE).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub row_count: u64,
    /// Per-column stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

/// Numeric interpretation of a value for min/max range estimation.
pub(crate) fn numeric_of(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) if !f.is_nan() => Some(*f),
        Value::Date(d) => Some(*d as f64),
        Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

impl TableStats {
    /// Collect statistics over a full row batch in one pass per column
    /// value: NDV (hash-set, capped), null count, numeric min/max.
    pub fn collect(rows: &[Row], width: usize) -> TableStats {
        let mut columns: Vec<ColumnStats> = (0..width)
            .map(|_| ColumnStats {
                ndv: 0,
                null_count: 0,
                min: None,
                max: None,
            })
            .collect();
        let mut distinct: Vec<Option<HashSet<KeyValue>>> =
            (0..width).map(|_| Some(HashSet::new())).collect();
        for row in rows {
            for (i, v) in row.iter().enumerate().take(width) {
                let col = &mut columns[i];
                if v.is_null() {
                    col.null_count += 1;
                    continue;
                }
                if let Some(set) = &mut distinct[i] {
                    set.insert(KeyValue::from(v));
                    if set.len() > NDV_CAP {
                        distinct[i] = None;
                    }
                }
                if let Some(n) = numeric_of(v) {
                    col.min = Some(col.min.map_or(n, |m| m.min(n)));
                    col.max = Some(col.max.map_or(n, |m| m.max(n)));
                }
            }
        }
        let row_count = rows.len() as u64;
        for (col, set) in columns.iter_mut().zip(distinct) {
            col.ndv = match set {
                Some(set) => set.len() as u64,
                // Cap blown: assume key-like (every non-null value distinct).
                None => row_count - col.null_count,
            };
        }
        TableStats { row_count, columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_tree_mirrors_plan_shape() {
        use crate::table::Table;
        use crate::Database;
        let db = Database::new();
        let mut t = Table::new("t", vec![("a", crate::schema::DataType::Integer)]);
        t.push(vec![crate::value::Value::Int(1)]).unwrap();
        db.register(t).unwrap();
        let query = conquer_sql::parse_query("select a from t where a > 0").unwrap();
        let plan = db.plan(&query, &Default::default()).unwrap();
        let stats = NodeStats::for_plan(&plan);
        fn depth_of_plan(p: &Plan) -> usize {
            1 + p
                .children()
                .iter()
                .map(|c| depth_of_plan(c))
                .max()
                .unwrap_or(0)
        }
        fn depth_of_stats(s: &NodeStats) -> usize {
            1 + s.children.iter().map(depth_of_stats).max().unwrap_or(0)
        }
        assert_eq!(depth_of_plan(&plan), depth_of_stats(&stats));
    }

    #[test]
    fn table_stats_collects_ndv_nulls_and_range() {
        use crate::value::Value;
        let rows = vec![
            vec![Value::Int(1), Value::str("a"), Value::Float(2.5)],
            vec![Value::Int(1), Value::str("b"), Value::Null],
            vec![Value::Int(3), Value::Null, Value::Float(-1.0)],
        ];
        let s = TableStats::collect(&rows, 3);
        assert_eq!(s.row_count, 3);
        assert_eq!(s.columns[0].ndv, 2);
        assert_eq!(s.columns[0].null_count, 0);
        assert_eq!(s.columns[0].min, Some(1.0));
        assert_eq!(s.columns[0].max, Some(3.0));
        assert_eq!(s.columns[1].ndv, 2);
        assert_eq!(s.columns[1].null_count, 1);
        assert_eq!(s.columns[1].min, None); // text has no numeric range
        assert_eq!(s.columns[2].ndv, 2);
        assert!((s.columns[2].null_fraction(3) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.columns[2].min, Some(-1.0));
        assert_eq!(s.columns[2].max, Some(2.5));
        // Int(1) and Float(1.0) normalize to the same distinct value.
        let rows = vec![vec![Value::Int(1)], vec![Value::Float(1.0)]];
        assert_eq!(TableStats::collect(&rows, 1).columns[0].ndv, 1);
        // Empty tables produce empty-but-valid stats.
        let s = TableStats::collect(&[], 2);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.columns[0].null_fraction(0), 0.0);
    }

    #[test]
    fn self_wall_saturates() {
        let child = NodeStats {
            wall: Duration::from_millis(5),
            ..Default::default()
        };
        let parent = NodeStats {
            wall: Duration::from_millis(3),
            children: vec![child],
            ..Default::default()
        };
        assert_eq!(parent.self_wall(), Duration::ZERO);
    }
}
