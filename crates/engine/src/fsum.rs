//! Exact floating-point summation.
//!
//! `ExactSum` is a positional superaccumulator: a fixed-point integer wide
//! enough to hold any finite `f64` (bit 0 has weight 2^-1074, the top limbs
//! reach past 2^1023 with headroom for carries), so adding a float to it is
//! *exact* — no rounding happens until the final `to_f64`. An exact sum is a
//! pure function of the input multiset: it does not depend on the order
//! values arrive, how they are grouped into partial sums, or how partials are
//! merged. That is what makes parallel SUM/AVG bit-identical to serial at any
//! thread count, which compensated (Kahan) schemes cannot guarantee once the
//! morsel→worker assignment is dynamic.
//!
//! Representation: `LIMBS` signed 64-bit limbs, limb `i` holding bits
//! `[32·i, 32·i+32)` of the fixed-point value. Each `add` touches at most
//! three limbs and deposits less than 2^32 per limb, so limbs stay far from
//! `i64` overflow for over 2^30 consecutive adds; a cheap carry-propagation
//! pass (`normalize`) restores every limb to `[0, 2^32)` before that bound
//! is reached. The final rounding is a single round-half-even, matching what
//! IEEE-754 would produce if the whole sum had been computed in one step.

/// Number of 32-bit limbs. Finite doubles need bits up to
/// `1023 + 1074 = 2097`; carries from 2^30 max-magnitude adds reach about
/// bit 2128. 68 limbs cover bit 2175.
const LIMBS: usize = 68;

/// Fixed-point offset: bit index of weight 2^0 (= -(minimum exponent) of a
/// subnormal `f64` LSB).
const BIAS: u32 = 1074;

/// Normalize after this many deposits to keep limbs away from i64 overflow.
const NORMALIZE_EVERY: u32 = 1 << 30;

/// An exact accumulator for `f64` (and `i64`) addition.
///
/// `add` order never affects the result; `merge` of partial accumulators is
/// associative and commutative. Infinities and NaN are tracked out-of-band
/// with IEEE semantics (`+inf + -inf = NaN`, any NaN poisons the sum).
#[derive(Clone)]
pub struct ExactSum {
    limbs: [i64; LIMBS],
    /// Deposits since the last `normalize`.
    pending: u32,
    pos_inf: bool,
    neg_inf: bool,
    nan: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum::new()
    }
}

impl std::fmt::Debug for ExactSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactSum")
            .field("value", &self.clone().to_f64())
            .finish()
    }
}

impl ExactSum {
    pub fn new() -> ExactSum {
        ExactSum {
            limbs: [0; LIMBS],
            pending: 0,
            pos_inf: false,
            neg_inf: false,
            nan: false,
        }
    }

    /// Add one `f64` term. Exact for all finite inputs.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            self.nan = true;
            return;
        }
        if x.is_infinite() {
            if x > 0.0 {
                self.pos_inf = true;
            } else {
                self.neg_inf = true;
            }
            return;
        }
        if x == 0.0 {
            return;
        }
        let bits = x.to_bits();
        let negative = bits >> 63 != 0;
        let exp_bits = ((bits >> 52) & 0x7ff) as u32;
        let frac = bits & ((1u64 << 52) - 1);
        // value magnitude = m * 2^(off - BIAS)
        let (m, off) = if exp_bits == 0 {
            (frac, 0)
        } else {
            (frac | (1u64 << 52), exp_bits - 1)
        };
        self.deposit(m, off, negative);
    }

    /// Add one integer term. Always exact (unlike `add(v as f64)`, which
    /// rounds magnitudes past 2^53).
    pub fn add_i64(&mut self, v: i64) {
        if v == 0 {
            return;
        }
        self.deposit(v.unsigned_abs(), BIAS, v < 0);
    }

    /// Deposit `m * 2^(off - BIAS)` with the given sign. `m < 2^64`,
    /// `off <= 2046`.
    fn deposit(&mut self, m: u64, off: u32, negative: bool) {
        let limb = (off / 32) as usize;
        let shift = off % 32;
        // m << shift spans at most 64 + 31 = 95 bits: three 32-bit chunks.
        let t = (m as u128) << shift;
        let c0 = (t & 0xffff_ffff) as i64;
        let c1 = ((t >> 32) & 0xffff_ffff) as i64;
        let c2 = ((t >> 64) & 0xffff_ffff) as i64;
        if negative {
            self.limbs[limb] -= c0;
            self.limbs[limb + 1] -= c1;
            self.limbs[limb + 2] -= c2;
        } else {
            self.limbs[limb] += c0;
            self.limbs[limb + 1] += c1;
            self.limbs[limb + 2] += c2;
        }
        self.pending += 1;
        if self.pending >= NORMALIZE_EVERY {
            self.normalize();
        }
    }

    /// Carry-propagate so every limb below the top is in `[0, 2^32)`.
    /// The top limb keeps the sign of the whole value.
    fn normalize(&mut self) {
        let mut carry: i64 = 0;
        for limb in self.limbs.iter_mut() {
            let v = *limb + carry;
            carry = v >> 32; // arithmetic shift: rounds toward -inf
            *limb = v - (carry << 32);
        }
        // `carry` out of the top limb is always zero: the value magnitude is
        // bounded far below 2^(32·LIMBS).
        self.limbs[LIMBS - 1] += carry << 32;
        self.pending = 0;
    }

    /// Fold another accumulator into this one. Order of merges never affects
    /// the final value.
    pub fn merge(&mut self, other: &ExactSum) {
        self.nan |= other.nan;
        self.pos_inf |= other.pos_inf;
        self.neg_inf |= other.neg_inf;
        self.normalize();
        let mut rhs = other.clone();
        rhs.normalize();
        for (a, b) in self.limbs.iter_mut().zip(rhs.limbs.iter()) {
            *a += *b;
        }
        self.pending = 1;
    }

    /// Round the exact sum to the nearest `f64` (ties to even), the same
    /// result IEEE-754 would give for a single-rounding sum.
    pub fn to_f64(&mut self) -> f64 {
        if self.nan || (self.pos_inf && self.neg_inf) {
            return f64::NAN;
        }
        if self.pos_inf {
            return f64::INFINITY;
        }
        if self.neg_inf {
            return f64::NEG_INFINITY;
        }
        self.normalize();
        let negative = self.limbs[LIMBS - 1] < 0;
        let mut mag = self.limbs;
        if negative {
            for limb in mag.iter_mut() {
                *limb = -*limb;
            }
            let mut carry: i64 = 0;
            for limb in mag.iter_mut() {
                let v = *limb + carry;
                carry = v >> 32;
                *limb = v - (carry << 32);
            }
        }
        round_magnitude(&mag, negative)
    }
}

/// Round a normalized non-negative limb array (each limb in `[0, 2^32)`),
/// interpreted as `M * 2^-BIAS`, to the nearest `f64` half-to-even.
fn round_magnitude(mag: &[i64; LIMBS], negative: bool) -> f64 {
    // Highest set bit.
    let mut hb = None;
    for i in (0..LIMBS).rev() {
        if mag[i] != 0 {
            let w = mag[i] as u64;
            hb = Some(i as u32 * 32 + (63 - w.leading_zeros()));
            break;
        }
    }
    let Some(hb) = hb else {
        return 0.0;
    };
    let sign_bit = if negative { 1u64 << 63 } else { 0 };
    if hb <= 51 {
        // Subnormal range: M < 2^52 is exactly a subnormal payload.
        let m = (mag[0] as u64) | ((mag[1] as u64) << 32);
        return f64::from_bits(sign_bit | m);
    }
    // Normal range: take 53 bits [hb-52, hb], round on the rest.
    let shift = hb - 52;
    let mut m = extract_bits(mag, shift, 53);
    let mut exp_shift = shift;
    if shift > 0 {
        let guard = bit(mag, shift - 1);
        let sticky = any_bits_below(mag, shift - 1);
        if guard && (sticky || m & 1 == 1) {
            m += 1;
            if m == 1u64 << 53 {
                m >>= 1;
                exp_shift += 1;
            }
        }
    }
    // value = m * 2^(exp_shift - BIAS), m in [2^52, 2^53).
    let biased = exp_shift as u64 + 1;
    if biased > 2046 {
        return if negative {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
    }
    f64::from_bits(sign_bit | (biased << 52) | (m & ((1u64 << 52) - 1)))
}

/// Bit `idx` of the limb array (bit 0 = weight 2^-BIAS).
fn bit(mag: &[i64; LIMBS], idx: u32) -> bool {
    (mag[(idx / 32) as usize] >> (idx % 32)) & 1 != 0
}

/// `count` bits starting at `start`, as an integer (low bit first).
fn extract_bits(mag: &[i64; LIMBS], start: u32, count: u32) -> u64 {
    let mut out = 0u64;
    for j in 0..count {
        if bit(mag, start + j) {
            out |= 1u64 << j;
        }
    }
    out
}

/// Any set bit strictly below `end`?
fn any_bits_below(mag: &[i64; LIMBS], end: u32) -> bool {
    let limb_end = (end / 32) as usize;
    if mag[..limb_end].iter().any(|&l| l != 0) {
        return true;
    }
    let rem = end % 32;
    rem > 0 && (mag[limb_end] as u64) & ((1u64 << rem) - 1) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_exact(values: &[f64]) -> f64 {
        let mut s = ExactSum::new();
        for &v in values {
            s.add(v);
        }
        s.to_f64()
    }

    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn f64_wide(&mut self) -> f64 {
            // Random finite double across a wide exponent range.
            let frac = self.next() & ((1u64 << 52) - 1);
            let exp = 1023 + (self.next() % 201) - 100; // 2^-100 .. 2^100
            let sign = (self.next() & 1) << 63;
            f64::from_bits(sign | (exp << 52) | frac)
        }
    }

    #[test]
    fn exact_cancellation() {
        // Naive left-to-right gives 0.0 or 2.0 depending on order; the exact
        // sum is 1.0 for every permutation.
        assert_eq!(sum_exact(&[1e16, 1.0, -1e16]), 1.0);
        assert_eq!(sum_exact(&[1.0, 1e16, -1e16]), 1.0);
        assert_eq!(sum_exact(&[-1e16, 1e16, 1.0]), 1.0);
        assert_eq!(sum_exact(&[1e300, 1e-300, -1e300]), 1e-300);
    }

    #[test]
    fn simple_sums_match_ieee() {
        assert_eq!(sum_exact(&[]), 0.0);
        assert_eq!(sum_exact(&[0.5, 0.25]), 0.75);
        assert_eq!(sum_exact(&[1.5, 2.5, -4.0]), 0.0);
        assert_eq!(sum_exact(&[0.1, 0.2]), 0.1 + 0.2);
        assert_eq!(sum_exact(&[f64::MAX]), f64::MAX);
        assert_eq!(
            sum_exact(&[f64::MIN_POSITIVE / 4.0]),
            f64::MIN_POSITIVE / 4.0
        );
    }

    #[test]
    fn round_half_even() {
        // 2^53 + 1 is a tie; even mantissa wins (2^53). 2^53 + 3 rounds up.
        let p53 = 9007199254740992.0;
        assert_eq!(sum_exact(&[p53, 1.0]), p53);
        assert_eq!(sum_exact(&[p53, 2.0]), p53 + 2.0);
        assert_eq!(sum_exact(&[p53, 3.0]), 9007199254740996.0);
    }

    #[test]
    fn integer_terms_are_exact() {
        let mut s = ExactSum::new();
        s.add_i64(i64::MAX);
        s.add_i64(i64::MAX);
        s.add_i64(i64::MIN);
        s.add_i64(i64::MIN);
        assert_eq!(s.to_f64(), -2.0);
        let mut s = ExactSum::new();
        s.add_i64(i64::MIN);
        s.add(0.5);
        // Exact value -(2^63) + 0.5 rounds back to -(2^63).
        assert_eq!(s.to_f64(), i64::MIN as f64);
    }

    #[test]
    fn permutation_and_merge_invariance() {
        let mut rng = Rng(0xfeed_beef);
        let mut values: Vec<f64> = (0..500).map(|_| rng.f64_wide()).collect();
        let reference = {
            let mut s = ExactSum::new();
            for &v in &values {
                s.add(v);
            }
            s.to_f64().to_bits()
        };
        for round in 0..8 {
            // Fisher-Yates shuffle.
            for i in (1..values.len()).rev() {
                let j = (rng.next() % (i as u64 + 1)) as usize;
                values.swap(i, j);
            }
            // Random partition into 1..=8 partial accumulators, merged in a
            // rotating order.
            let parts = 1 + (round % 8);
            let mut accs: Vec<ExactSum> = (0..parts).map(|_| ExactSum::new()).collect();
            for &v in &values {
                let k = (rng.next() % parts as u64) as usize;
                accs[k].add(v);
            }
            accs.rotate_left(round % parts);
            let mut total = ExactSum::new();
            for acc in &accs {
                total.merge(acc);
            }
            assert_eq!(total.to_f64().to_bits(), reference);
        }
    }

    #[test]
    fn subnormal_accumulation() {
        let tiny = f64::from_bits(1); // 5e-324, smallest subnormal
        let mut s = ExactSum::new();
        for _ in 0..3 {
            s.add(tiny);
        }
        assert_eq!(s.to_f64(), f64::from_bits(3));
        let mut s = ExactSum::new();
        s.add(tiny);
        s.add(-tiny);
        assert_eq!(s.to_f64(), 0.0);
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(sum_exact(&[f64::MAX, f64::MAX]), f64::INFINITY);
        assert_eq!(sum_exact(&[-f64::MAX, -f64::MAX]), f64::NEG_INFINITY);
        // Cancellation brings it back into range: exact, not inf.
        assert_eq!(sum_exact(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
    }

    #[test]
    fn special_values() {
        assert_eq!(sum_exact(&[f64::INFINITY, 1.0]), f64::INFINITY);
        assert_eq!(sum_exact(&[f64::NEG_INFINITY, 1.0]), f64::NEG_INFINITY);
        assert!(sum_exact(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(sum_exact(&[f64::NAN, 1.0]).is_nan());
        // -0.0 terms leave the sum at +0.0 (sum is sign-normalized).
        assert_eq!(sum_exact(&[-0.0, -0.0]).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn differential_against_naive_on_benign_inputs() {
        // Inputs whose naive sum is exact (same-exponent integers): the
        // superaccumulator must agree bit-for-bit.
        let mut rng = Rng(42);
        for _ in 0..100 {
            let vals: Vec<f64> = (0..64).map(|_| (rng.next() % 1_000_000) as f64).collect();
            let naive: f64 = vals.iter().sum();
            assert_eq!(sum_exact(&vals).to_bits(), naive.to_bits());
        }
    }
}
