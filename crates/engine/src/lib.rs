//! An in-memory relational engine with bag semantics, used as the execution
//! substrate for the ConQuer consistent-query-answering system.
//!
//! The paper (Fuxman, Fazli & Miller, SIGMOD 2005) runs its rewritten SQL on
//! DB2; this crate plays that role. It executes the full dialect that
//! ConQuer consumes and emits: select-project-join with inner and left outer
//! joins, grouping and aggregation (`SUM`/`MIN`/`MAX`/`COUNT`/`AVG`),
//! `DISTINCT`, `WITH` common table expressions (materialized once per query,
//! as Section 6.1 of the paper prescribes), `UNION ALL`, and correlated
//! `EXISTS`/`NOT EXISTS` subqueries — which the planner decorrelates into
//! hash semi/anti joins, the optimization a production engine would apply to
//! ConQuer's rewritings.
//!
//! # Example
//!
//! ```
//! use conquer_engine::Database;
//!
//! let db = Database::new();
//! db.run_script(
//!     "create table customer (custkey integer, acctbal float);
//!      insert into customer values (1, 2000), (1, 100), (2, 2500);",
//! ).unwrap();
//! let rows = db.query("select custkey from customer where acctbal > 1000").unwrap();
//! assert_eq!(rows.len(), 2);
//! ```
//!
//! # Resource governance
//!
//! Queries run under an optional [`ResourceLimits`] budget (wall-clock
//! timeout, row cap, memory cap) with a shareable [`CancellationToken`];
//! every physical operator checks the budget cooperatively and unwinds with
//! a structured [`EngineError`] carrying a [`LimitTrip`] snapshot. See
//! [`governor`] and `DESIGN.md` §7.

// The query path must never panic on user input: unwrap/expect are banned
// in shipping code (tests are exempt — unit-test modules compile under
// cfg(test); integration tests and benches are separate crates).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod col;
pub mod cost;
pub mod database;
pub mod durable;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod faults;
pub mod fsum;
pub mod governor;
pub mod index;
pub mod kernels;
pub mod opt;
pub mod plan;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use col::{ColBatch, ColumnChunk, ColumnData, TextDict};
pub use conquer_storage::{StoreStatus, SyncPolicy};
pub use cost::Estimator;
pub use database::Database;
pub use durable::{Checkpointer, DurabilityOptions};
pub use error::{EngineError, Result};
pub use explain::{explain, explain_analyze, explain_estimated, stats_json};
pub use governor::{CancellationToken, Governor, LimitTrip, ResourceLimits};
pub use index::{Index, IndexAccess};
pub use plan::{ExecOptions, Plan};
pub use schema::{Column, DataType, Schema};
pub use stats::{ColumnStats, NodeStats, TableStats};
pub use table::{Row, Rows, Table};
pub use value::Value;
