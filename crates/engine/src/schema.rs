//! Column and schema descriptions, with the name-resolution rules used by
//! the binder (qualified lookup, unique bare-name lookup, ambiguity errors).

use conquer_sql::{ColumnRef, TypeName};

use crate::error::{EngineError, Result};

/// Data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    Integer,
    Float,
    Text,
    Date,
    Boolean,
    /// Type not known statically (e.g. a computed expression); values are
    /// checked dynamically.
    Any,
}

impl From<TypeName> for DataType {
    fn from(t: TypeName) -> DataType {
        match t {
            TypeName::Integer => DataType::Integer,
            TypeName::Float => DataType::Float,
            TypeName::Text => DataType::Text,
            TypeName::Date => DataType::Date,
            TypeName::Boolean => DataType::Boolean,
        }
    }
}

/// One column of an operator output or stored table.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Binding qualifier: the table alias this column is visible under,
    /// `None` for computed/projected outputs.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Declared or inferred type.
    pub ty: DataType,
}

impl Column {
    pub fn new(qualifier: Option<&str>, name: &str, ty: DataType) -> Column {
        Column {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
            ty,
        }
    }

    pub fn bare(name: &str, ty: DataType) -> Column {
        Column {
            qualifier: None,
            name: name.to_string(),
            ty,
        }
    }
}

/// An ordered list of columns describing a row shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Re-qualify every column with a new binding name (used when a table,
    /// CTE, or derived table is bound under an alias in a FROM clause).
    pub fn qualified(&self, qualifier: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    qualifier: Some(qualifier.to_string()),
                    name: c.name.clone(),
                    ty: c.ty,
                })
                .collect(),
        }
    }

    /// Resolve a column reference to an index.
    ///
    /// Qualified references require an exact qualifier+name match; bare
    /// references must match exactly one column name across all bindings.
    pub fn resolve(&self, col: &ColumnRef) -> Result<usize> {
        match &col.qualifier {
            Some(q) => {
                let mut found = None;
                for (i, c) in self.columns.iter().enumerate() {
                    if c.qualifier.as_deref() == Some(q.as_str()) && c.name == col.name {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(format!("{q}.{}", col.name)));
                        }
                        found = Some(i);
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn(format!("{q}.{}", col.name)))
            }
            None => {
                let mut found = None;
                for (i, c) in self.columns.iter().enumerate() {
                    if c.name == col.name {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(col.name.clone()));
                        }
                        found = Some(i);
                    }
                }
                found.ok_or_else(|| EngineError::UnknownColumn(col.name.clone()))
            }
        }
    }

    /// All column indices visible under a given binding qualifier
    /// (for `alias.*` expansion).
    pub fn indices_for_qualifier(&self, qualifier: &str) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.qualifier.as_deref() == Some(qualifier))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new(Some("c"), "custkey", DataType::Integer),
            Column::new(Some("c"), "acctbal", DataType::Float),
            Column::new(Some("o"), "orderkey", DataType::Integer),
            Column::new(Some("o"), "custkey", DataType::Integer),
        ])
    }

    #[test]
    fn qualified_resolution() {
        let s = sample();
        assert_eq!(s.resolve(&ColumnRef::new("o", "custkey")).unwrap(), 3);
        assert_eq!(s.resolve(&ColumnRef::new("c", "custkey")).unwrap(), 0);
    }

    #[test]
    fn bare_resolution_unique() {
        let s = sample();
        assert_eq!(s.resolve(&ColumnRef::bare("acctbal")).unwrap(), 1);
        assert_eq!(s.resolve(&ColumnRef::bare("orderkey")).unwrap(), 2);
    }

    #[test]
    fn bare_resolution_ambiguous() {
        let s = sample();
        assert!(matches!(
            s.resolve(&ColumnRef::bare("custkey")),
            Err(EngineError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn unknown_column() {
        let s = sample();
        assert!(matches!(
            s.resolve(&ColumnRef::bare("nope")),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.resolve(&ColumnRef::new("x", "custkey")),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn requalification() {
        let s = sample().qualified("cand");
        assert_eq!(s.resolve(&ColumnRef::new("cand", "acctbal")).unwrap(), 1);
        assert!(s.resolve(&ColumnRef::new("c", "acctbal")).is_err());
    }

    #[test]
    fn qualified_wildcard_indices() {
        let s = sample();
        assert_eq!(s.indices_for_qualifier("o"), vec![2, 3]);
        assert!(s.indices_for_qualifier("zz").is_empty());
    }
}
